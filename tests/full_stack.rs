//! Workspace-wide integration tests: every workload run traced, its
//! trace analyzed, and the analyzer's answers cross-checked against
//! simulator ground truth — the full reproduction pipeline end to end.

use cell_pdt::prelude::*;
use pdt::TraceFile;

fn traced(
    workload: &dyn Workload,
    spes: usize,
    tcfg: TracingConfig,
) -> (workloads::WorkloadResult, TraceFile) {
    let result = run_workload(
        workload,
        MachineConfig::default().with_num_spes(spes),
        Some(tcfg),
    )
    .expect("workload runs and verifies");
    let trace = result.trace.clone().expect("trace collected");
    (result, trace)
}

fn all_workloads() -> Vec<(Box<dyn Workload>, usize)> {
    vec![
        (
            Box::new(MatmulWorkload::new(MatmulConfig {
                n: 128,
                spes: 2,
                seed: 1,
            })) as Box<dyn Workload>,
            2,
        ),
        (
            Box::new(FftWorkload::new(FftConfig {
                n1: 16,
                n2: 32,
                spes: 2,
                seed: 2,
            })),
            2,
        ),
        (
            Box::new(StreamWorkload::new(StreamConfig {
                blocks: 12,
                block_bytes: 4096,
                buffering: Buffering::Double,
                spes: 2,
                ..StreamConfig::default()
            })),
            2,
        ),
        (
            Box::new(PipelineWorkload::new(PipelineConfig {
                blocks: 6,
                block_bytes: 2048,
                pairs: 1,
                stage_cycles: 1000,
                seed: 3,
            })),
            2,
        ),
        (
            Box::new(SparseWorkload::new(SparseConfig {
                rows: 512,
                rows_per_chunk: 64,
                spes: 2,
                schedule: Schedule::Dynamic,
                ..SparseConfig::default()
            })),
            2,
        ),
        (
            Box::new(StencilWorkload::new(StencilConfig {
                n: 32,
                iters: 3,
                spes: 2,
                seed: 6,
            })),
            2,
        ),
    ]
}

#[test]
fn every_workload_traces_and_analyzes() {
    for (w, spes) in all_workloads() {
        let (result, trace) = traced(w.as_ref(), spes, TracingConfig::default());
        // The trace file round-trips through its binary form.
        let parsed = TraceFile::from_bytes(&trace.to_bytes()).expect("parse");
        assert_eq!(parsed, trace, "{}: binary roundtrip", w.name());
        // It analyzes, and every SPE that ran shows up.
        let analyzed = analyze(&trace).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let stats = compute_stats(&analyzed);
        assert_eq!(
            stats.spes.len(),
            spes,
            "{}: all SPEs present in the analysis",
            w.name()
        );
        // Analyzer activity agrees with ground truth within 5%/15%.
        let v = validate(
            &analyzed,
            &stats,
            &result.report,
            result.machine.config().clock.core_hz,
        );
        assert!(
            v.max_active_rel_err() < 0.05,
            "{}: active err {} \n{}",
            w.name(),
            v.max_active_rel_err(),
            v.render()
        );
        // Renderers accept the real trace, via the unified Report API.
        let tl = build_timeline(&analyzed);
        assert!(tl.lanes.len() >= spes, "{}: lanes present", w.name());
        let a = Analysis::from_analyzed(analyzed);
        assert!(a
            .render(ReportKind::Svg, &RenderOptions::default())
            .contains("</svg>"));
        assert!(a
            .render(
                ReportKind::Ascii,
                &RenderOptions::default().with_ascii_width(60)
            )
            .contains("legend"));
    }
}

#[test]
fn group_masks_filter_the_trace() {
    let w = StreamWorkload::new(StreamConfig {
        blocks: 8,
        block_bytes: 4096,
        buffering: Buffering::Single,
        spes: 1,
        ..StreamConfig::default()
    });
    // DMA-only: no mailbox records anywhere.
    let (_, trace) = traced(
        &w,
        1,
        TracingConfig::default().with_groups(GroupMask::dma_only()),
    );
    let a = Analysis::of(&trace).run().unwrap();
    let mbox = EventFilter::new().in_group(EventGroup::SpeMbox).apply(&a);
    assert!(mbox.is_empty(), "mailbox events must be filtered out");
    let dma = EventFilter::new().in_group(EventGroup::SpeDma).apply(&a);
    assert!(!dma.is_empty(), "dma events must be present");
}

#[test]
fn tracing_off_means_zero_perturbation() {
    let w = MatmulWorkload::new(MatmulConfig {
        n: 128,
        spes: 2,
        seed: 4,
    });
    let base = run_workload(&w, MachineConfig::default().with_num_spes(2), None)
        .unwrap()
        .report
        .cycles;
    let again = run_workload(&w, MachineConfig::default().with_num_spes(2), None)
        .unwrap()
        .report
        .cycles;
    assert_eq!(base, again, "untraced runs are exactly reproducible");
}

#[test]
fn traced_runs_are_deterministic_too() {
    let w = SparseWorkload::new(SparseConfig {
        rows: 512,
        spes: 2,
        schedule: Schedule::Dynamic,
        ..SparseConfig::default()
    });
    let (r1, t1) = traced(&w, 2, TracingConfig::default());
    let (r2, t2) = traced(&w, 2, TracingConfig::default());
    assert_eq!(r1.report.cycles, r2.report.cycles);
    assert_eq!(t1.to_bytes(), t2.to_bytes(), "bit-identical traces");
}

#[test]
fn analyzer_event_counts_match_tracer_stats() {
    let w = FftWorkload::new(FftConfig {
        n1: 16,
        n2: 16,
        spes: 2,
        seed: 5,
    });
    let (_, trace) = traced(&w, 2, TracingConfig::default());
    let analyzed = analyze(&trace).unwrap();
    let stats = compute_stats(&analyzed);
    // Total decoded events equal the sum of per-stream record counts.
    let stream_total: u64 = trace
        .streams
        .iter()
        .map(|s| s.records().unwrap().len() as u64)
        .sum();
    assert_eq!(stats.counts.total(), stream_total);
    assert_eq!(analyzed.events.len() as u64, stream_total);
}

#[test]
fn csv_exports_are_consistent() {
    let w = StreamWorkload::new(StreamConfig {
        blocks: 6,
        block_bytes: 2048,
        spes: 1,
        ..StreamConfig::default()
    });
    let (_, trace) = traced(&w, 1, TracingConfig::default());
    let a = Analysis::of(&trace).run().unwrap();
    let events_csv = a.render(ReportKind::Csv, &RenderOptions::default());
    assert_eq!(
        events_csv.lines().count(),
        a.analyzed().events.len() + 1,
        "one CSV row per event plus header"
    );
    let iv_csv = a.render(
        ReportKind::Csv,
        &RenderOptions::default().with_csv(CsvTable::Intervals),
    );
    let n_intervals: usize = a.intervals().iter().map(|s| s.intervals.len()).sum();
    assert_eq!(iv_csv.lines().count(), n_intervals + 1);
}

#[test]
fn ls_pressure_from_trace_buffer_is_real() {
    // A workload that nearly fills the LS fails to start only when the
    // PDT buffer steals the remaining space.
    struct Greedy;
    impl SpuProgram for Greedy {
        fn resume(&mut self, _wake: SpuWake, env: cellsim::SpuEnv<'_>) -> SpuAction {
            // 255 KiB: fits alone, not next to a 2 KiB trace buffer.
            match env.ls.alloc(255 * 1024, 128, "huge") {
                Ok(_) => SpuAction::Stop(1),
                Err(_) => SpuAction::Stop(2),
            }
        }
    }
    let run = |traced: bool| {
        let mut m = Machine::new(MachineConfig::default().with_num_spes(1)).unwrap();
        let _s = traced.then(|| TraceSession::install(TracingConfig::default(), &mut m).unwrap());
        m.set_ppe_program(
            PpeThreadId::new(0),
            Box::new(SpmdDriver::new(vec![SpeJob::new(
                "greedy",
                Box::new(Greedy),
            )])),
        );
        m.run().unwrap().stop_codes[0].1.unwrap()
    };
    assert_eq!(run(false), 1, "fits without tracing");
    assert_eq!(run(true), 2, "trace buffer steals the space");
}
