//! v2-container differential suite: every golden trace (including the
//! fault-injected and racy ones) packed into the blocked, compressed
//! `PDT2` container and re-analyzed must produce **byte-identical**
//! products to the v1 path — one-shot ([`V2Trace`]) and streamed
//! ([`V2Ingest`], chunk boundaries everywhere), across `Serial` and
//! `Workers(4)`. The container now has **two readers**: the default
//! direct-to-columns decoder (payloads land straight in
//! `EventColumns`, merged at block granularity) and the v1-roundtrip
//! oracle (clean runs re-encoded canonically, gap bytes carried
//! verbatim, fed through `IngestSession`). This suite differentials
//! the fast path against the oracle — products *and* codec stats —
//! on every golden, and pins that `MappedImage` (mmap-backed) and
//! heap-read images decode identically.
//!
//! Also pins the block-skip acceptance criterion: a windowed query
//! decodes only the packed blocks whose footer time range overlaps
//! the window (asserted via [`ta::v2read::WindowQuery`] codec stats
//! against a directory walk), and returns exactly the events
//! [`EventFilter`] selects from the full analysis.

use proptest::prelude::*;

use pdt::v2::{pack, unpack, Anchoring, BlockKind, DEFAULT_BLOCK_RECORDS, FLAG_UNPLACED};
use ta::{Analysis, EventFilter, MappedImage, Parallelism, V2Ingest, V2Trace};

#[path = "common/goldens.rs"]
mod goldens;
use goldens::{golden, golden_v2_bytes, GOLDEN};

/// Small enough that every golden spans many blocks.
const BLOCK_RECORDS: usize = 8;

const PARS: [Parallelism; 2] = [Parallelism::Serial, Parallelism::Workers(4)];

fn assert_products_eq(reference: &Analysis, got: &Analysis, what: &str) {
    assert_eq!(got.events(), reference.events(), "{what}: events");
    assert_eq!(got.loss(), reference.loss(), "{what}: loss");
    assert_eq!(got.intervals(), reference.intervals(), "{what}: intervals");
    assert_eq!(got.stats(), reference.stats(), "{what}: stats");
    assert_eq!(got.timeline(), reference.timeline(), "{what}: timeline");
    assert_eq!(got.occupancy(), reference.occupancy(), "{what}: occupancy");
    assert_eq!(got.phases(), reference.phases(), "{what}: phases");
    assert_eq!(got.index(), reference.index(), "{what}: index");
    assert_eq!(got.lint(), reference.lint(), "{what}: lint");
}

/// `unpack(pack(t))` reproduces a decode-equivalent trace, and packing
/// is idempotent: once canonicalized, the round trip is the identity
/// on bytes. (Fault-injected goldens may hold non-canonical-but-
/// decodable bytes that pack canonicalizes, so byte identity is pinned
/// on the second trip.)
#[test]
fn v2_roundtrip_reproduces_the_trace() {
    for name in GOLDEN {
        let trace = golden(name);
        for br in [1, BLOCK_RECORDS, DEFAULT_BLOCK_RECORDS] {
            let once = unpack(&pack(&trace, br)).unwrap();
            assert_eq!(once.header, trace.header, "{name} @{br}: header");
            assert_eq!(once.ctx_names, trace.ctx_names, "{name} @{br}: names");
            assert_eq!(once.streams.len(), trace.streams.len(), "{name} @{br}");
            let twice = unpack(&pack(&once, br)).unwrap();
            assert_eq!(twice.to_bytes(), once.to_bytes(), "{name} @{br}: bytes");
        }
    }
}

/// The on-disk `.pdt2` corpus is exactly `pack` of the matching v1
/// golden at the corpus block size — so the checked-in files can never
/// drift from the codec, and unpacking them analyzes identically.
#[test]
fn on_disk_pdt2_goldens_match_the_codec() {
    for name in GOLDEN {
        let trace = golden(name);
        let on_disk = golden_v2_bytes(name);
        assert_eq!(
            on_disk,
            pack(&trace, BLOCK_RECORDS),
            "{name}: .pdt2 golden drifted from the codec \
             (regenerate with `cargo run -p bench --bin make_golden`)"
        );
        let (a, stats) = V2Trace::parse(&on_disk)
            .unwrap()
            .analyze(Parallelism::Serial);
        assert_eq!(stats.blocks_corrupt, 0, "{name}");
        let reference = Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        reference.build_products(Parallelism::Serial);
        a.build_products(Parallelism::Serial);
        assert_products_eq(&reference, &a, name);
    }
}

/// One-shot v2 analysis equals the v1 reference on every golden, for
/// every parallelism setting, with zero corrupt blocks.
#[test]
fn v2_one_shot_products_match_v1() {
    for name in GOLDEN {
        let trace = golden(name);
        let reference = Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        reference.build_products(Parallelism::Serial);

        for br in [BLOCK_RECORDS, DEFAULT_BLOCK_RECORDS] {
            let image = pack(&trace, br);
            for par in PARS {
                let v2 = V2Trace::parse(&image).unwrap();
                let (a, stats) = v2.analyze(par);
                a.build_products(par);
                assert_products_eq(&reference, &a, &format!("{name} @{br} {par:?}"));
                assert_eq!(stats.blocks_corrupt, 0, "{name} @{br} {par:?}");
                assert_eq!(
                    stats.blocks_decoded,
                    v2.file().total_blocks(),
                    "{name} @{br} {par:?}: analyze must decode every block"
                );
            }
        }
    }
}

/// Streamed v2 ingestion equals the v1 reference whatever the chunk
/// boundaries — including one byte at a time, so every header, prefix
/// and payload is split at every interior offset.
#[test]
fn v2_streamed_products_match_v1() {
    for name in GOLDEN {
        let trace = golden(name);
        let reference = Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        reference.build_products(Parallelism::Serial);
        let image = pack(&trace, BLOCK_RECORDS);

        for par in PARS {
            for split in [1usize, 7, 4096] {
                let mut ing = V2Ingest::new().with_parallelism(par);
                for chunk in image.chunks(split) {
                    ing.push(chunk).unwrap();
                }
                ing.finish().unwrap();
                assert!(ing.is_complete());
                assert_eq!(ing.stats().blocks_corrupt, 0, "{name} {par:?} s{split}");
                let a = ing.snapshot().expect("snapshot after finish");
                a.build_products(par);
                assert_products_eq(&reference, &a, &format!("{name} {par:?} split{split}"));
            }
        }
    }
}

/// The acceptance criterion: a windowed query decodes **only** the
/// packed blocks whose footer `[min_tb, max_tb]` overlaps the window,
/// and returns exactly the events the indexed [`EventFilter`] path
/// selects from the fully decoded analysis.
#[test]
fn windowed_query_decodes_only_overlapping_blocks() {
    for name in GOLDEN {
        let trace = golden(name);
        let image = pack(&trace, BLOCK_RECORDS);
        let v2 = V2Trace::parse(&image).unwrap();
        let (a, _) = v2.analyze(Parallelism::Serial);
        let events = a.events();
        assert!(!events.is_empty(), "{name}: empty golden");

        // An interior window plus the edges and the full span.
        let t_first = events.first().unwrap().time_tb;
        let t_last = events.last().unwrap().time_tb;
        let t_lo = events[events.len() / 3].time_tb;
        let t_hi = events[2 * events.len() / 3].time_tb;
        let windows = [
            (t_lo, t_hi),
            (t_first, t_lo),
            (t_hi, t_last + 1),
            (t_first, t_last + 1),
            (t_last + 10, t_last + 20),
        ];

        for (t0, t1) in windows {
            let wq = v2.window_events(t0, t1);

            let expect = EventFilter::new().in_window(t0, t1).apply(&a);
            assert_eq!(
                wq.events.len(),
                expect.len(),
                "{name} [{t0},{t1}): event count"
            );
            for (got, want) in wq.events.iter().zip(expect.iter()) {
                assert_eq!(got, *want, "{name} [{t0},{t1})");
            }

            // Count, from the footer directory alone, the packed
            // placeable blocks that overlap the window: the query must
            // decode exactly those and skip everything else.
            let mut overlapping = 0u64;
            let mut total = 0u64;
            for (si, meta) in v2.file().streams.iter().enumerate() {
                for bi in 0..meta.n_blocks {
                    total += 1;
                    let entry = v2.file().entry(si, bi).unwrap();
                    if meta.anchoring != Anchoring::Unanchored
                        && entry.flags & FLAG_UNPLACED == 0
                        && entry.kind == BlockKind::Packed
                        && entry.overlaps(t0, t1)
                    {
                        overlapping += 1;
                    }
                }
            }
            assert_eq!(
                wq.stats.blocks_decoded, overlapping,
                "{name} [{t0},{t1}): decoded exactly the overlapping packed blocks"
            );
            assert_eq!(
                wq.stats.blocks_decoded + wq.stats.blocks_skipped + wq.stats.blocks_corrupt,
                total,
                "{name} [{t0},{t1}): every block accounted"
            );
        }

        // The interior window must actually skip something, or the
        // criterion is vacuous.
        let wq = v2.window_events(t_lo, t_hi);
        assert!(
            wq.stats.blocks_skipped > 0,
            "{name}: interior window skipped no block"
        );
        assert!(
            wq.stats.blocks_decoded < v2.file().total_blocks(),
            "{name}: interior window decoded everything"
        );
    }
}

/// The direct-to-columns fast path is differentialed against the
/// v1-roundtrip oracle explicitly: identical products **and**
/// identical [`pdt::CodecStats`] — the fast path must account for
/// every block, record, payload byte and reconstructed raw byte
/// exactly as the oracle does, on every golden, at small and default
/// block sizes, serial and parallel.
#[test]
fn v2_direct_decode_matches_roundtrip_oracle() {
    for name in GOLDEN {
        let trace = golden(name);
        for br in [BLOCK_RECORDS, DEFAULT_BLOCK_RECORDS] {
            let image = pack(&trace, br);
            let v2 = V2Trace::parse(&image).unwrap();
            for par in PARS {
                let (oracle, oracle_stats) = v2.analyze_roundtrip(par);
                let (fast, fast_stats) = v2.analyze(par);
                assert_eq!(
                    fast_stats, oracle_stats,
                    "{name} @{br} {par:?}: codec stats diverge"
                );
                oracle.build_products(par);
                fast.build_products(par);
                assert_products_eq(&oracle, &fast, &format!("{name} @{br} {par:?} direct"));
            }
        }
    }
}

/// The chunked reader's codec stats match the one-shot oracle on a
/// clean image: every block decoded (none skipped, none corrupt), the
/// same record and byte totals — whichever backend (direct or
/// session) the build selected.
#[test]
fn v2_chunked_stats_match_roundtrip_oracle() {
    for name in GOLDEN {
        let trace = golden(name);
        let image = pack(&trace, BLOCK_RECORDS);
        let v2 = V2Trace::parse(&image).unwrap();
        let (_, oracle_stats) = v2.analyze_roundtrip(Parallelism::Serial);

        let mut ing = V2Ingest::new();
        for chunk in image.chunks(512) {
            ing.push(chunk).unwrap();
        }
        ing.finish().unwrap();
        assert_eq!(ing.stats(), oracle_stats, "{name}: chunked stats diverge");
        assert_eq!(
            ing.stats().blocks_decoded,
            v2.file().total_blocks(),
            "{name}: chunked ingest must decode every block"
        );
    }
}

/// A snapshot taken **mid-stream** (which demotes the direct backend
/// to the incremental session, replaying everything decoded so far)
/// must not disturb the final result: the run still completes and the
/// products stay byte-identical to the v1 reference.
#[test]
fn mid_stream_snapshot_keeps_products_exact() {
    for name in GOLDEN {
        let trace = golden(name);
        let reference = Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        reference.build_products(Parallelism::Serial);
        let image = pack(&trace, BLOCK_RECORDS);

        // Snapshot at several interior cut points, including very
        // early (header only) and late (footer in flight).
        for frac in [8usize, 2, 1] {
            let cut = (image.len() - 1) / frac;
            let mut ing = V2Ingest::new();
            ing.push(&image[..cut]).unwrap();
            // Mid-stream observation: may legitimately see a partial
            // prefix of the events, but must never error or panic.
            if let Some(partial) = ing.snapshot() {
                assert!(
                    partial.events().len() <= reference.events().len(),
                    "{name} @1/{frac}: snapshot invented events"
                );
            }
            ing.push(&image[cut..]).unwrap();
            ing.finish().unwrap();
            assert_eq!(
                ing.stats().blocks_corrupt,
                0,
                "{name} @1/{frac}: clean image, corrupt blocks"
            );
            let a = ing.snapshot().expect("snapshot after finish");
            a.build_products(Parallelism::Serial);
            assert_products_eq(&reference, &a, &format!("{name} snapshot@1/{frac}"));
        }
    }
}

/// Every golden `.pdt2`, loaded through [`MappedImage::open`] (the
/// mmap-backed loader `ta-cli` uses), analyzes byte-identically to the
/// same image read onto the heap.
#[test]
fn mapped_golden_images_analyze_identically() {
    let dir = std::env::temp_dir();
    for name in GOLDEN {
        let image = golden_v2_bytes(name);
        let path = dir.join(format!("ta-map-golden-{}-{name}2", std::process::id()));
        std::fs::write(&path, &image).unwrap();
        let mapped = MappedImage::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(mapped.bytes(), &image[..], "{name}: loader changed bytes");

        let heap = MappedImage::from_vec(image);
        let (a, astats) = V2Trace::parse(&mapped)
            .unwrap()
            .analyze(Parallelism::Serial);
        let (b, bstats) = V2Trace::parse(&heap).unwrap().analyze(Parallelism::Serial);
        assert_eq!(astats, bstats, "{name}: stats diverge across loaders");
        assert_eq!(a.events(), b.events(), "{name}: events diverge");
        assert_eq!(a.loss(), b.loss(), "{name}: loss diverges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// [`MappedImage::open`] returns exactly the bytes on disk for
    /// arbitrary contents (including empty files), byte-identical to
    /// the heap loader — so analyses over either representation can
    /// never diverge.
    #[test]
    fn mapped_image_is_byte_identical_to_heap(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
        salt in any::<u32>(),
    ) {
        let path = std::env::temp_dir().join(format!(
            "ta-map-prop-{}-{salt:08x}.bin",
            std::process::id()
        ));
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MappedImage::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(mapped.len(), bytes.len());
        prop_assert_eq!(mapped.bytes(), &bytes[..]);
        let heap = MappedImage::from_vec(bytes);
        prop_assert_eq!(mapped.bytes(), heap.bytes());
    }
}
