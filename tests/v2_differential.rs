//! v2-container differential suite: every golden trace (including the
//! fault-injected and racy ones) packed into the blocked, compressed
//! `PDT2` container and re-analyzed must produce **byte-identical**
//! products to the v1 path — one-shot ([`V2Trace`]) and streamed
//! ([`V2Ingest`], chunk boundaries everywhere), across `Serial` and
//! `Workers(4)` — because both decode paths reconstruct the exact v1
//! record bytes (clean runs re-encoded canonically, gap bytes carried
//! verbatim) and feed them through the same `IngestSession`.
//!
//! Also pins the block-skip acceptance criterion: a windowed query
//! decodes only the packed blocks whose footer time range overlaps
//! the window (asserted via [`ta::v2read::WindowQuery`] codec stats
//! against a directory walk), and returns exactly the events
//! [`EventFilter`] selects from the full analysis.

use pdt::v2::{pack, unpack, Anchoring, BlockKind, DEFAULT_BLOCK_RECORDS, FLAG_UNPLACED};
use ta::{Analysis, EventFilter, Parallelism, V2Ingest, V2Trace};

#[path = "common/goldens.rs"]
mod goldens;
use goldens::{golden, golden_v2_bytes, GOLDEN};

/// Small enough that every golden spans many blocks.
const BLOCK_RECORDS: usize = 8;

const PARS: [Parallelism; 2] = [Parallelism::Serial, Parallelism::Workers(4)];

fn assert_products_eq(reference: &Analysis, got: &Analysis, what: &str) {
    assert_eq!(got.events(), reference.events(), "{what}: events");
    assert_eq!(got.loss(), reference.loss(), "{what}: loss");
    assert_eq!(got.intervals(), reference.intervals(), "{what}: intervals");
    assert_eq!(got.stats(), reference.stats(), "{what}: stats");
    assert_eq!(got.timeline(), reference.timeline(), "{what}: timeline");
    assert_eq!(got.occupancy(), reference.occupancy(), "{what}: occupancy");
    assert_eq!(got.phases(), reference.phases(), "{what}: phases");
    assert_eq!(got.index(), reference.index(), "{what}: index");
    assert_eq!(got.lint(), reference.lint(), "{what}: lint");
}

/// `unpack(pack(t))` reproduces a decode-equivalent trace, and packing
/// is idempotent: once canonicalized, the round trip is the identity
/// on bytes. (Fault-injected goldens may hold non-canonical-but-
/// decodable bytes that pack canonicalizes, so byte identity is pinned
/// on the second trip.)
#[test]
fn v2_roundtrip_reproduces_the_trace() {
    for name in GOLDEN {
        let trace = golden(name);
        for br in [1, BLOCK_RECORDS, DEFAULT_BLOCK_RECORDS] {
            let once = unpack(&pack(&trace, br)).unwrap();
            assert_eq!(once.header, trace.header, "{name} @{br}: header");
            assert_eq!(once.ctx_names, trace.ctx_names, "{name} @{br}: names");
            assert_eq!(once.streams.len(), trace.streams.len(), "{name} @{br}");
            let twice = unpack(&pack(&once, br)).unwrap();
            assert_eq!(twice.to_bytes(), once.to_bytes(), "{name} @{br}: bytes");
        }
    }
}

/// The on-disk `.pdt2` corpus is exactly `pack` of the matching v1
/// golden at the corpus block size — so the checked-in files can never
/// drift from the codec, and unpacking them analyzes identically.
#[test]
fn on_disk_pdt2_goldens_match_the_codec() {
    for name in GOLDEN {
        let trace = golden(name);
        let on_disk = golden_v2_bytes(name);
        assert_eq!(
            on_disk,
            pack(&trace, BLOCK_RECORDS),
            "{name}: .pdt2 golden drifted from the codec \
             (regenerate with `cargo run -p bench --bin make_golden`)"
        );
        let (a, stats) = V2Trace::parse(&on_disk)
            .unwrap()
            .analyze(Parallelism::Serial);
        assert_eq!(stats.blocks_corrupt, 0, "{name}");
        let reference = Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        reference.build_products(Parallelism::Serial);
        a.build_products(Parallelism::Serial);
        assert_products_eq(&reference, &a, name);
    }
}

/// One-shot v2 analysis equals the v1 reference on every golden, for
/// every parallelism setting, with zero corrupt blocks.
#[test]
fn v2_one_shot_products_match_v1() {
    for name in GOLDEN {
        let trace = golden(name);
        let reference = Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        reference.build_products(Parallelism::Serial);

        for br in [BLOCK_RECORDS, DEFAULT_BLOCK_RECORDS] {
            let image = pack(&trace, br);
            for par in PARS {
                let v2 = V2Trace::parse(&image).unwrap();
                let (a, stats) = v2.analyze(par);
                a.build_products(par);
                assert_products_eq(&reference, &a, &format!("{name} @{br} {par:?}"));
                assert_eq!(stats.blocks_corrupt, 0, "{name} @{br} {par:?}");
                assert_eq!(
                    stats.blocks_decoded,
                    v2.file().total_blocks(),
                    "{name} @{br} {par:?}: analyze must decode every block"
                );
            }
        }
    }
}

/// Streamed v2 ingestion equals the v1 reference whatever the chunk
/// boundaries — including one byte at a time, so every header, prefix
/// and payload is split at every interior offset.
#[test]
fn v2_streamed_products_match_v1() {
    for name in GOLDEN {
        let trace = golden(name);
        let reference = Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        reference.build_products(Parallelism::Serial);
        let image = pack(&trace, BLOCK_RECORDS);

        for par in PARS {
            for split in [1usize, 7, 4096] {
                let mut ing = V2Ingest::new().with_parallelism(par);
                for chunk in image.chunks(split) {
                    ing.push(chunk).unwrap();
                }
                ing.finish().unwrap();
                assert!(ing.is_complete());
                assert_eq!(ing.stats().blocks_corrupt, 0, "{name} {par:?} s{split}");
                let a = ing.snapshot().expect("snapshot after finish");
                a.build_products(par);
                assert_products_eq(&reference, &a, &format!("{name} {par:?} split{split}"));
            }
        }
    }
}

/// The acceptance criterion: a windowed query decodes **only** the
/// packed blocks whose footer `[min_tb, max_tb]` overlaps the window,
/// and returns exactly the events the indexed [`EventFilter`] path
/// selects from the fully decoded analysis.
#[test]
fn windowed_query_decodes_only_overlapping_blocks() {
    for name in GOLDEN {
        let trace = golden(name);
        let image = pack(&trace, BLOCK_RECORDS);
        let v2 = V2Trace::parse(&image).unwrap();
        let (a, _) = v2.analyze(Parallelism::Serial);
        let events = a.events();
        assert!(!events.is_empty(), "{name}: empty golden");

        // An interior window plus the edges and the full span.
        let t_first = events.first().unwrap().time_tb;
        let t_last = events.last().unwrap().time_tb;
        let t_lo = events[events.len() / 3].time_tb;
        let t_hi = events[2 * events.len() / 3].time_tb;
        let windows = [
            (t_lo, t_hi),
            (t_first, t_lo),
            (t_hi, t_last + 1),
            (t_first, t_last + 1),
            (t_last + 10, t_last + 20),
        ];

        for (t0, t1) in windows {
            let wq = v2.window_events(t0, t1);

            let expect = EventFilter::new().in_window(t0, t1).apply(&a);
            assert_eq!(
                wq.events.len(),
                expect.len(),
                "{name} [{t0},{t1}): event count"
            );
            for (got, want) in wq.events.iter().zip(expect.iter()) {
                assert_eq!(got, *want, "{name} [{t0},{t1})");
            }

            // Count, from the footer directory alone, the packed
            // placeable blocks that overlap the window: the query must
            // decode exactly those and skip everything else.
            let mut overlapping = 0u64;
            let mut total = 0u64;
            for (si, meta) in v2.file().streams.iter().enumerate() {
                for bi in 0..meta.n_blocks {
                    total += 1;
                    let entry = v2.file().entry(si, bi).unwrap();
                    if meta.anchoring != Anchoring::Unanchored
                        && entry.flags & FLAG_UNPLACED == 0
                        && entry.kind == BlockKind::Packed
                        && entry.overlaps(t0, t1)
                    {
                        overlapping += 1;
                    }
                }
            }
            assert_eq!(
                wq.stats.blocks_decoded, overlapping,
                "{name} [{t0},{t1}): decoded exactly the overlapping packed blocks"
            );
            assert_eq!(
                wq.stats.blocks_decoded + wq.stats.blocks_skipped + wq.stats.blocks_corrupt,
                total,
                "{name} [{t0},{t1}): every block accounted"
            );
        }

        // The interior window must actually skip something, or the
        // criterion is vacuous.
        let wq = v2.window_events(t_lo, t_hi);
        assert!(
            wq.stats.blocks_skipped > 0,
            "{name}: interior window skipped no block"
        );
        assert!(
            wq.stats.blocks_decoded < v2.file().total_blocks(),
            "{name}: interior window decoded everything"
        );
    }
}
