//! Scheduler-determinism suite: every derived product must be
//! byte-identical whatever [`Parallelism`] drives the work-stealing
//! pool — `Serial`, `Workers(2)`, `Workers(4)`, `Auto` — and across
//! repeated runs under the same setting. Runs over the full golden
//! corpus, including the fault-injected and racy traces, through both
//! the one-shot `Analysis` path and the streaming `ImageIngest` path.
//!
//! This is the differential oracle for the shard-task decomposition:
//! per-SPE interval shards, per-rule×per-shard lint sweeps, and
//! per-core index blocks may execute in any order on any worker, but
//! the assembled products must not depend on that order.

use ta::{Analysis, ImageIngest, Parallelism};

#[path = "common/goldens.rs"]
mod goldens;
use goldens::{golden, GOLDEN};

const SETTINGS: [Parallelism; 4] = [
    Parallelism::Serial,
    Parallelism::Workers(2),
    Parallelism::Workers(4),
    Parallelism::Auto,
];

/// Asserts all seven products (plus ingestion itself) of `got` equal
/// the serial reference.
fn assert_products_eq(reference: &Analysis, got: &Analysis, what: &str) {
    assert_eq!(got.events(), reference.events(), "{what}: events");
    assert_eq!(got.loss(), reference.loss(), "{what}: loss");
    assert_eq!(got.intervals(), reference.intervals(), "{what}: intervals");
    assert_eq!(got.stats(), reference.stats(), "{what}: stats");
    assert_eq!(got.timeline(), reference.timeline(), "{what}: timeline");
    assert_eq!(got.occupancy(), reference.occupancy(), "{what}: occupancy");
    assert_eq!(got.phases(), reference.phases(), "{what}: phases");
    assert_eq!(got.index(), reference.index(), "{what}: index");
    assert_eq!(got.lint(), reference.lint(), "{what}: lint");
}

/// One-shot path: every parallelism setting, run twice each, must
/// reproduce the serial products exactly on every golden trace.
#[test]
fn products_identical_across_parallelism_and_repeats() {
    for name in GOLDEN {
        let trace = golden(name);
        let reference = Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        reference.build_products(Parallelism::Serial);

        for par in SETTINGS {
            for rep in 0..2 {
                let a = Analysis::of(&trace).parallelism(par).run().unwrap();
                a.build_products(par);
                assert_products_eq(&reference, &a, &format!("{name} {par:?} rep{rep}"));
            }
        }
    }
}

/// Streaming path: chunked image ingestion under every parallelism
/// setting must land on the same snapshot products as the serial
/// one-shot analysis.
#[test]
fn streamed_products_identical_across_parallelism() {
    for name in GOLDEN {
        let trace = golden(name);
        let image = trace.to_bytes();
        let reference = Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        reference.build_products(Parallelism::Serial);

        for par in SETTINGS {
            let mut ing = ImageIngest::new().with_parallelism(par);
            for piece in image.chunks(4096) {
                ing.push(piece).unwrap();
            }
            ing.finish().unwrap();
            let snap = ing.snapshot().unwrap();
            snap.build_products(par);
            assert_products_eq(&reference, &snap, &format!("{name} streamed {par:?}"));
        }
    }
}

/// Re-building products on an already-warm session is a no-op: the
/// memoized products never flip, whatever setting asks again.
#[test]
fn warm_sessions_are_stable_under_rebuilds() {
    let trace = golden("stream_racy.pdt");
    let a = Analysis::of(&trace)
        .parallelism(Parallelism::Workers(4))
        .run()
        .unwrap();
    a.build_products(Parallelism::Workers(4));
    let lint_before = a.lint().diagnostics.len();
    let intervals_before = a.intervals().to_vec();
    for par in SETTINGS {
        a.build_products(par);
    }
    assert_eq!(a.lint().diagnostics.len(), lint_before);
    assert_eq!(a.intervals(), intervals_before.as_slice());
}
