//! Property battery for the v2 (`PDT2`) codec.
//!
//! * Packed-payload round trips on arbitrary record soups, including
//!   pathological timestamp deltas (0, 1, `u64::MAX`, random),
//!   max-width parameters and duplicate event codes — decode must be
//!   byte-identical to the canonical source encoding.
//! * Whole-container `pack`/`unpack` round trips on synthetic traces
//!   with clean runs, decode-proof garbage gaps, anchored and
//!   unanchored SPE streams — at tiny block sizes so every run is
//!   split at every block boundary.
//! * Chunk splits at arbitrary (and, for one case, **every**) offsets
//!   through the streaming [`V2Ingest`] reader, differential against
//!   the one-shot [`V2Trace`] path.
//! * Random byte mutations over a valid image: the readers may report
//!   loss but must never panic.

use proptest::prelude::*;

use pdt::v2::{decode_packed_payload, encode_packed_payload, pack, records_to_bytes, unpack};
use pdt::{EventCode, TraceCore, TraceFile, TraceHeader, TraceRecord, TraceStream, VERSION};
use ta::{Parallelism, V2Ingest, V2Trace};

const CODES: &[EventCode] = &[
    EventCode::SpeCtxStart,
    EventCode::SpeStop,
    EventCode::SpeDmaGet,
    EventCode::SpeDmaPut,
    EventCode::SpeTagWaitBegin,
    EventCode::SpeTagWaitEnd,
    EventCode::SpeMboxWrite,
    EventCode::SpeUser,
    EventCode::PpeCtxCreate,
    EventCode::PpeCtxRun,
    EventCode::PpeCtxStopped,
    EventCode::PpeMboxWrite,
    EventCode::PpeUser,
];

/// Any record at all — the payload codec is agnostic to stream
/// invariants, so cores, codes and timestamps are unconstrained.
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        prop_oneof![
            (0u8..2).prop_map(TraceCore::Ppe),
            (0u8..8).prop_map(TraceCore::Spe),
        ],
        0..CODES.len(),
        // Pathological deltas: ties, unit steps, full-width jumps.
        prop_oneof![
            Just(0u64),
            Just(1u64),
            Just(u64::MAX),
            Just(u64::MAX - 1),
            any::<u64>(),
            0u64..1000,
        ],
        // Max-width parameters up to the format limit of 16.
        prop::collection::vec(
            prop_oneof![Just(0u64), Just(u64::MAX), any::<u64>()],
            0..=16,
        ),
    )
        .prop_map(|(core, ci, timestamp, params)| TraceRecord {
            core,
            code: CODES[ci],
            timestamp,
            params,
        })
}

/// One segment of a synthetic stream: a clean record run or a garbage
/// range that provably never decodes (granule count 0 → `ZeroLength`).
#[derive(Debug, Clone)]
enum Segment {
    Clean { n: usize },
    Garbage(Vec<u8>),
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        (1usize..40).prop_map(|n| Segment::Clean { n }),
        (5usize..40).prop_map(|n| Segment::Clean { n }),
        (10usize..60).prop_map(|n| Segment::Clean { n }),
        // Garbage sized in whole granules (so the 16-byte resync
        // realigns with the following clean run) with every granule
        // header zeroed (count 0 → `ZeroLength`, provably never
        // decodes or canonicalizes differently).
        (1usize..5, any::<u8>()).prop_map(|(n, seed)| {
            let mut v: Vec<u8> = (0..n * 16)
                .map(|j| seed.wrapping_add(j as u8).wrapping_mul(31))
                .collect();
            for b in v.iter_mut().step_by(16) {
                *b = 0;
            }
            Segment::Garbage(v)
        }),
    ]
}

/// A synthetic trace: one PPE stream (publishing anchors for the
/// first `anchored` SPEs) and `n_spe` SPE streams with decrementer
/// timestamps obeying the stream invariants, interleaved with garbage.
fn arb_trace() -> impl Strategy<Value = TraceFile> {
    (
        1u8..4, // n_spe
        0u8..4, // anchored (clamped)
        prop::collection::vec(prop::collection::vec(arb_segment(), 1..5), 1..5),
        any::<u32>(), // dec_start
    )
        .prop_map(|(n_spe, anchored, layouts, dec_start)| {
            let n_spe = n_spe.min(3);
            let anchored = anchored.min(n_spe);
            let header = TraceHeader {
                version: VERSION,
                num_ppe_threads: 2,
                num_spes: n_spe,
                core_hz: 3_200_000_000,
                timebase_divider: 80,
                dec_start,
                group_mask: !0,
                spe_buffer_bytes: 16 * 1024,
            };
            let mut streams = Vec::new();

            // PPE stream: anchors first, then filler events.
            let mut ppe = Vec::new();
            let mut tb = 1_000u64;
            for spe in 0..anchored {
                TraceRecord {
                    core: TraceCore::Ppe(0),
                    code: EventCode::PpeCtxRun,
                    timestamp: tb,
                    params: vec![u64::from(spe) + 7, u64::from(spe), u64::from(dec_start)],
                }
                .encode_into(&mut ppe);
                tb += 50;
            }
            for i in 0..20u64 {
                TraceRecord {
                    core: TraceCore::Ppe((i % 2) as u8),
                    code: EventCode::PpeUser,
                    timestamp: tb + i * 31,
                    params: vec![i, u64::MAX - i],
                }
                .encode_into(&mut ppe);
            }
            streams.push(TraceStream {
                core: TraceCore::Ppe(0),
                bytes: ppe,
                dropped: 0,
            });

            // SPE streams from the generated segment layouts.
            for spe in 0..n_spe {
                let layout = &layouts[spe as usize % layouts.len()];
                let mut bytes = Vec::new();
                let mut dec = dec_start;
                for seg in layout {
                    match seg {
                        Segment::Clean { n } => {
                            for i in 0..*n {
                                dec = dec.wrapping_sub(1 + (i as u32 * 13) % 977);
                                TraceRecord {
                                    core: TraceCore::Spe(spe),
                                    code: CODES[i % CODES.len()],
                                    timestamp: u64::from(dec),
                                    params: vec![u64::MAX; i % 5],
                                }
                                .encode_into(&mut bytes);
                            }
                        }
                        Segment::Garbage(g) => bytes.extend_from_slice(g),
                    }
                }
                streams.push(TraceStream {
                    core: TraceCore::Spe(spe),
                    bytes,
                    dropped: u64::from(spe),
                });
            }
            TraceFile {
                header,
                streams,
                ctx_names: vec![(7, "ctx-a".into()), (8, String::new())],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed payloads round-trip record-exact and byte-identical to
    /// the canonical encoding, whatever the deltas/params/codes.
    #[test]
    fn packed_payload_roundtrips(recs in prop::collection::vec(arb_record(), 1..300)) {
        let payload = encode_packed_payload(&recs);
        let back = decode_packed_payload(&payload, recs.len() as u32).unwrap();
        prop_assert_eq!(&back, &recs);
        prop_assert_eq!(records_to_bytes(&back), records_to_bytes(&recs));
    }

    /// The payload decoder never panics on garbage, and on success
    /// re-encodes to claimed-length bytes.
    #[test]
    fn packed_payload_decoder_survives_garbage(
        payload in prop::collection::vec(any::<u8>(), 0..400),
        n in 0u32..600,
    ) {
        if let Ok(recs) = decode_packed_payload(&payload, n) {
            prop_assert_eq!(recs.len() as u32, n);
        }
    }

    /// `unpack(pack(trace))` is the byte identity on canonical traces
    /// — clean runs, garbage gaps, unanchored streams — at every tiny
    /// block size (so runs split at every block boundary).
    #[test]
    fn container_roundtrip_is_byte_identity(trace in arb_trace()) {
        let want = trace.to_bytes();
        for br in [1usize, 2, 3, 5, 8, 64] {
            let back = unpack(&pack(&trace, br)).unwrap();
            prop_assert_eq!(back.to_bytes(), want.clone(), "block_records={}", br);
        }
    }

    /// Chunked streaming ingestion matches the one-shot reader on the
    /// same image regardless of the split pattern.
    #[test]
    fn chunked_ingest_matches_one_shot(
        trace in arb_trace(),
        splits in prop::collection::vec(1usize..97, 1..6),
        br in prop_oneof![Just(2usize), Just(5usize), Just(64usize)],
    ) {
        let image = pack(&trace, br);
        let v2 = V2Trace::parse(&image).unwrap();
        let (reference, _) = v2.analyze(Parallelism::Serial);

        let mut ing = V2Ingest::new();
        let mut off = 0;
        let mut i = 0;
        while off < image.len() {
            let n = splits[i % splits.len()].min(image.len() - off);
            ing.push(&image[off..off + n]).unwrap();
            off += n;
            i += 1;
        }
        ing.finish().unwrap();
        let got = ing.snapshot().unwrap();
        prop_assert_eq!(got.events(), reference.events());
        prop_assert_eq!(got.loss(), reference.loss());
    }

    /// Random byte mutations over a valid image: both readers must
    /// survive (reporting loss or a structural error) without
    /// panicking.
    #[test]
    fn mutated_images_never_panic(
        trace in arb_trace(),
        flips in prop::collection::vec((any::<u32>(), 0u8..8), 1..12),
    ) {
        let mut image = pack(&trace, 5);
        for (idx, bit) in &flips {
            let off = *idx as usize % image.len();
            image[off] ^= 1 << bit;
        }
        if let Ok(v2) = V2Trace::parse(&image) {
            let (a, _) = v2.analyze(Parallelism::Serial);
            let _ = a.events();
            let _ = v2.window_events(0, u64::MAX);
        }
        let mut ing = V2Ingest::new();
        if ing.push(&image).is_ok() && ing.finish_lossy().is_ok() {
            let _ = ing.snapshot().unwrap().events();
        }
    }
}

/// Exhaustive split coverage: one fixed small trace, the streaming
/// reader fed as `[..k] + [k..]` for **every** interior offset `k`,
/// must always equal the one-shot products.
#[test]
fn every_split_offset_matches_one_shot() {
    let trace = small_fixed_trace();
    let image = pack(&trace, 3);
    let v2 = V2Trace::parse(&image).unwrap();
    let (reference, _) = v2.analyze(Parallelism::Serial);

    for k in 0..=image.len() {
        let mut ing = V2Ingest::new();
        ing.push(&image[..k]).unwrap();
        ing.push(&image[k..]).unwrap();
        ing.finish().unwrap();
        let got = ing.snapshot().unwrap();
        assert_eq!(got.events(), reference.events(), "split at {k}");
        assert_eq!(got.loss(), reference.loss(), "split at {k}");
    }
}

/// A deterministic minimal trace: anchored SPE with a mid-stream
/// garbage gap, plus an unanchored SPE.
fn small_fixed_trace() -> TraceFile {
    let header = TraceHeader {
        version: VERSION,
        num_ppe_threads: 1,
        num_spes: 2,
        core_hz: 3_200_000_000,
        timebase_divider: 80,
        dec_start: 50_000,
        group_mask: !0,
        spe_buffer_bytes: 4096,
    };
    let mut ppe = Vec::new();
    TraceRecord {
        core: TraceCore::Ppe(0),
        code: EventCode::PpeCtxRun,
        timestamp: 500,
        params: vec![9, 0, 50_000],
    }
    .encode_into(&mut ppe);
    TraceRecord {
        core: TraceCore::Ppe(0),
        code: EventCode::PpeUser,
        timestamp: 900,
        params: vec![1],
    }
    .encode_into(&mut ppe);

    let mut spe0 = Vec::new();
    let mut dec = 50_000u32;
    for i in 0..7u64 {
        dec -= 100;
        TraceRecord {
            core: TraceCore::Spe(0),
            code: EventCode::SpeUser,
            timestamp: u64::from(dec),
            params: vec![i],
        }
        .encode_into(&mut spe0);
        if i == 3 {
            spe0.extend_from_slice(&[0u8; 32]); // undecodable gap
        }
    }
    let mut spe1 = Vec::new();
    TraceRecord {
        core: TraceCore::Spe(1),
        code: EventCode::SpeStop,
        timestamp: 40_000,
        params: vec![],
    }
    .encode_into(&mut spe1);

    TraceFile {
        header,
        streams: vec![
            TraceStream {
                core: TraceCore::Ppe(0),
                bytes: ppe,
                dropped: 0,
            },
            TraceStream {
                core: TraceCore::Spe(0),
                bytes: spe0,
                dropped: 2,
            },
            TraceStream {
                core: TraceCore::Spe(1),
                bytes: spe1,
                dropped: 0,
            },
        ],
        ctx_names: vec![(9, "kernel".into())],
    }
}
