//! Shared golden-corpus enumeration for the integration suites.
//!
//! Every differential suite iterates the same seeded corpus under
//! `tests/golden/`; this is the single list and loader they all use
//! (include it with `#[path = "common/goldens.rs"] mod goldens;`).
//! Regenerate the corpus with `cargo run -p bench --bin make_golden`.

#![allow(dead_code)]

use std::path::PathBuf;

use pdt::TraceFile;

/// Every golden trace, including the fault-injected and racy ones and
/// the two happens-before precision/recall traces (the synchronized
/// overlap the window heuristic false-positives on, and the same-tag
/// race it misses).
pub const GOLDEN: [&str; 7] = [
    "matmul.pdt",
    "stream.pdt",
    "pipeline.pdt",
    "stream_faulted.pdt",
    "stream_racy.pdt",
    "stream_mbox_sync.pdt",
    "stream_tag_hidden.pdt",
];

/// Absolute path of a golden trace.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Loads and parses a golden trace.
pub fn golden(name: &str) -> TraceFile {
    let path = golden_path(name);
    TraceFile::read_from(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nregenerate the corpus with `cargo run -p bench --bin make_golden`",
            path.display()
        )
    })
}

/// Loads a golden trace and re-serializes it to v1 image bytes.
pub fn golden_bytes(name: &str) -> Vec<u8> {
    golden(name).to_bytes()
}

/// Reads the on-disk `.pdt2` variant of a golden trace, as emitted by
/// `make_golden` (small blocks so every golden spans several).
pub fn golden_v2_bytes(name: &str) -> Vec<u8> {
    let path = golden_path(&name.replace(".pdt", ".pdt2"));
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nregenerate the corpus with `cargo run -p bench --bin make_golden`",
            path.display()
        )
    })
}
