//! Property-based end-to-end test: arbitrary (valid) scripted SPU
//! programs, traced and analyzed. Whatever the program does, the PDT
//! trace must decode, the analyzer must reconstruct a consistent
//! global timeline, and the activity accounting must tile each SPE's
//! active window exactly.

use proptest::prelude::*;

use cell_pdt::prelude::*;

/// A generatable, always-terminating SPU action.
#[derive(Debug, Clone)]
enum Step {
    Compute(u64),
    DmaRound { size_class: u8, tag: u8 },
    User(u32),
    Decrementer,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..20_000).prop_map(Step::Compute),
        ((0u8..4), (0u8..4)).prop_map(|(size_class, tag)| Step::DmaRound { size_class, tag }),
        (0u32..100).prop_map(Step::User),
        Just(Step::Decrementer),
    ]
}

fn to_actions(steps: &[Step]) -> Vec<SpuAction> {
    let mut out = Vec::new();
    for s in steps {
        match s {
            Step::Compute(n) => out.push(SpuAction::Compute(*n)),
            Step::DmaRound { size_class, tag } => {
                let size = 128u32 << (2 * *size_class as u32); // 128..8192
                let tag = TagId::new(*tag).unwrap();
                out.push(SpuAction::DmaGet {
                    lsa: cellsim::LsAddr::new(0x10000),
                    ea: 0x100000,
                    size,
                    tag,
                });
                out.push(SpuAction::WaitTags {
                    mask: tag.mask_bit(),
                    mode: TagWaitMode::All,
                });
            }
            Step::User(id) => out.push(SpuAction::UserEvent {
                id: *id,
                a0: 1,
                a1: 2,
            }),
            Step::Decrementer => out.push(SpuAction::ReadDecrementer),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_program_traces_and_analyzes(
        programs in prop::collection::vec(prop::collection::vec(arb_step(), 0..24), 1..4),
        buffer_bytes in prop_oneof![Just(512u32), Just(2048u32), Just(8192u32)],
    ) {
        let spes = programs.len();
        let mut m = Machine::new(MachineConfig::default().with_num_spes(spes)).unwrap();
        let session = TraceSession::install(
            TracingConfig::default().with_buffer_bytes(buffer_bytes),
            &mut m,
        )
        .unwrap();
        let jobs: Vec<SpeJob> = programs
            .iter()
            .enumerate()
            .map(|(i, steps)| {
                SpeJob::new(format!("p{i}"), Box::new(SpuScript::new(to_actions(steps))))
            })
            .collect();
        m.set_ppe_program(PpeThreadId::new(0), Box::new(SpmdDriver::new(jobs)));
        let report = m.run().expect("scripted programs always terminate");
        let trace = session.collect(&m);

        // Every stream decodes.
        for s in &trace.streams {
            prop_assert!(s.records().is_ok());
        }
        // The analyzer reconstructs a consistent timeline.
        let analyzed = analyze(&trace).expect("trace analyzes");
        let times: Vec<u64> = analyzed.events.iter().map(|e| e.time_tb).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "global order sorted");

        // Per-SPE intervals tile the active window exactly.
        for iv in build_intervals(&analyzed) {
            let mut cursor = iv.start_tb;
            for seg in &iv.intervals {
                prop_assert_eq!(seg.start_tb, cursor, "no gaps");
                prop_assert!(seg.end_tb >= seg.start_tb);
                cursor = seg.end_tb;
            }
            prop_assert_eq!(cursor, iv.stop_tb, "no tail gap");
        }

        // Ground-truth active time matches within tolerance whenever
        // the SPE did nontrivial work (tiny programs are dominated by
        // start/stop quantization).
        let stats = compute_stats(&analyzed);
        let v = validate(&analyzed, &stats, &report, m.config().clock.core_hz);
        for sv in &v.spes {
            if sv.gt_active_ns > 50_000.0 {
                prop_assert!(
                    sv.active_rel_err() < 0.05,
                    "SPE{} active err {} (ta {} gt {})",
                    sv.spe,
                    sv.active_rel_err(),
                    sv.ta_active_ns,
                    sv.gt_active_ns
                );
            }
        }
    }

    #[test]
    fn trace_volume_scales_with_enabled_groups(
        steps in prop::collection::vec(arb_step(), 8..32),
    ) {
        let run = |groups: GroupMask| {
            let mut m = Machine::new(MachineConfig::default().with_num_spes(1)).unwrap();
            let session = TraceSession::install(
                TracingConfig::default().with_groups(groups),
                &mut m,
            )
            .unwrap();
            m.set_ppe_program(
                PpeThreadId::new(0),
                Box::new(SpmdDriver::new(vec![SpeJob::new(
                    "p",
                    Box::new(SpuScript::new(to_actions(&steps))),
                )])),
            );
            m.run().unwrap();
            session.collect(&m).total_bytes()
        };
        let all = run(GroupMask::all());
        let dma = run(GroupMask::dma_only());
        let none = run(GroupMask::NONE);
        prop_assert!(none <= dma && dma <= all, "none {none} <= dma {dma} <= all {all}");
        prop_assert_eq!(none, 0);
    }
}
