//! Golden-trace differential suite: replays a matrix of window, core,
//! code, and group queries over the seeded corpus in `tests/golden/`
//! and asserts that the index-backed paths return exactly what the
//! naive-scan oracle computes — on clean traces and on the
//! fault-injected one, where the gap-suspicion flag must also agree.
//!
//! Regenerate the corpus with `cargo run -p bench --bin make_golden`
//! (the simulator is deterministic; the generator refuses to silently
//! overwrite drifted output).

use pdt::{EventGroup, TraceCore};
use ta::{index::oracle, Analysis, EventFilter};

#[path = "common/goldens.rs"]
mod goldens;
use goldens::{golden, GOLDEN};

/// The window matrix every golden trace is queried with: edges,
/// interior slices, zero-length, inverted, past-end, and full-range
/// shapes, anchored to the trace's own time span.
fn windows(start: u64, end: u64) -> Vec<(u64, u64)> {
    let span = end.saturating_sub(start).max(1);
    vec![
        (0, u64::MAX),
        (start, end + 1),
        (0, 0),
        (start, start),
        (start, start + 1),
        (end, end + 1),
        (end + 1, end + 10_000),
        (start + span / 4, start + span / 2),
        (start + span / 2, start + span / 2),
        (start + span / 2, start + (3 * span) / 4),
        (end, start), // inverted
        (start + span / 3, end.saturating_sub(span / 3)),
    ]
}

/// Every filter shape exercised per window: bare, per-core, per-code,
/// per-group, and a core+code combination.
fn filters(a: &Analysis, t0: u64, t1: u64) -> Vec<EventFilter> {
    let mut out = vec![EventFilter::new().in_window(t0, t1)];
    for core in a.index().cores() {
        out.push(EventFilter::new().in_window(t0, t1).on_core(core));
    }
    let mut codes: Vec<_> = a.events().iter().map(|e| e.code).collect();
    codes.sort_by_key(|c| c.raw());
    codes.dedup();
    for &code in codes.iter().take(3) {
        out.push(EventFilter::new().in_window(t0, t1).with_code(code));
    }
    for group in EventGroup::ALL {
        out.push(EventFilter::new().in_window(t0, t1).in_group(group));
    }
    if let (Some(core), Some(&code)) = (a.index().cores().next(), codes.first()) {
        out.push(
            EventFilter::new()
                .in_window(t0, t1)
                .on_core(core)
                .with_code(code),
        );
    }
    out
}

fn assert_trace_agrees(name: &str) {
    let trace = golden(name);
    let a = Analysis::of(&trace).run().unwrap();
    let idx = a.index();
    let intervals = a.intervals();
    let suspects = idx.suspect_ranges();
    let (start, end) = (idx.start_tb(), idx.end_tb());

    for (t0, t1) in windows(start, end) {
        // Aggregation: pyramid + exact edges == full rescan, including
        // the suspect flag.
        let fast = a.summarize(t0, t1);
        let slow = oracle::window_summary(a.analyzed(), intervals, suspects, t0, t1);
        assert_eq!(fast, slow, "{name}: summary [{t0}, {t1})");

        // Filtered extraction == linear scan for every filter shape.
        for f in filters(&a, t0, t1) {
            let scan = oracle::filter_events(a.analyzed(), &f);
            assert_eq!(
                a.query(&f),
                scan,
                "{name}: filter {:?}/{:?}/{:?} in [{t0}, {t1})",
                f.cores(),
                f.codes(),
                f.groups()
            );
        }

        // Interval clipping through the tree == SpeIntervals::clip.
        let expect: Vec<_> = intervals.iter().map(|iv| iv.clip(t0, t1)).collect();
        assert_eq!(
            a.intervals_window(t0, t1),
            expect,
            "{name}: clip [{t0}, {t1})"
        );
    }

    // Stabbing at segment boundaries and interiors == linear search.
    for iv in intervals {
        for i in iv.intervals.iter().take(8) {
            for t in [i.start_tb, (i.start_tb + i.end_tb) / 2, i.end_tb] {
                assert_eq!(
                    idx.stab(iv.spe, t),
                    oracle::stab(intervals, iv.spe, t),
                    "{name}: stab spe{} @{t}",
                    iv.spe
                );
            }
        }
    }
}

#[test]
fn matmul_index_matches_oracle() {
    assert_trace_agrees("matmul.pdt");
}

#[test]
fn stream_index_matches_oracle() {
    assert_trace_agrees("stream.pdt");
}

#[test]
fn pipeline_index_matches_oracle() {
    assert_trace_agrees("pipeline.pdt");
}

#[test]
fn faulted_index_matches_oracle() {
    assert_trace_agrees("stream_faulted.pdt");
}

#[test]
fn clean_goldens_have_no_suspect_windows() {
    for name in ["matmul.pdt", "stream.pdt", "pipeline.pdt"] {
        let a = Analysis::of(&golden(name)).run().unwrap();
        assert!(a.loss().is_clean(), "{name}: unexpected decode loss");
        assert!(
            a.index().suspect_ranges().is_empty(),
            "{name}: clean trace has suspect ranges"
        );
        let full = a.summarize(0, u64::MAX);
        assert!(!full.suspect, "{name}: clean full-span summary is suspect");
    }
}

#[test]
fn faulted_golden_flags_gap_windows_suspect() {
    let a = Analysis::of(&golden("stream_faulted.pdt")).run().unwrap();
    assert!(
        !a.loss().is_clean() || a.loss().total_est_lost() > 0,
        "faulted golden decoded clean; regenerate with make_golden"
    );
    let idx = a.index();
    let suspects = idx.suspect_ranges();
    assert!(!suspects.is_empty(), "faulted golden has no suspect ranges");

    // The full span must be flagged, and every recorded suspect range
    // must flag a window that straddles it — identically on the
    // indexed and oracle paths.
    assert!(a.summarize(0, u64::MAX).suspect);
    for r in suspects {
        let (t0, t1) = (r.start_tb.saturating_sub(1), r.end_tb.saturating_add(1));
        let fast = a.summarize(t0, t1);
        let slow = oracle::window_summary(a.analyzed(), a.intervals(), suspects, t0, t1);
        assert_eq!(fast, slow);
        assert!(
            fast.suspect,
            "window [{t0}, {t1}) straddles {r:?} but is not suspect"
        );
        assert!(idx.window_suspect(t0, t1));
    }

    // A window strictly outside every suspect range must stay clean.
    let end = idx.end_tb();
    if let Some(clean_t) = (idx.start_tb()..end)
        .step_by(((end / 256).max(1)) as usize)
        .find(|&t| !suspects.iter().any(|r| r.overlaps(t, t + 1)))
    {
        assert!(!a.summarize(clean_t, clean_t + 1).suspect);
    }
}

#[test]
fn window_edges_are_half_open_on_goldens() {
    for name in GOLDEN {
        let a = Analysis::of(&golden(name)).run().unwrap();
        let Some(&probe) = a.events().iter().map(|e| &e.time_tb).nth(1) else {
            continue;
        };
        // Event at t is included by [t, t+1) and excluded by [_, t).
        let at = |t0: u64, t1: u64| {
            a.query(&EventFilter::new().in_window(t0, t1))
                .iter()
                .filter(|e| e.time_tb == probe)
                .count()
        };
        let total = a.events().iter().filter(|e| e.time_tb == probe).count();
        assert_eq!(
            at(probe, probe + 1),
            total,
            "{name}: start edge must include"
        );
        assert_eq!(at(0, probe), 0, "{name}: end edge must exclude");
        assert_eq!(
            at(probe, probe),
            0,
            "{name}: zero-length window must be empty"
        );
    }
}

#[test]
fn per_core_offsets_cover_every_event_exactly_once() {
    for name in GOLDEN {
        let trace = golden(name);
        let a = Analysis::of(&trace).run().unwrap();
        let idx = a.index();
        let mut per_core_total = 0usize;
        for core in idx.cores().collect::<Vec<_>>() {
            per_core_total += idx
                .core_events_in(a.events(), core, 0, u64::MAX)
                .inspect(|e| assert_eq!(e.core, core, "{name}: wrong core in bucket"))
                .count();
        }
        assert_eq!(per_core_total, a.events().len(), "{name}: offset coverage");
        assert_eq!(idx.cores().count(), {
            let mut cores: Vec<TraceCore> = a.events().iter().map(|e| e.core).collect();
            cores.sort_by_key(|c| c.tag());
            cores.dedup();
            cores.len()
        });
    }
}
