//! Golden-trace differential suite for the columnar product pipeline:
//! every derived product built by an [`Analysis`] session — off the
//! columnar event store, serially or via `build_products` — must be
//! identical to the product the untouched row-oriented free functions
//! compute from the same ingestion. Runs over the full seeded corpus,
//! including the fault-injected and racy traces.

use ta::{analyze_lossy, build_intervals, dma_occupancy, user_phases, Analysis, Parallelism};

#[path = "common/goldens.rs"]
mod goldens;
use goldens::{golden, GOLDEN};

/// Columnar products (built in parallel) equal the row-path products
/// on every golden trace.
#[test]
fn columnar_products_match_row_products_on_goldens() {
    for name in GOLDEN {
        let trace = golden(name);
        let (rows, loss) = analyze_lossy(&trace);

        let a = Analysis::of(&trace)
            .parallelism(Parallelism::Workers(2))
            .run()
            .unwrap();
        a.build_products(Parallelism::Workers(4));

        // The materialize-on-demand rows are byte-identical to the
        // direct row ingestion.
        assert_eq!(a.events(), rows.events.as_slice(), "{name}: events");
        assert_eq!(a.loss(), &loss, "{name}: loss");

        // Each product equals its row-oriented oracle.
        let iv = build_intervals(&rows);
        assert_eq!(a.intervals(), iv.as_slice(), "{name}: intervals");
        assert_eq!(
            a.stats(),
            &ta::stats::compute_stats_with(&rows, &iv),
            "{name}: stats"
        );
        assert_eq!(
            a.timeline(),
            &ta::timeline::build_timeline_with(&rows, &iv),
            "{name}: timeline"
        );
        assert_eq!(
            a.occupancy(),
            dma_occupancy(&rows).as_slice(),
            "{name}: occupancy"
        );
        assert_eq!(a.phases(), &user_phases(&rows), "{name}: phases");
        assert_eq!(
            a.index(),
            &ta::index::TraceIndex::build_parallel(&rows, &iv, &loss, 1),
            "{name}: index"
        );
    }
}

/// `build_products` at several worker counts returns the same
/// products as plain serial accessor calls on a separate session.
#[test]
fn parallel_and_serial_sessions_agree_on_goldens() {
    for name in GOLDEN {
        let trace = golden(name);
        let serial = Analysis::of(&trace).run().unwrap();
        for workers in [1usize, 2, 4] {
            let parallel = Analysis::of(&trace).run().unwrap();
            parallel.build_products(Parallelism::Workers(workers));
            assert_eq!(parallel.intervals(), serial.intervals(), "{name}@{workers}");
            assert_eq!(parallel.stats(), serial.stats(), "{name}@{workers}");
            assert_eq!(parallel.timeline(), serial.timeline(), "{name}@{workers}");
            assert_eq!(parallel.occupancy(), serial.occupancy(), "{name}@{workers}");
            assert_eq!(parallel.phases(), serial.phases(), "{name}@{workers}");
            assert_eq!(parallel.index(), serial.index(), "{name}@{workers}");
            assert_eq!(parallel.lint(), serial.lint(), "{name}@{workers}");
        }
    }
}
