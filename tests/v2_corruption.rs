//! v2-container corruption battery: damage must degrade to
//! [`DecodeGap`]/`LossReport` accounting and suspect flags — never a
//! panic, never silent data loss. Covers the three shapes the issue
//! names: a truncated final block, flipped footer-directory bytes,
//! and fault-style damage inside a compressed payload.

use pdt::v2::{pack, BlockKind, ENTRY_BYTES, PREFIX_BYTES};
use ta::{analyze_v2, Parallelism, V2Ingest, V2Trace};

#[path = "common/goldens.rs"]
mod goldens;
use goldens::{golden, GOLDEN};

const BLOCK_RECORDS: usize = 8;

/// Records decoded across all streams in the loss report.
fn decoded_total(a: &ta::Analysis) -> u64 {
    a.loss().streams.iter().map(|s| s.decoded_records).sum()
}

/// Gap count across all streams in the loss report.
fn gap_total(a: &ta::Analysis) -> usize {
    a.loss().streams.iter().map(|s| s.gaps.len()).sum()
}

/// Feeds `image` to a chunked reader and force-closes it.
fn ingest_lossy(image: &[u8], split: usize) -> (std::sync::Arc<ta::Analysis>, pdt::CodecStats) {
    let mut ing = V2Ingest::new().with_parallelism(Parallelism::Serial);
    for chunk in image.chunks(split.max(1)) {
        ing.push(chunk).expect("structural push must not error");
    }
    ing.finish_lossy().expect("header arrived");
    let a = ing.snapshot().expect("snapshot");
    (a, ing.stats())
}

/// Truncating the image anywhere inside the final block (or later)
/// must not panic: the strict close reports truncation, the lossy
/// close zero-fills the missing tail so it shows up as decode gaps
/// and lost records — and whatever *was* decoded is retained.
#[test]
fn truncated_final_block_degrades_to_loss() {
    for name in GOLDEN {
        let trace = golden(name);
        let image = pack(&trace, BLOCK_RECORDS);
        let (full, _) = ingest_lossy(&image, 4096);
        let full_decoded = decoded_total(&full);
        assert!(full_decoded > 0, "{name}: empty golden");

        for cut in [1usize, 17, 100, ENTRY_BYTES, image.len() / 2] {
            let cut = cut.min(image.len() - 40);
            let short = &image[..image.len() - cut];

            // Strict close names the missing structure.
            let mut strict = V2Ingest::new();
            strict.push(short).unwrap();
            assert!(strict.finish().is_err(), "{name} -{cut}: strict close");

            // Lossy close analyzes what arrived.
            let (a, _) = ingest_lossy(short, 512);
            let decoded = decoded_total(&a);
            assert!(
                decoded <= full_decoded,
                "{name} -{cut}: decoded more than the full image"
            );
            // Truncation inside a stream's promised bytes must be
            // visible as a gap — unless the cut removed the stream
            // header itself, in which case the whole stream is absent
            // from the report (cuts confined to the trailing footer
            // directory / name table legitimately lose nothing).
            if decoded < full_decoded {
                assert!(
                    gap_total(&a) > 0 || a.loss().streams.len() < full.loss().streams.len(),
                    "{name} -{cut}: silent loss"
                );
            }
        }
    }
}

/// Flipping bytes inside a footer directory entry must surface as a
/// corrupt block in the one-shot path (the directory/prefix
/// cross-check zero-fills it → a `DecodeGap`), and taint the windowed
/// query as suspect — never trust a footer that fails its CRC.
#[test]
fn flipped_footer_bytes_surface_as_loss_and_suspect() {
    for name in GOLDEN {
        let trace = golden(name);
        let image = pack(&trace, BLOCK_RECORDS);

        // Pick the first stream that has blocks and flip one byte in
        // the middle of its first directory entry (the min_tb field).
        let probe = V2Trace::parse(&image).unwrap();
        let meta = *probe
            .file()
            .streams
            .iter()
            .find(|m| m.n_blocks > 0)
            .expect("golden with blocks");
        let mut bad = image.clone();
        bad[meta.dir_off + 40] ^= 0xff;

        let v2 = V2Trace::parse(&bad).unwrap();
        let (a, stats) = v2.analyze(Parallelism::Serial);
        assert!(stats.blocks_corrupt >= 1, "{name}: corrupt not counted");
        assert!(gap_total(&a) > 0, "{name}: no gap from flipped footer");

        // The damaged entry fails its CRC, so any window over that
        // stream is suspect and the block is never trusted.
        let wq = v2.window_events(0, u64::MAX);
        assert!(wq.suspect, "{name}: window not marked suspect");
        assert!(wq.stats.blocks_corrupt >= 1, "{name}: window stats");
    }
}

/// Damage inside a compressed payload (the fault-injector shape: bit
/// flips landing mid-block) must fail the payload CRC and degrade to
/// a zero-filled gap range in **both** decode paths, with products
/// still produced and decoded records strictly fewer — never a panic.
#[test]
fn damage_inside_compressed_block_degrades_to_gaps() {
    for name in GOLDEN {
        let trace = golden(name);
        let image = pack(&trace, BLOCK_RECORDS);
        let (full, _) = ingest_lossy(&image, 4096);
        let full_decoded = decoded_total(&full);

        let probe = V2Trace::parse(&image).unwrap();
        let (si, meta) = probe
            .file()
            .streams
            .iter()
            .enumerate()
            .find(|(_, m)| m.n_blocks > 0)
            .expect("golden with blocks");
        // Seeded pseudo-random flips inside the first packed payload.
        let entry = (0..meta.n_blocks)
            .map(|bi| probe.file().entry(si, bi).unwrap())
            .find(|e| e.kind == BlockKind::Packed && e.payload_len > 0)
            .expect("packed block");
        let payload_at = meta.blocks_off + entry.block_off as usize + PREFIX_BYTES;
        let mut bad = image.clone();
        let mut x: u32 = 0x9e37_79b9;
        for _ in 0..4 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let off = payload_at + (x as usize % entry.payload_len as usize);
            bad[off] ^= 1 << (x >> 29);
        }

        // One-shot path.
        let v2 = V2Trace::parse(&bad).unwrap();
        let (a, stats) = v2.analyze(Parallelism::Serial);
        assert!(stats.blocks_corrupt >= 1, "{name}: one-shot corrupt count");
        assert!(gap_total(&a) > 0, "{name}: one-shot gaps");
        assert!(
            decoded_total(&a) < full_decoded,
            "{name}: corrupt block still counted as decoded"
        );
        // Products are still derivable from the damaged trace (the
        // event list may legitimately shrink to nothing when the
        // damaged block held the sync anchors).
        a.build_products(Parallelism::Serial);

        // Streamed path agrees with the one-shot products exactly.
        let (b, bstats) = ingest_lossy(&bad, 7);
        assert!(bstats.blocks_corrupt >= 1, "{name}: streamed corrupt count");
        assert_eq!(a.events(), b.events(), "{name}: paths disagree (events)");
        assert_eq!(a.loss(), b.loss(), "{name}: paths disagree (loss)");

        // A window over the damaged region is suspect.
        let wq = v2.window_events(0, u64::MAX);
        assert!(wq.suspect, "{name}: damaged window not suspect");
    }
}

/// `analyze_v2` routes truncated images through the lossy streaming
/// path instead of failing, and still rejects non-v2 bytes outright.
#[test]
fn analyze_v2_falls_back_on_truncation() {
    let trace = golden("stream.pdt");
    let image = pack(&trace, BLOCK_RECORDS);

    let (whole, _) = analyze_v2(&image, Parallelism::Serial).unwrap();
    let short = &image[..image.len() - 64];
    let (cut, _) = analyze_v2(short, Parallelism::Serial).unwrap();
    assert!(decoded_total(&cut) <= decoded_total(&whole));

    // v1 bytes are not a v2 image.
    assert!(analyze_v2(&trace.to_bytes(), Parallelism::Serial).is_err());
    // Nor is an empty or sub-header image.
    assert!(analyze_v2(&[], Parallelism::Serial).is_err());
    assert!(analyze_v2(&image[..10], Parallelism::Serial).is_err());
}

/// Sweep: truncate a packed image at *every* byte offset and push it
/// through the chunked reader — no cut point may panic, and the lossy
/// close must always produce an analysis once the header is complete.
#[test]
fn every_truncation_offset_is_survivable() {
    let trace = golden("matmul.pdt");
    let image = pack(&trace, BLOCK_RECORDS);
    for cut in 0..image.len() {
        let mut ing = V2Ingest::new();
        ing.push(&image[..cut]).unwrap();
        match ing.finish_lossy() {
            Ok(()) => {
                ing.snapshot().expect("snapshot after lossy close");
            }
            Err(_) => assert!(cut < 36, "lossy close refused at offset {cut}"),
        }
    }
}
