//! Property battery for the happens-before engine (`ta::hb`).
//!
//! * Vector-clock algebra: `join` is commutative, associative,
//!   idempotent and monotone; `dominates` is a partial order and
//!   exactly characterizes joins.
//! * `happens_before` over arbitrary synthetic traces — random SPE
//!   streams of DMA, wait, barrier, mailbox and signal events plus a
//!   PPE driver stream — is a strict partial order: irreflexive,
//!   antisymmetric, transitive; and same-stream events are always
//!   ordered by position.
//! * Race verdicts are deterministic: the lint report on the race
//!   goldens is byte-identical across `Serial`, `Workers(4)` and
//!   `Auto`, and across one-shot versus chunked streamed ingestion.

use proptest::prelude::*;

use pdt::{EventCode, TraceCore, TraceHeader, VERSION};
use ta::{
    event_clocks, sync_edges_columns, AnalyzedTrace, ColumnarTrace, GlobalEvent, HbIndex,
    ImageIngest, LossReport, Parallelism, VecClock,
};

#[path = "common/goldens.rs"]
mod goldens;
use goldens::{golden, golden_bytes};

// ---------------------------------------------------------------------
// Vector-clock algebra
// ---------------------------------------------------------------------

fn arb_clock(width: usize) -> impl Strategy<Value = VecClock> {
    prop::collection::vec(0u32..6, width).prop_map(|entries| {
        let mut c = VecClock::new(entries.len());
        for (i, e) in entries.into_iter().enumerate() {
            c.set(i, e);
        }
        c
    })
}

proptest! {
    #[test]
    fn join_is_commutative_associative_idempotent_monotone(
        a in arb_clock(5),
        b in arb_clock(5),
        c in arb_clock(5),
    ) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba, "commutative");

        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");

        let mut aa = a.clone();
        aa.join(&a);
        prop_assert_eq!(&aa, &a, "idempotent");

        // Monotone: the join dominates both inputs, and is the least
        // such clock (entry-wise max).
        prop_assert!(ab.dominates(&a));
        prop_assert!(ab.dominates(&b));
        for i in 0..5 {
            prop_assert_eq!(ab.get(i), a.get(i).max(b.get(i)));
        }
    }

    #[test]
    fn dominates_is_a_partial_order(
        a in arb_clock(4),
        b in arb_clock(4),
        c in arb_clock(4),
    ) {
        prop_assert!(a.dominates(&a), "reflexive");
        if a.dominates(&b) && b.dominates(&a) {
            prop_assert_eq!(&a, &b, "antisymmetric");
        }
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c), "transitive");
        }
    }
}

// ---------------------------------------------------------------------
// Synthetic traces: happens_before is a strict partial order
// ---------------------------------------------------------------------

/// One step of a synthetic stream program; parameters are drawn from
/// tiny domains so streams genuinely interact (shared tags, matching
/// mailbox pairs) *and* produce malformed shapes (ends without
/// begins, waits on idle tags) the engine must survive.
#[derive(Debug, Clone)]
enum Step {
    Get { lsa: u64, tag: u64 },
    Put { lsa: u64, tag: u64 },
    WaitEnd { mask: u64 },
    Barrier,
    MboxWrite(u64),
    MboxReadEnd(u64),
    SignalReadBegin(u64),
    SignalReadEnd(u64),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        ((0u64..3), (0u64..3)).prop_map(|(b, tag)| Step::Get {
            lsa: 0x1000 * b,
            tag
        }),
        ((0u64..3), (0u64..3)).prop_map(|(b, tag)| Step::Put {
            lsa: 0x1000 * b,
            tag
        }),
        (1u64..8).prop_map(|mask| Step::WaitEnd { mask }),
        Just(Step::Barrier),
        (0u64..4).prop_map(Step::MboxWrite),
        (0u64..4).prop_map(Step::MboxReadEnd),
        (0u64..2).prop_map(Step::SignalReadBegin),
        (0u64..4).prop_map(Step::SignalReadEnd),
    ]
}

/// A PPE driver action against context `ctx` (== SPE index here).
/// Contexts are drawn from the full `0..3` range and reduced modulo
/// the actual SPE count in [`assemble`].
#[derive(Debug, Clone)]
enum PpeStep {
    MboxWrite { ctx: u64, value: u64 },
    MboxRead { ctx: u64 },
    SignalWrite { ctx: u64, reg: u64 },
}

fn arb_ppe_step() -> impl Strategy<Value = PpeStep> {
    prop_oneof![
        ((0u64..3), (0u64..4)).prop_map(|(ctx, value)| PpeStep::MboxWrite { ctx, value }),
        (0u64..3).prop_map(|ctx| PpeStep::MboxRead { ctx }),
        ((0u64..3), (0u64..2)).prop_map(|(ctx, reg)| PpeStep::SignalWrite { ctx, reg }),
    ]
}

/// Assembles per-stream step lists into a globally time-sorted trace.
/// Only the first `spes` step lists are used, and PPE context ids are
/// reduced modulo `spes`; per-stream skews make the streams interleave
/// differently case to case.
fn assemble(
    spes: usize,
    mut spe_steps: Vec<Vec<Step>>,
    ppe_steps: Vec<PpeStep>,
    skews: Vec<u64>,
) -> ColumnarTrace {
    use EventCode::*;
    spe_steps.truncate(spes);
    let spes = spe_steps.len() as u8;
    let mut events = Vec::new();
    // The PPE stream opens by running every context so mailbox and
    // signal targets resolve.
    let mut seq = 0u64;
    let mut t = 1;
    for s in 0..spes {
        events.push(GlobalEvent {
            time_tb: t,
            core: TraceCore::Ppe(0),
            code: PpeCtxRun,
            params: vec![s as u64, s as u64],
            stream_seq: seq,
        });
        seq += 1;
        t += 1;
    }
    for step in ppe_steps {
        let m = spes.max(1) as u64;
        let (code, params) = match step {
            PpeStep::MboxWrite { ctx, value } => (PpeMboxWrite, vec![ctx % m, value]),
            PpeStep::MboxRead { ctx } => (PpeMboxRead, vec![ctx % m]),
            PpeStep::SignalWrite { ctx, reg } => (PpeSignalWrite, vec![ctx % m, reg, 7]),
        };
        events.push(GlobalEvent {
            time_tb: t,
            core: TraceCore::Ppe(0),
            code,
            params,
            stream_seq: seq,
        });
        seq += 1;
        t += 13;
    }
    for (s, steps) in spe_steps.into_iter().enumerate() {
        let core = TraceCore::Spe(s as u8);
        let mut t = 2 + skews[s % skews.len()];
        let mut seq = 0u64;
        let mut push = |t: &mut u64, seq: &mut u64, code, params| {
            events.push(GlobalEvent {
                time_tb: *t,
                core,
                code,
                params,
                stream_seq: *seq,
            });
            *seq += 1;
            *t += 7;
        };
        push(&mut t, &mut seq, SpeCtxStart, vec![s as u64]);
        for step in steps {
            match step {
                Step::Get { lsa, tag } => {
                    push(&mut t, &mut seq, SpeDmaGet, vec![0x10_0000, lsa, 4096, tag])
                }
                Step::Put { lsa, tag } => {
                    push(&mut t, &mut seq, SpeDmaPut, vec![0x10_0000, lsa, 4096, tag])
                }
                Step::WaitEnd { mask } => {
                    push(&mut t, &mut seq, SpeTagWaitBegin, vec![mask, 0]);
                    push(&mut t, &mut seq, SpeTagWaitEnd, vec![mask]);
                }
                Step::Barrier => push(&mut t, &mut seq, SpeDmaBarrier, vec![]),
                Step::MboxWrite(v) => push(&mut t, &mut seq, SpeMboxWrite, vec![v]),
                Step::MboxReadEnd(v) => {
                    push(&mut t, &mut seq, SpeMboxReadBegin, vec![]);
                    push(&mut t, &mut seq, SpeMboxReadEnd, vec![v]);
                }
                Step::SignalReadBegin(reg) => push(&mut t, &mut seq, SpeSignalReadBegin, vec![reg]),
                Step::SignalReadEnd(v) => push(&mut t, &mut seq, SpeSignalReadEnd, vec![v]),
            }
        }
    }
    events.sort_by_key(|e| (e.time_tb, e.core.tag(), e.stream_seq));
    ColumnarTrace::from_analyzed(&AnalyzedTrace {
        header: TraceHeader {
            version: VERSION,
            num_ppe_threads: 1,
            num_spes: spes.max(1),
            core_hz: 3_200_000_000,
            timebase_divider: 120,
            dec_start: u32::MAX,
            group_mask: u32::MAX,
            spe_buffer_bytes: 2048,
        },
        events,
        ctx_names: vec![],
        anchors: vec![],
        dropped: 0,
    })
}

/// The generator inputs for one synthetic trace: SPE count, three
/// candidate step lists (trimmed to the count), PPE driver steps and
/// stream skews. The stub proptest has no `prop_flat_map`, so the
/// width-dependent trimming happens inside [`assemble`].
type TraceParts = ((usize, Vec<Vec<Step>>), (Vec<PpeStep>, Vec<u64>));

fn arb_trace_parts() -> impl Strategy<Value = TraceParts> {
    (
        (
            1usize..4,
            prop::collection::vec(prop::collection::vec(arb_step(), 0..8), 3),
        ),
        (
            prop::collection::vec(arb_ppe_step(), 0..8),
            prop::collection::vec(0u64..40, 1..=3),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn happens_before_is_a_strict_partial_order(
        ((spes, steps), (ppe, skews)) in arb_trace_parts()
    ) {
        let trace = assemble(spes, steps, ppe, skews);
        let edges = sync_edges_columns(&trace, &LossReport::default());
        let table = event_clocks(&trace, &edges);
        let n = trace.events.len();
        for a in 0..n {
            prop_assert!(!table.happens_before(a, a), "irreflexive at {a}");
            for b in 0..n {
                if table.happens_before(a, b) {
                    prop_assert!(
                        !table.happens_before(b, a),
                        "antisymmetry violated between {a} and {b}"
                    );
                }
                for c in 0..n {
                    if table.happens_before(a, b) && table.happens_before(b, c) {
                        prop_assert!(
                            table.happens_before(a, c),
                            "transitivity violated: {a} -> {b} -> {c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn same_stream_events_are_ordered_by_position(
        ((spes, steps), (ppe, skews)) in arb_trace_parts()
    ) {
        let trace = assemble(spes, steps, ppe, skews);
        let edges = sync_edges_columns(&trace, &LossReport::default());
        let table = event_clocks(&trace, &edges);
        for core in trace.cores() {
            let offs = trace.core_slice(core);
            for w in offs.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                prop_assert!(
                    table.happens_before(a, b),
                    "{core:?}: adjacent stream events {a},{b} must be ordered"
                );
            }
        }
    }

    #[test]
    fn race_enumeration_never_panics_and_shards_partition(
        ((spes, steps), (ppe, skews)) in arb_trace_parts()
    ) {
        let trace = assemble(spes, steps, ppe, skews);
        let edges = sync_edges_columns(&trace, &LossReport::default());
        let idx = HbIndex::build(&trace, &edges);
        let total: usize = (0..idx.shard_count())
            .map(|s| idx.races_in_shard(s).len())
            .sum();
        prop_assert_eq!(total, idx.races().len(), "shards must partition the races");
        for w in idx.races() {
            prop_assert!(w.lo < w.hi, "witness byte range must be non-empty");
        }
    }
}

// ---------------------------------------------------------------------
// Verdict determinism
// ---------------------------------------------------------------------

const RACE_GOLDENS: [&str; 3] = [
    "stream_racy.pdt",
    "stream_tag_hidden.pdt",
    "stream_mbox_sync.pdt",
];

#[test]
fn verdicts_are_identical_across_parallelism() {
    for name in RACE_GOLDENS {
        let trace = golden(name);
        let reference = ta::Analysis::of(&trace)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        let want_text = reference.lint().render_text();
        let want_json = reference.lint().to_json();
        for par in [Parallelism::Workers(4), Parallelism::Auto] {
            let a = ta::Analysis::of(&trace).parallelism(par).run().unwrap();
            assert_eq!(a.lint().render_text(), want_text, "{name} {par:?}");
            assert_eq!(a.lint().to_json(), want_json, "{name} {par:?}");
        }
    }
}

#[test]
fn verdicts_are_identical_one_shot_vs_streamed() {
    for name in RACE_GOLDENS {
        let trace = golden(name);
        let reference = ta::Analysis::of(&trace)
            .parallelism(Parallelism::Workers(2))
            .run()
            .unwrap();
        let image = golden_bytes(name);
        for split in [1usize, 57, 4096] {
            let mut ing = ImageIngest::new().with_parallelism(Parallelism::Workers(2));
            for chunk in image.chunks(split) {
                ing.push(chunk).unwrap();
            }
            ing.finish().unwrap();
            let snap = ing.snapshot().expect("complete image");
            assert_eq!(
                snap.lint().render_text(),
                reference.lint().render_text(),
                "{name} split {split}"
            );
            assert_eq!(
                snap.sync_edges(),
                reference.sync_edges(),
                "{name} split {split}: sync-edge sets must match"
            );
        }
    }
}
