//! Golden-trace lint suite: runs the `ta::lint` rule registry over the
//! seeded corpus in `tests/golden/` and pins the exact findings.
//!
//! `stream_racy.pdt` is generated from the deliberately broken
//! [`Buffering::RacyDouble`] stream kernel, so its defects are known by
//! construction: the prefetch GET lands in the same LS buffer as the
//! in-flight GET on a never-waited tag group, and the kernel opens
//! with a wait on an unused tag. Two further goldens pin the
//! happens-before engine's precision and recall against the old window
//! heuristic:
//!
//! - `stream_mbox_sync.pdt` — mailbox-paced, barrier-protected buffer
//!   reuse: correct code the window heuristic false-positives on; the
//!   engine must stay silent.
//! - `stream_tag_hidden.pdt` — a same-tag prefetch race the window
//!   heuristic (which only pairs differing tags) cannot see; the
//!   engine must report it.
//!
//! The clean goldens must produce zero firm (non-suspect)
//! error-severity diagnostics — including the fault-injected trace,
//! whose truncation artifacts must be downgraded to suspect rather
//! than reported firm. Every pinned report is checked on both the v1
//! `.pdt` bytes and the blocked `.pdt2` container.
//!
//! Regenerate the corpus with `cargo run -p bench --bin make_golden`.

use pdt::{TraceCore, TraceFile};
use ta::{
    dma_race_window_heuristic, Analysis, LintConfig, LintReport, Parallelism, Severity, V2Trace,
};

#[path = "common/goldens.rs"]
mod goldens;
use goldens::golden_v2_bytes;

const CLEAN: [&str; 5] = [
    "matmul.pdt",
    "stream.pdt",
    "pipeline.pdt",
    "stream_faulted.pdt",
    "stream_mbox_sync.pdt",
];

fn golden(name: &str) -> TraceFile {
    goldens::golden(name)
}

fn analysis(name: &str) -> Analysis {
    Analysis::of(&golden(name))
        .parallelism(Parallelism::Workers(2))
        .run()
        .unwrap()
}

/// The same trace through the v2 container, for the `.pdt2` pins.
fn analysis_v2(name: &str) -> std::sync::Arc<Analysis> {
    let bytes = golden_v2_bytes(name);
    let (a, stats) = V2Trace::parse(&bytes)
        .unwrap()
        .analyze(Parallelism::Workers(2));
    assert_eq!(stats.blocks_corrupt, 0, "{name}.pdt2");
    a
}

fn assert_racy_report(report: &LintReport) {
    // The seeded race: every tag-0 GET overlaps an outstanding tag-1
    // prefetch into the same buffer. 3 blocks per SPE → 6 race pairs
    // per SPE (the happens-before engine also pairs the two unordered
    // prefetches, which share tag 1), each reported once, anchored at
    // the later issue.
    let races: Vec<_> = report.of_rule("dma-race").collect();
    assert_eq!(races.len(), 12, "{races:#?}");
    for spe in [0u8, 1] {
        let anchors: Vec<u64> = races
            .iter()
            .filter(|d| d.anchor.unwrap().core == TraceCore::Spe(spe))
            .map(|d| d.anchor.unwrap().seq)
            .collect();
        assert_eq!(anchors, [4, 10, 11, 11, 17, 17], "SPE{spe} race anchors");
    }
    for d in &races {
        assert_eq!(d.severity, Severity::Error);
        assert!(!d.suspect, "clean trace: races must be firm");
        assert_eq!(d.related.len(), 1, "each race names the other half: {d:#?}");
    }

    // The never-waited prefetch tag: one finding per (SPE, tag),
    // anchored at the first unwaited issue — the tag-1 GET at seq 4.
    let unwaited: Vec<_> = report.of_rule("unwaited-tag-group").collect();
    assert_eq!(unwaited.len(), 2, "{unwaited:#?}");
    for (d, spe) in unwaited.iter().zip([0u8, 1]) {
        let a = d.anchor.unwrap();
        assert_eq!((a.core, a.seq), (TraceCore::Spe(spe), 4));
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("tag 1"), "{}", d.message);
    }

    // The gratuitous startup wait on tag 5 (mask 0x20), seq 1 on each
    // SPE — warn severity, not a CI gate.
    let vacuous: Vec<_> = report.of_rule("wait-without-dma").collect();
    assert_eq!(vacuous.len(), 2, "{vacuous:#?}");
    for (d, spe) in vacuous.iter().zip([0u8, 1]) {
        let a = d.anchor.unwrap();
        assert_eq!((a.core, a.seq), (TraceCore::Spe(spe), 1));
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("0x20"), "{}", d.message);
    }

    // Nothing else fires, and the gate counts exactly the errors.
    assert_eq!(report.diagnostics.len(), 16, "{report:#?}");
    assert_eq!(report.firm_errors().count(), 14);
    assert!(!report.is_clean());
}

#[test]
fn racy_stream_reports_the_seeded_defects_exactly() {
    assert_racy_report(analysis("stream_racy.pdt").lint());
}

#[test]
fn racy_stream_pdt2_reports_the_same_defects() {
    assert_racy_report(analysis_v2("stream_racy.pdt").lint());
}

#[test]
fn racy_timestamps_are_pinned_to_the_golden_bytes() {
    // The corpus is committed, so reconstructed anchor times are
    // stable; pin the first race per SPE to catch silent drift in
    // timestamp reconstruction or sweep windowing.
    let a = analysis("stream_racy.pdt");
    let report = a.lint();
    let first: Vec<(TraceCore, u64, u64)> = report
        .of_rule("dma-race")
        .map(|d| d.anchor.unwrap())
        .map(|a| (a.core, a.seq, a.time_tb))
        .take(2)
        .collect();
    assert_eq!(
        first,
        [(TraceCore::Spe(0), 4, 75), (TraceCore::Spe(0), 10, 127),]
    );
}

#[test]
fn clean_goldens_produce_no_firm_errors() {
    for name in CLEAN {
        let a = analysis(name);
        let report = a.lint();
        let firm: Vec<_> = report.firm_errors().collect();
        assert!(firm.is_empty(), "{name}: {firm:#?}");
        assert!(report.is_clean(), "{name}");
    }
}

#[test]
fn faulted_stream_downgrades_truncation_artifacts_to_suspect() {
    // The fault-injected trace cuts SPE0's stream mid-flight, leaving
    // PUTs without their covering waits. Those ARE unwaited tag
    // groups on the evidence — but the loss report explains them, so
    // they must come back suspect, never firm.
    let a = analysis("stream_faulted.pdt");
    let report = a.lint();
    let unwaited: Vec<_> = report.of_rule("unwaited-tag-group").collect();
    assert!(!unwaited.is_empty(), "truncation should strand transfers");
    for d in &unwaited {
        assert_eq!(d.severity, Severity::Error);
        assert!(d.suspect, "must be downgraded: {d:#?}");
    }
    // And the downgrade is the only thing standing between the trace
    // and a gate failure.
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error));
    assert_eq!(report.firm_errors().count(), 0);
}

#[test]
fn baseline_config_suppresses_and_gates() {
    let a = analysis("stream_racy.pdt");

    // Suppress the races on SPE0 only: 6 fewer diagnostics.
    let config = LintConfig::from_toml_str(
        r#"
        [[suppress]]
        rule = "dma-race"
        core = "spe0"
        reason = "seeded on purpose; SPE0 covered by kernel review"
        "#,
    )
    .unwrap();
    let report = a.lint_with(&config);
    assert_eq!(report.suppressed, 6);
    assert_eq!(report.of_rule("dma-race").count(), 6);
    assert!(report
        .of_rule("dma-race")
        .all(|d| d.anchor.unwrap().core == TraceCore::Spe(1)));

    // Allow-listing a rule removes it from the run entirely.
    let config =
        LintConfig::from_toml_str(r#"allow = ["dma-race", "unwaited-tag-group"]"#).unwrap();
    let report = a.lint_with(&config);
    assert_eq!(report.of_rule("dma-race").count(), 0);
    assert!(!report.rules.iter().any(|r| r.id == "dma-race"));
    assert!(report.is_clean(), "only warns remain");

    // Denying a warn-level rule promotes it to a gating error.
    let config = LintConfig::from_toml_str(
        r#"
        allow = ["dma-race", "unwaited-tag-group"]
        deny = ["wait-without-dma"]
        "#,
    )
    .unwrap();
    let report = a.lint_with(&config);
    assert!(!report.is_clean());
    assert!(report
        .of_rule("wait-without-dma")
        .all(|d| d.severity == Severity::Error));
}

#[test]
fn renderers_cover_the_racy_report() {
    let a = analysis("stream_racy.pdt");
    let report = a.lint();

    let text = report.render_text();
    assert!(text.contains("error[dma-race]"));
    assert!(text.contains("14 firm error(s)"));

    let json = report.to_json();
    assert!(json.contains("\"firm_errors\":14"));
    assert!(json.contains("\"rule\":\"unwaited-tag-group\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let sarif = report.to_sarif();
    assert!(sarif.contains("\"version\":\"2.1.0\""));
    assert!(sarif.contains("\"ruleId\":\"dma-race\""));
    assert!(sarif.contains("\"name\":\"SPE0\""));
    // Every diagnostic with witness anchors (each race's partner
    // access, the unwaited group's remaining issues) carries them as
    // SARIF relatedLocations.
    assert_eq!(
        sarif.matches("\"relatedLocations\":").count(),
        report
            .diagnostics
            .iter()
            .filter(|d| !d.related.is_empty())
            .count()
    );
    assert_eq!(sarif.matches("\"relatedLocations\":").count(), 14);
    assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
}

#[test]
fn session_lint_is_memoized() {
    let a = analysis("stream_racy.pdt");
    let first: *const _ = a.lint();
    let second: *const _ = a.lint();
    assert_eq!(first, second);
}

/// The barrier-protected, mailbox-paced buffer reuse is provably
/// ordered — but its PUTs are only tag-waited at the final drain, so
/// the window heuristic sees each PUT's wait window stretch over the
/// GET that refills the same buffer and reports races that cannot
/// happen. Precision pin: the engine is silent, the heuristic is not.
#[test]
fn mbox_sync_overlaps_are_proved_synchronized() {
    for a in [
        std::sync::Arc::new(analysis("stream_mbox_sync.pdt")),
        analysis_v2("stream_mbox_sync.pdt"),
    ] {
        let report = a.lint();
        assert!(report.diagnostics.is_empty(), "{report:#?}");
        assert!(report.is_clean());

        let false_positives = dma_race_window_heuristic(a.columns());
        assert!(
            !false_positives.is_empty(),
            "the golden no longer traps the window heuristic — \
             regenerate or rework stream_mbox_sync"
        );
    }
}

fn assert_tag_hidden_report(report: &LintReport) {
    // 3 blocks per SPE, each non-final round prefetching the next
    // block into the same buffer on the same tag: 2 races per SPE,
    // anchored at the prefetch issues (seq 2 and 9).
    let races: Vec<_> = report.of_rule("dma-race").collect();
    assert_eq!(races.len(), 4, "{races:#?}");
    for spe in [0u8, 1] {
        let anchors: Vec<u64> = races
            .iter()
            .filter(|d| d.anchor.unwrap().core == TraceCore::Spe(spe))
            .map(|d| d.anchor.unwrap().seq)
            .collect();
        assert_eq!(anchors, [2, 9], "SPE{spe} race anchors");
    }
    for d in &races {
        assert_eq!(d.severity, Severity::Error);
        assert!(!d.suspect);
        assert_eq!(d.related.len(), 1);
        assert!(
            d.message.contains("same tag group"),
            "the witness must explain why the shared tag orders nothing: {}",
            d.message
        );
    }
    // The race is the only defect: every tag is waited, every wait
    // covers outstanding transfers.
    assert_eq!(report.diagnostics.len(), 4, "{report:#?}");
    assert_eq!(report.firm_errors().count(), 4);
}

/// The same-tag prefetch race: invisible to the window heuristic
/// (which only pairs transfers on differing tags), reported with a
/// full witness by the engine. Recall pin.
#[test]
fn tag_hidden_race_is_reported_despite_the_shared_tag() {
    for a in [
        std::sync::Arc::new(analysis("stream_tag_hidden.pdt")),
        analysis_v2("stream_tag_hidden.pdt"),
    ] {
        assert_tag_hidden_report(a.lint());
        assert!(
            dma_race_window_heuristic(a.columns()).is_empty(),
            "the window heuristic should still be blind to same-tag races"
        );
    }
}
