//! Golden-trace lint suite: runs the `ta::lint` rule registry over the
//! seeded corpus in `tests/golden/` and pins the exact findings.
//!
//! `stream_racy.pdt` is generated from the deliberately broken
//! [`Buffering::RacyDouble`] stream kernel, so its defects are known by
//! construction: the prefetch GET lands in the same LS buffer as the
//! in-flight GET on a never-waited tag group, and the kernel opens
//! with a wait on an unused tag. The clean goldens must produce zero
//! firm (non-suspect) error-severity diagnostics — including the
//! fault-injected trace, whose truncation artifacts must be downgraded
//! to suspect rather than reported firm.
//!
//! Regenerate the corpus with `cargo run -p bench --bin make_golden`.

use std::path::PathBuf;

use pdt::{TraceCore, TraceFile};
use ta::{Analysis, LintConfig, Parallelism, Severity};

const CLEAN: [&str; 4] = [
    "matmul.pdt",
    "stream.pdt",
    "pipeline.pdt",
    "stream_faulted.pdt",
];

fn golden(name: &str) -> TraceFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    TraceFile::read_from(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nregenerate the corpus with `cargo run -p bench --bin make_golden`",
            path.display()
        )
    })
}

fn analysis(name: &str) -> Analysis {
    Analysis::of(&golden(name))
        .parallelism(Parallelism::Workers(2))
        .run()
        .unwrap()
}

#[test]
fn racy_stream_reports_the_seeded_defects_exactly() {
    let a = analysis("stream_racy.pdt");
    let report = a.lint();

    // The seeded race: every tag-0 GET overlaps an outstanding tag-1
    // prefetch into the same buffer. 3 blocks per SPE → 5 race pairs
    // per SPE, each reported once, anchored at the later issue.
    let races: Vec<_> = report.of_rule("dma-race").collect();
    assert_eq!(races.len(), 10, "{races:#?}");
    for spe in [0u8, 1] {
        let anchors: Vec<u64> = races
            .iter()
            .filter(|d| d.anchor.unwrap().core == TraceCore::Spe(spe))
            .map(|d| d.anchor.unwrap().seq)
            .collect();
        assert_eq!(anchors, [4, 10, 11, 17, 17], "SPE{spe} race anchors");
    }
    for d in &races {
        assert_eq!(d.severity, Severity::Error);
        assert!(!d.suspect, "clean trace: races must be firm");
        assert_eq!(d.related.len(), 1, "each race names the other half: {d:#?}");
    }

    // The never-waited prefetch tag: one finding per (SPE, tag),
    // anchored at the first unwaited issue — the tag-1 GET at seq 4.
    let unwaited: Vec<_> = report.of_rule("unwaited-tag-group").collect();
    assert_eq!(unwaited.len(), 2, "{unwaited:#?}");
    for (d, spe) in unwaited.iter().zip([0u8, 1]) {
        let a = d.anchor.unwrap();
        assert_eq!((a.core, a.seq), (TraceCore::Spe(spe), 4));
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("tag 1"), "{}", d.message);
    }

    // The gratuitous startup wait on tag 5 (mask 0x20), seq 1 on each
    // SPE — warn severity, not a CI gate.
    let vacuous: Vec<_> = report.of_rule("wait-without-dma").collect();
    assert_eq!(vacuous.len(), 2, "{vacuous:#?}");
    for (d, spe) in vacuous.iter().zip([0u8, 1]) {
        let a = d.anchor.unwrap();
        assert_eq!((a.core, a.seq), (TraceCore::Spe(spe), 1));
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("0x20"), "{}", d.message);
    }

    // Nothing else fires, and the gate counts exactly the errors.
    assert_eq!(report.diagnostics.len(), 14, "{report:#?}");
    assert_eq!(report.firm_errors().count(), 12);
    assert!(!report.is_clean());
}

#[test]
fn racy_timestamps_are_pinned_to_the_golden_bytes() {
    // The corpus is committed, so reconstructed anchor times are
    // stable; pin the first race per SPE to catch silent drift in
    // timestamp reconstruction or sweep windowing.
    let a = analysis("stream_racy.pdt");
    let report = a.lint();
    let first: Vec<(TraceCore, u64, u64)> = report
        .of_rule("dma-race")
        .map(|d| d.anchor.unwrap())
        .map(|a| (a.core, a.seq, a.time_tb))
        .take(2)
        .collect();
    assert_eq!(
        first,
        [(TraceCore::Spe(0), 4, 75), (TraceCore::Spe(0), 10, 127),]
    );
}

#[test]
fn clean_goldens_produce_no_firm_errors() {
    for name in CLEAN {
        let a = analysis(name);
        let report = a.lint();
        let firm: Vec<_> = report.firm_errors().collect();
        assert!(firm.is_empty(), "{name}: {firm:#?}");
        assert!(report.is_clean(), "{name}");
    }
}

#[test]
fn faulted_stream_downgrades_truncation_artifacts_to_suspect() {
    // The fault-injected trace cuts SPE0's stream mid-flight, leaving
    // PUTs without their covering waits. Those ARE unwaited tag
    // groups on the evidence — but the loss report explains them, so
    // they must come back suspect, never firm.
    let a = analysis("stream_faulted.pdt");
    let report = a.lint();
    let unwaited: Vec<_> = report.of_rule("unwaited-tag-group").collect();
    assert!(!unwaited.is_empty(), "truncation should strand transfers");
    for d in &unwaited {
        assert_eq!(d.severity, Severity::Error);
        assert!(d.suspect, "must be downgraded: {d:#?}");
    }
    // And the downgrade is the only thing standing between the trace
    // and a gate failure.
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error));
    assert_eq!(report.firm_errors().count(), 0);
}

#[test]
fn baseline_config_suppresses_and_gates() {
    let a = analysis("stream_racy.pdt");

    // Suppress the races on SPE0 only: 5 fewer diagnostics.
    let config = LintConfig::from_toml_str(
        r#"
        [[suppress]]
        rule = "dma-race"
        core = "spe0"
        reason = "seeded on purpose; SPE0 covered by kernel review"
        "#,
    )
    .unwrap();
    let report = a.lint_with(&config);
    assert_eq!(report.suppressed, 5);
    assert_eq!(report.of_rule("dma-race").count(), 5);
    assert!(report
        .of_rule("dma-race")
        .all(|d| d.anchor.unwrap().core == TraceCore::Spe(1)));

    // Allow-listing a rule removes it from the run entirely.
    let config =
        LintConfig::from_toml_str(r#"allow = ["dma-race", "unwaited-tag-group"]"#).unwrap();
    let report = a.lint_with(&config);
    assert_eq!(report.of_rule("dma-race").count(), 0);
    assert!(!report.rules.iter().any(|r| r.id == "dma-race"));
    assert!(report.is_clean(), "only warns remain");

    // Denying a warn-level rule promotes it to a gating error.
    let config = LintConfig::from_toml_str(
        r#"
        allow = ["dma-race", "unwaited-tag-group"]
        deny = ["wait-without-dma"]
        "#,
    )
    .unwrap();
    let report = a.lint_with(&config);
    assert!(!report.is_clean());
    assert!(report
        .of_rule("wait-without-dma")
        .all(|d| d.severity == Severity::Error));
}

#[test]
fn renderers_cover_the_racy_report() {
    let a = analysis("stream_racy.pdt");
    let report = a.lint();

    let text = report.render_text();
    assert!(text.contains("error[dma-race]"));
    assert!(text.contains("12 firm error(s)"));

    let json = report.to_json();
    assert!(json.contains("\"firm_errors\":12"));
    assert!(json.contains("\"rule\":\"unwaited-tag-group\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let sarif = report.to_sarif();
    assert!(sarif.contains("\"version\":\"2.1.0\""));
    assert!(sarif.contains("\"ruleId\":\"dma-race\""));
    assert!(sarif.contains("\"name\":\"SPE0\""));
    assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
}

#[test]
fn session_lint_is_memoized() {
    let a = analysis("stream_racy.pdt");
    let first: *const _ = a.lint();
    let second: *const _ = a.lint();
    assert_eq!(first, second);
}
