//! Streaming-ingestion differential suite: every golden trace, fed to
//! [`ta::ImageIngest`] as appended chunks — one byte at a time, 4 KiB
//! at a time, and at seeded pseudo-random split points — must produce
//! an [`Analysis`] snapshot identical to the one-shot [`Analysis::of`]
//! in every derived product: events, anchors, loss accounting,
//! intervals, statistics, timeline, index, and lint diagnostics.
//!
//! The corpus includes the fault-injected goldens, so chunk boundaries
//! land inside torn and corrupt records too; the per-stream resync
//! cursors must carry that state across the boundary.

use std::sync::Arc;

use pdt::TraceFile;
use ta::{Analysis, ImageIngest, Parallelism};

#[path = "common/goldens.rs"]
mod goldens;
use goldens::{golden_path, GOLDEN};

fn oneshot(name: &str) -> Analysis {
    let trace = TraceFile::read_from(golden_path(name)).unwrap_or_else(|e| {
        panic!("{name}: {e}\nregenerate with `cargo run -p bench --bin make_golden`")
    });
    Analysis::of(&trace)
        .parallelism(Parallelism::Workers(2))
        .run()
        .unwrap()
}

/// Feeds `image` to a fresh ingest in pieces whose sizes come from
/// `splits` (cycled), returning the final snapshot.
fn ingest_split(image: &[u8], splits: &[usize]) -> Arc<Analysis> {
    let mut ing = ImageIngest::new().with_parallelism(Parallelism::Workers(2));
    let mut off = 0;
    let mut i = 0;
    while off < image.len() {
        let n = splits[i % splits.len()].max(1).min(image.len() - off);
        ing.push(&image[off..off + n]).unwrap();
        off += n;
        i += 1;
    }
    assert!(ing.is_complete());
    ing.finish().unwrap();
    ing.snapshot().expect("complete image has a session")
}

fn assert_identical(name: &str, chunked: &Analysis, oneshot: &Analysis, how: &str) {
    let (ca, oa) = (chunked.analyzed(), oneshot.analyzed());
    assert_eq!(ca.header, oa.header, "{name} [{how}] header");
    assert_eq!(ca.events, oa.events, "{name} [{how}] events");
    assert_eq!(ca.anchors, oa.anchors, "{name} [{how}] anchors");
    assert_eq!(ca.ctx_names, oa.ctx_names, "{name} [{how}] ctx names");
    assert_eq!(ca.dropped, oa.dropped, "{name} [{how}] dropped");
    assert_eq!(chunked.loss(), oneshot.loss(), "{name} [{how}] loss");
    assert_eq!(
        chunked.intervals(),
        oneshot.intervals(),
        "{name} [{how}] intervals"
    );
    assert_eq!(chunked.stats(), oneshot.stats(), "{name} [{how}] stats");
    assert_eq!(
        chunked.timeline(),
        oneshot.timeline(),
        "{name} [{how}] timeline"
    );
    assert_eq!(chunked.index(), oneshot.index(), "{name} [{how}] index");
    assert_eq!(chunked.lint(), oneshot.lint(), "{name} [{how}] lint");
}

#[test]
fn byte_at_a_time_matches_oneshot() {
    for name in GOLDEN {
        let image = std::fs::read(golden_path(name)).unwrap();
        let snap = ingest_split(&image, &[1]);
        assert_identical(name, &snap, &oneshot(name), "1-byte chunks");
    }
}

#[test]
fn four_kib_chunks_match_oneshot() {
    for name in GOLDEN {
        let image = std::fs::read(golden_path(name)).unwrap();
        let snap = ingest_split(&image, &[4096]);
        assert_identical(name, &snap, &oneshot(name), "4KiB chunks");
    }
}

#[test]
fn random_split_points_match_oneshot() {
    for name in GOLDEN {
        let image = std::fs::read(golden_path(name)).unwrap();
        let one = oneshot(name);
        // Seeded LCG so failures replay; sizes cover 1..=257 bytes and
        // land chunk boundaries inside headers, records and faults.
        let mut state: u64 = 0x243F_6A88_85A3_08D3 ^ image.len() as u64;
        for round in 0..4 {
            let mut splits = Vec::with_capacity(64);
            for _ in 0..64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                splits.push(((state >> 33) % 257 + 1) as usize);
            }
            let snap = ingest_split(&image, &splits);
            assert_identical(name, &snap, &one, &format!("random splits, round {round}"));
        }
    }
}

/// Mid-ingest snapshots must be usable and frozen: each epoch keeps
/// serving its own event list after further appends mutate the
/// session, and the event count never goes backwards.
#[test]
fn intermediate_snapshots_are_frozen_and_monotone() {
    let image = std::fs::read(golden_path("stream_faulted.pdt")).unwrap();
    let mut ing = ImageIngest::new().with_parallelism(Parallelism::Workers(2));
    let mut epochs: Vec<(Arc<Analysis>, Vec<u64>)> = Vec::new();
    for piece in image.chunks(293) {
        ing.push(piece).unwrap();
        if let Some(snap) = ing.snapshot() {
            let times: Vec<u64> = snap.events().iter().map(|e| e.time_tb).collect();
            if let Some((_, prev)) = epochs.last() {
                assert!(
                    times.len() >= prev.len(),
                    "event count went backwards: {} < {}",
                    times.len(),
                    prev.len()
                );
            }
            epochs.push((snap, times));
        }
    }
    ing.finish().unwrap();
    for (snap, times) in &epochs {
        let now: Vec<u64> = snap.events().iter().map(|e| e.time_tb).collect();
        assert_eq!(&now, times, "epoch mutated after later appends");
    }
}

/// Snapshots serve queries concurrently with ingestion: reader threads
/// hammer each epoch while the writer keeps appending.
#[test]
fn concurrent_readers_during_ingest() {
    use std::sync::mpsc;
    use std::thread;

    let image = std::fs::read(golden_path("pipeline.pdt")).unwrap();
    let one = oneshot("pipeline.pdt");

    let (tx, rx) = mpsc::channel::<Arc<Analysis>>();
    let reader = thread::spawn(move || {
        let mut seen = 0usize;
        for snap in rx {
            // Touch every lazy product; a torn epoch would panic or
            // disagree with itself here.
            let events = snap.events().len();
            assert!(events >= seen);
            seen = events;
            let stats = snap.stats();
            assert!(stats.spes.len() <= snap.analyzed().header.num_spes as usize);
            let end = snap.index().end_tb();
            let s = snap.summarize(0, end.saturating_add(1));
            assert_eq!(s.total_events(), events as u64);
            let _ = snap.timeline();
            let _ = snap.summary();
        }
        seen
    });

    let mut ing = ImageIngest::new().with_parallelism(Parallelism::Workers(2));
    for piece in image.chunks(173) {
        ing.push(piece).unwrap();
        if let Some(snap) = ing.snapshot() {
            tx.send(snap).unwrap();
        }
    }
    ing.finish().unwrap();
    let last = ing.snapshot().unwrap();
    tx.send(Arc::clone(&last)).unwrap();
    drop(tx);

    let seen = reader.join().unwrap();
    assert_eq!(seen, one.events().len());
    assert_identical("pipeline.pdt", &last, &one, "concurrent ingest");
}
