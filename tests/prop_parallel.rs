//! Property-based equivalence of the parallel ingestion engine:
//! whatever the machine shape and workload, analyzing with 1, 2 or 8
//! worker threads must produce exactly the serial analyzer's output —
//! same events in the same order, same intervals, same statistics.

use proptest::prelude::*;

use cell_pdt::prelude::*;

/// A generatable, always-terminating SPU action.
#[derive(Debug, Clone)]
enum Step {
    Compute(u64),
    DmaRound { size_class: u8, tag: u8 },
    User(u32),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..20_000).prop_map(Step::Compute),
        ((0u8..4), (0u8..4)).prop_map(|(size_class, tag)| Step::DmaRound { size_class, tag }),
        (0u32..100).prop_map(Step::User),
    ]
}

fn to_actions(steps: &[Step]) -> Vec<SpuAction> {
    let mut out = Vec::new();
    for s in steps {
        match s {
            Step::Compute(n) => out.push(SpuAction::Compute(*n)),
            Step::DmaRound { size_class, tag } => {
                let size = 128u32 << (2 * *size_class as u32); // 128..8192
                let tag = TagId::new(*tag).unwrap();
                out.push(SpuAction::DmaGet {
                    lsa: cellsim::LsAddr::new(0x10000),
                    ea: 0x100000,
                    size,
                    tag,
                });
                out.push(SpuAction::WaitTags {
                    mask: tag.mask_bit(),
                    mode: TagWaitMode::All,
                });
            }
            Step::User(id) => out.push(SpuAction::UserEvent {
                id: *id,
                a0: 1,
                a1: 2,
            }),
        }
    }
    out
}

fn traced_run(programs: &[Vec<Step>], buffer_bytes: u32) -> TraceFile {
    let spes = programs.len();
    let mut m = Machine::new(MachineConfig::default().with_num_spes(spes)).unwrap();
    let session = TraceSession::install(
        TracingConfig::default().with_buffer_bytes(buffer_bytes),
        &mut m,
    )
    .unwrap();
    let jobs: Vec<SpeJob> = programs
        .iter()
        .enumerate()
        .map(|(i, steps)| SpeJob::new(format!("p{i}"), Box::new(SpuScript::new(to_actions(steps)))))
        .collect();
    m.set_ppe_program(PpeThreadId::new(0), Box::new(SpmdDriver::new(jobs)));
    m.run().expect("scripted programs always terminate");
    session.collect(&m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_ingestion_is_byte_identical_to_serial(
        programs in prop::collection::vec(prop::collection::vec(arb_step(), 0..24), 1..6),
        buffer_bytes in prop_oneof![Just(512u32), Just(2048u32), Just(8192u32)],
    ) {
        let trace = traced_run(&programs, buffer_bytes);
        let serial = analyze(&trace).expect("trace analyzes");
        let serial_intervals = build_intervals(&serial);
        let serial_stats = compute_stats(&serial);

        for threads in [1usize, 2, 8] {
            let par = ta::analyze_parallel(&trace, threads).expect("parallel analyzes");
            prop_assert_eq!(&par.events, &serial.events, "event order, {} threads", threads);
            prop_assert_eq!(&par.anchors, &serial.anchors, "anchors, {} threads", threads);
            prop_assert_eq!(par.dropped, serial.dropped);

            let analysis = Analysis::of(&trace)
                .parallelism(ta::Parallelism::from_threads(threads))
                .run()
                .unwrap();
            prop_assert_eq!(analysis.intervals(), serial_intervals.as_slice());
            prop_assert_eq!(analysis.stats(), &serial_stats, "stats, {} threads", threads);
        }
    }

    #[test]
    fn zero_copy_image_matches_serial(
        programs in prop::collection::vec(prop::collection::vec(arb_step(), 0..12), 1..4),
    ) {
        let trace = traced_run(&programs, 2048);
        let bytes = trace.to_bytes();
        let image = TraceImage::parse(&bytes).expect("image parses");
        let serial = analyze(&trace).expect("trace analyzes");
        for threads in [1usize, 8] {
            let par = image.analyze(threads).expect("image analyzes");
            prop_assert_eq!(&par.events, &serial.events);
            prop_assert_eq!(&par.anchors, &serial.anchors);
        }
    }
}
