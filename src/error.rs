//! The umbrella error type.
//!
//! Every stage of the simulate → trace → analyze pipeline has its own
//! error type; [`Error`] unifies them so an application (or a doctest)
//! can thread the whole pipeline with `?` and return one type:
//!
//! ```text
//! fn main() -> Result<(), cell_pdt::Error> {
//!     let mut machine = Machine::new(cfg)?;          // SimError
//!     let session = TraceSession::install(tc, &mut machine)?; // TracingConfigError
//!     machine.run()?;                                // SimError
//!     workload.verify(&machine)?;                    // String -> Verify
//!     let analysis = Analysis::of(&session.collect(&machine)).run()?; // AnalyzeError
//!     Ok(())
//! }
//! ```

use std::fmt;

/// Any error from the simulate → trace → analyze pipeline.
#[derive(Debug)]
pub enum Error {
    /// Simulator errors (machine construction, run, DMA, memory).
    Sim(cellsim::SimError),
    /// Tracing-session configuration or installation errors.
    TracingConfig(pdt::TracingConfigError),
    /// Serialized-trace parsing errors.
    Format(pdt::FormatError),
    /// Trace decode / timestamp-reconstruction errors.
    Analyze(ta::AnalyzeError),
    /// Workload result-verification failures.
    Verify(String),
    /// Host I/O errors (reading or writing trace files).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sim(e) => write!(f, "simulation: {e}"),
            Error::TracingConfig(e) => write!(f, "tracing: {e}"),
            Error::Format(e) => write!(f, "trace format: {e}"),
            Error::Analyze(e) => write!(f, "analysis: {e}"),
            Error::Verify(msg) => write!(f, "workload verification failed: {msg}"),
            Error::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sim(e) => Some(e),
            Error::TracingConfig(e) => Some(e),
            Error::Format(e) => Some(e),
            Error::Analyze(e) => Some(e),
            Error::Verify(_) => None,
            Error::Io(e) => Some(e),
        }
    }
}

impl From<cellsim::SimError> for Error {
    fn from(e: cellsim::SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<pdt::TracingConfigError> for Error {
    fn from(e: pdt::TracingConfigError) -> Self {
        Error::TracingConfig(e)
    }
}

impl From<pdt::FormatError> for Error {
    fn from(e: pdt::FormatError) -> Self {
        Error::Format(e)
    }
}

impl From<ta::AnalyzeError> for Error {
    fn from(e: ta::AnalyzeError) -> Self {
        Error::Analyze(e)
    }
}

/// Workload verification reports failures as `String`; `?` lifts them
/// into [`Error::Verify`].
impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Verify(msg)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_strings_lift_into_error() {
        fn verify() -> Result<(), String> {
            Err("SPE2 output mismatch".into())
        }
        fn pipeline() -> Result<(), Error> {
            verify()?;
            Ok(())
        }
        let err = pipeline().unwrap_err();
        assert!(matches!(err, Error::Verify(_)));
        assert!(err.to_string().contains("SPE2 output mismatch"));
    }

    #[test]
    fn component_errors_convert_and_chain() {
        let e: Error = pdt::TraceFile::from_bytes(&[0u8; 3]).unwrap_err().into();
        assert!(matches!(e, Error::Format(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().starts_with("trace format:"));

        let bad = cellsim::MachineConfig::default().with_num_spes(0);
        let e: Error = cellsim::Machine::new(bad).unwrap_err().into();
        assert!(matches!(e, Error::Sim(_)));
    }
}
