//! # cell-pdt — trace-based performance analysis on a simulated Cell BE
//!
//! Umbrella crate for the reproduction of *Trace-based Performance
//! Analysis on Cell BE* (Biberstein et al., ISPASS 2008). It re-exports
//! the four component crates:
//!
//! - [`cellsim`] — the cycle-approximate Cell Broadband Engine
//!   simulator substrate (PPE, SPEs, MFC DMA, EIB, mailboxes, signals,
//!   decrementers);
//! - [`pdt`] — the Performance Debugging Tool: event tracing with
//!   local-store buffers, DMA flushing and an emergent overhead model;
//! - [`ta`] — the Trace Analyzer: timestamp reconstruction, activity
//!   intervals, statistics, SVG/ASCII timelines;
//! - [`workloads`] — verified Cell applications (matmul, FFT,
//!   streaming, pipeline, sparse) plus microbenchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use cell_pdt::prelude::*;
//!
//! # fn main() -> Result<(), cell_pdt::Error> {
//! // Build a 2-SPE machine and attach a PDT tracing session.
//! let mut machine = Machine::new(MachineConfig::default().with_num_spes(2))?;
//! let session = TraceSession::install(TracingConfig::default(), &mut machine)?;
//!
//! // Run a verified workload.
//! let workload = StreamWorkload::new(StreamConfig {
//!     blocks: 8,
//!     spes: 2,
//!     ..StreamConfig::default()
//! });
//! let driver = workload.stage(&mut machine);
//! machine.set_ppe_program(PpeThreadId::new(0), driver);
//! machine.run()?;
//! workload.verify(&machine)?;
//!
//! // Analyze the trace the PDT collected: one parallel ingestion,
//! // memoized products behind the session's accessors.
//! let trace = session.collect(&machine);
//! let analysis = Analysis::of(&trace).run()?;
//! assert_eq!(analysis.stats().spes.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;

pub use cellsim;
pub use pdt;
pub use ta;
pub use workloads;

pub use error::Error;

/// The most common imports, for examples and quick experiments.
pub mod prelude {
    pub use crate::Error;
    pub use cellsim::{
        CoreId, Machine, MachineConfig, PpeAction, PpeProgram, PpeThreadId, PpeWake, SpeId, SpeJob,
        SpmdDriver, SpuAction, SpuProgram, SpuScript, SpuWake, TagId, TagWaitMode,
    };
    pub use pdt::{EventGroup, GroupMask, TraceCore, TraceFile, TraceSession, TracingConfig};
    pub use ta::{
        analyze, build_intervals, build_timeline, compute_stats, validate, ActivityKind, Analysis,
        AnalysisBuilder, CsvTable, DecodePolicy, EventFilter, FaultInjector, FaultKind,
        ImageIngest, IngestSession, LossReport, MappedImage, Parallelism, RenderOptions, Report,
        ReportKind, SvgOptions, TraceImage,
    };
    pub use workloads::{
        run_workload, Buffering, DmaSweepConfig, DmaSweepWorkload, EventRateConfig,
        EventRateWorkload, FftConfig, FftWorkload, MatmulConfig, MatmulWorkload, PipelineConfig,
        PipelineWorkload, Schedule, SparseConfig, SparseWorkload, StencilConfig, StencilWorkload,
        StreamConfig, StreamWorkload, Workload,
    };
}
