//! Writing your own instrumented SPU kernel: bracket logical phases
//! with PDT user-event markers, save the trace to disk, and let the
//! analyzer reconstruct the phase structure.
//!
//! ```sh
//! cargo run --example phase_markers
//! # then inspect the saved trace with the standalone analyzer:
//! cargo run -p ta --bin ta-cli -- summary phase_markers.pdt
//! cargo run -p ta --bin ta-cli -- phases  phase_markers.pdt
//! ```

use cell_pdt::prelude::*;
use pdt::markers::{PHASE_BEGIN, PHASE_END};

const PHASE_LOAD: u32 = 1;
const PHASE_COMPUTE: u32 = 2;

/// A kernel that marks its load and compute phases.
struct MarkedKernel {
    rounds: u32,
    step: u32,
}

impl SpuProgram for MarkedKernel {
    fn resume(&mut self, _wake: SpuWake, env: cellsim::SpuEnv<'_>) -> SpuAction {
        // Steps per round: mark-load, GET, wait, end-load,
        // mark-compute, compute, end-compute.
        let round = self.step / 7;
        if round >= self.rounds {
            return SpuAction::Stop(0);
        }
        let s = self.step % 7;
        self.step += 1;
        match s {
            0 => SpuAction::UserEvent {
                id: PHASE_LOAD,
                a0: PHASE_BEGIN,
                a1: round as u64,
            },
            1 => {
                let buf = if round == 0 {
                    env.ls.alloc(8192, 128, "buf").unwrap()
                } else {
                    cellsim::LsAddr::new(0x800) // trace buffer sits below
                };
                let _ = buf;
                SpuAction::DmaGet {
                    lsa: cellsim::LsAddr::new(0x10000),
                    ea: 0x100000 + (round as u64) * 8192,
                    size: 8192,
                    tag: TagId::new(0).unwrap(),
                }
            }
            2 => SpuAction::WaitTags {
                mask: 1,
                mode: TagWaitMode::All,
            },
            3 => SpuAction::UserEvent {
                id: PHASE_LOAD,
                a0: PHASE_END,
                a1: round as u64,
            },
            4 => SpuAction::UserEvent {
                id: PHASE_COMPUTE,
                a0: PHASE_BEGIN,
                a1: round as u64,
            },
            5 => SpuAction::Compute(20_000),
            _ => SpuAction::UserEvent {
                id: PHASE_COMPUTE,
                a0: PHASE_END,
                a1: round as u64,
            },
        }
    }
}

fn main() -> Result<(), Error> {
    let mut machine = Machine::new(MachineConfig::default().with_num_spes(1))?;
    let session = TraceSession::install(TracingConfig::default(), &mut machine)?;
    machine.set_ppe_program(
        PpeThreadId::new(0),
        Box::new(SpmdDriver::new(vec![SpeJob::new(
            "marked",
            Box::new(MarkedKernel { rounds: 6, step: 0 }),
        )])),
    );
    machine.run()?;

    let trace = session.collect(&machine);
    trace.write_to("phase_markers.pdt")?;
    println!("trace saved to phase_markers.pdt\n");

    let analysis = Analysis::of(&trace).run()?;
    let report = analysis.phases();
    println!("reconstructed user phases:");
    for p in &report.phases {
        let name = match p.id {
            PHASE_LOAD => "load",
            PHASE_COMPUTE => "compute",
            _ => "?",
        };
        println!(
            "  {:>8} on {}: {:>6.2} µs",
            name,
            p.core,
            analysis.analyzed().tb_to_ns(p.ticks()) / 1000.0
        );
    }
    let load = analysis.analyzed().tb_to_ns(report.total_ticks(PHASE_LOAD)) / 1000.0;
    let compute = analysis
        .analyzed()
        .tb_to_ns(report.total_ticks(PHASE_COMPUTE))
        / 1000.0;
    println!("\ntotals: load {load:.2} µs, compute {compute:.2} µs");
    println!(
        "compute/load ratio {:.2} — the application-level view the\n\
         hardware-event timeline cannot give by itself",
        compute / load
    );
    Ok(())
}
