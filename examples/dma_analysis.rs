//! DMA transfer-size analysis with the Trace Analyzer: latency
//! histograms and the bandwidth-vs-size curve, computed purely from
//! trace bytes.
//!
//! ```sh
//! cargo run --example dma_analysis
//! ```

use cell_pdt::prelude::*;

fn main() -> Result<(), Error> {
    println!("observed GET latency and bandwidth vs transfer size (one SPE):\n");
    println!("{:>8}  {:>12}  {:>10}", "size B", "latency µs", "GB/s");
    for size in [128u32, 512, 2048, 8192, 16384] {
        let workload = DmaSweepWorkload::new(DmaSweepConfig {
            size,
            count: 64,
            spes: 1,
            seed: 3,
        });
        let result = run_workload(
            &workload,
            MachineConfig::default().with_num_spes(1),
            Some(TracingConfig::default().with_groups(GroupMask::dma_only())),
        )?;
        let analysis = Analysis::of(result.trace.as_ref().expect("traced")).run()?;
        let stats = analysis.stats();
        let lat_ns = analysis
            .analyzed()
            .tb_to_ns(stats.dma.latency_ticks.mean().round() as u64);
        let gbps = size as f64 / lat_ns;
        println!("{size:>8}  {:>12.2}  {gbps:>10.2}", lat_ns / 1000.0);
    }

    // A detailed histogram for one interesting point.
    let workload = DmaSweepWorkload::new(DmaSweepConfig {
        size: 4096,
        count: 128,
        spes: 8,
        seed: 3,
    });
    let result = run_workload(
        &workload,
        MachineConfig::default(),
        Some(TracingConfig::default().with_groups(GroupMask::dma_only())),
    )?;
    let analysis = Analysis::of(result.trace.as_ref().expect("traced")).run()?;
    let stats = analysis.stats();
    println!(
        "\n8 SPEs × 128 GETs of 4 KiB — contention at the memory interface:\n\n{}",
        stats
            .dma
            .latency_ticks
            .render("observed latency (timebase ticks)")
    );
    let aggregate_gbps = stats.dma.bytes as f64 / result.report.wall_ns;
    println!(
        "mean per-transfer bandwidth under contention: {:.2} GB/s\n\
         aggregate bandwidth over the run: {:.2} GB/s (MIC cap is 25.6 GB/s)",
        stats.dma.observed_bytes_per_tick()
            * (analysis.analyzed().header.core_hz as f64
                / analysis.analyzed().header.timebase_divider as f64)
            / 1e9,
        aggregate_gbps
    );
    Ok(())
}
