//! The paper's double-buffering use case: trace the streaming kernel
//! with single and double buffering, and let the Trace Analyzer show
//! why one is faster. Writes `double_buffering_{single,double}.svg`
//! timelines to the working directory.
//!
//! ```sh
//! cargo run --example double_buffering
//! ```

use cell_pdt::prelude::*;

fn run(buffering: Buffering) -> Result<(u64, f64, String), Error> {
    let workload = StreamWorkload::new(StreamConfig {
        blocks: 64,
        block_bytes: 16 * 1024,
        compute_cycles_per_block: 2500,
        buffering,
        spes: 1,
        ..StreamConfig::default()
    });
    let result = run_workload(
        &workload,
        MachineConfig::default().with_num_spes(1),
        Some(TracingConfig::default().with_groups(GroupMask::dma_only())),
    )?;
    let analysis = Analysis::of(result.trace.as_ref().expect("traced run")).run()?;
    let spe0 = analysis.stats().spe(0).expect("SPE0 ran");
    let dma_frac = spe0.dma_wait_tb as f64 / spe0.active_tb as f64;
    let svg = analysis.svg(&SvgOptions::default());
    Ok((result.report.cycles, dma_frac, svg))
}

fn main() -> Result<(), Error> {
    let (single_cycles, single_dma, single_svg) = run(Buffering::Single)?;
    let (double_cycles, double_dma, double_svg) = run(Buffering::Double)?;

    println!("streaming triad, 64 × 16 KiB blocks on one SPE:\n");
    println!(
        "  single buffering: {single_cycles:>9} cycles, {:.1}% of active time in DMA waits",
        single_dma * 100.0
    );
    println!(
        "  double buffering: {double_cycles:>9} cycles, {:.1}% of active time in DMA waits",
        double_dma * 100.0
    );
    println!(
        "\n  speedup: {:.2}x — the prefetch hides the GET latency behind compute",
        single_cycles as f64 / double_cycles as f64
    );

    std::fs::write("double_buffering_single.svg", single_svg)?;
    std::fs::write("double_buffering_double.svg", double_svg)?;
    println!("\ntimelines written to double_buffering_{{single,double}}.svg");
    Ok(())
}
