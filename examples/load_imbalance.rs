//! The paper's load-balancing use case: the Trace Analyzer makes a
//! skewed sparse workload's imbalance visible, and shows the fix.
//!
//! ```sh
//! cargo run --example load_imbalance
//! ```

use cell_pdt::prelude::*;

/// (total cycles, per-SPE compute milliseconds, imbalance factor)
type RunOutcome = (u64, Vec<(u8, f64)>, f64);

fn run(schedule: Schedule) -> Result<RunOutcome, Error> {
    let workload = SparseWorkload::new(SparseConfig {
        rows: 2048,
        rows_per_chunk: 64,
        mean_nnz: 48,
        max_nnz: 192,
        spes: 4,
        schedule,
        cycles_per_nnz: 40,
        seed: 11,
    });
    let result = run_workload(
        &workload,
        MachineConfig::default().with_num_spes(4),
        Some(TracingConfig::default()),
    )?;
    let analysis = Analysis::of(result.trace.as_ref().expect("traced")).run()?;
    let stats = analysis.stats();
    let per_spe = stats
        .spes
        .iter()
        .map(|a| (a.spe, analysis.analyzed().tb_to_ns(a.compute_tb) / 1e6))
        .collect();
    Ok((result.report.cycles, per_spe, stats.imbalance()))
}

fn main() -> Result<(), Error> {
    println!("sparse y = A·x with density clustered in the leading rows\n");
    let (static_cycles, static_spe, static_imb) = run(Schedule::StaticContiguous)?;
    println!("static contiguous chunks (imbalance {static_imb:.2}):");
    for (spe, ms) in &static_spe {
        let bar = "#".repeat((ms * 120.0) as usize);
        println!("  SPE{spe}: {ms:>6.3} ms compute  {bar}");
    }
    let (dyn_cycles, dyn_spe, dyn_imb) = run(Schedule::Dynamic)?;
    println!("\natomic work queue (imbalance {dyn_imb:.2}):");
    for (spe, ms) in &dyn_spe {
        let bar = "#".repeat((ms * 120.0) as usize);
        println!("  SPE{spe}: {ms:>6.3} ms compute  {bar}");
    }
    println!(
        "\nruntime: {static_cycles} → {dyn_cycles} cycles ({:.2}x speedup)",
        static_cycles as f64 / dyn_cycles as f64
    );
    Ok(())
}
