//! Machine-configuration sensitivity: the same workload on machines
//! with different memory subsystems, seen through the trace analyzer.
//! Demonstrates using `MachineConfig` beyond the defaults and the
//! simulator's ground-truth report.
//!
//! ```sh
//! cargo run --example custom_machine
//! ```

use cell_pdt::prelude::*;
use cellsim::MachineConfig;

fn run(label: &str, mcfg: MachineConfig) -> Result<(), Error> {
    let workload = StreamWorkload::new(StreamConfig {
        blocks: 48,
        block_bytes: 16 * 1024,
        compute_cycles_per_block: 2500,
        buffering: Buffering::Double,
        spes: 4,
        ..StreamConfig::default()
    });
    let result = run_workload(&workload, mcfg, Some(TracingConfig::default()))?;
    let analysis = Analysis::of(result.trace.as_ref().expect("traced")).run()?;
    let stats = analysis.stats();
    let dma_frac: f64 = stats
        .spes
        .iter()
        .map(|a| a.dma_wait_tb as f64 / a.active_tb.max(1) as f64)
        .sum::<f64>()
        / stats.spes.len() as f64;
    println!(
        "{label:<28} {:>9} cycles   mean dma-wait {:>5.1}%   observed latency {:>6.2} µs",
        result.report.cycles,
        dma_frac * 100.0,
        analysis
            .analyzed()
            .tb_to_ns(stats.dma.latency_ticks.mean().round() as u64)
            / 1000.0
    );
    Ok(())
}

fn main() -> Result<(), Error> {
    println!("streaming triad on four machine variants:\n");

    run(
        "stock 3.2 GHz blade",
        MachineConfig::default().with_num_spes(4),
    )?;

    let mut slow_mem = MachineConfig::default().with_num_spes(4);
    slow_mem.mem_latency_ns = 360.0; // 4x the XDR latency
    run("4x memory latency", slow_mem)?;

    let mut half_bw = MachineConfig::default().with_num_spes(4);
    half_bw.mem_bandwidth_bytes_per_sec /= 4;
    run("1/4 memory bandwidth", half_bw)?;

    let mut shallow = MachineConfig::default().with_num_spes(4);
    shallow.mfc_queue_depth = 2;
    shallow.mfc_inflight = 1;
    run("2-entry MFC queues", shallow)?;

    println!(
        "\nthe analyzer sees only trace bytes in every case — the same\n\
         tooling diagnoses whichever machine the application runs on"
    );
    Ok(())
}
