//! Quickstart: simulate a traced workload, analyze its PDT trace, and
//! print the analyzer's view — all in about fifty lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cell_pdt::prelude::*;

fn main() -> Result<(), Error> {
    // A 4-SPE Cell machine with a PDT tracing session attached.
    let mut machine = Machine::new(MachineConfig::default().with_num_spes(4))?;
    let session = TraceSession::install(TracingConfig::default(), &mut machine)?;

    // The streaming-triad workload, double-buffered over 4 SPEs.
    let workload = StreamWorkload::new(StreamConfig {
        blocks: 32,
        block_bytes: 16 * 1024,
        buffering: Buffering::Double,
        spes: 4,
        ..StreamConfig::default()
    });
    let driver = workload.stage(&mut machine);
    machine.set_ppe_program(PpeThreadId::new(0), driver);

    let report = machine.run()?;
    workload.verify(&machine)?;
    println!(
        "simulated {} cycles ({:.3} ms of Cell time); results verified\n",
        report.cycles,
        report.wall_ns / 1e6
    );

    // Everything below uses only the trace bytes, like the real TA.
    let trace = session.collect(&machine);
    println!(
        "trace: {} streams, {} bytes, {} records dropped\n",
        trace.streams.len(),
        trace.total_bytes(),
        trace.total_dropped()
    );

    let analysis = Analysis::of(&trace).run()?;
    let stats = analysis.stats();
    println!("per-SPE activity (from the trace alone):");
    for a in &stats.spes {
        println!(
            "  SPE{}: utilization {:5.1}%  dma-wait {:5.1}%  mbox-wait {:5.1}%",
            a.spe,
            a.utilization * 100.0,
            a.dma_wait_tb as f64 / a.active_tb as f64 * 100.0,
            a.mbox_wait_tb as f64 / a.active_tb as f64 * 100.0,
        );
    }
    println!(
        "\nDMA: {} gets, {} puts, {} KiB moved, mean observed latency {:.2} µs",
        stats.dma.gets,
        stats.dma.puts,
        stats.dma.bytes / 1024,
        analysis
            .analyzed()
            .tb_to_ns(stats.dma.latency_ticks.mean().round() as u64)
            / 1000.0
    );

    println!("\ntimeline:\n");
    print!("{}", analysis.ascii(100));
    Ok(())
}
