//! No-op derive macros for the offline `serde` stub. The stub traits
//! are pure markers, so the derives only need to name the type and
//! emit empty impls.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union`
/// keyword. Only plain (non-generic) types are supported, which is all
/// this workspace derives on.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tok in input {
        if let TokenTree::Ident(id) = tok {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kw = true;
            }
        }
    }
    panic!("serde stub derive: no struct/enum name found");
}

/// Derives the marker `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derives the marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
