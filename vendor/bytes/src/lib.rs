//! Minimal offline subset of the `bytes` crate: the `Buf`/`BufMut`
//! trait surface this workspace uses, implemented for `&[u8]` and
//! `Vec<u8>`. Little-endian getters/putters only.

/// Read side: a cursor over a contiguous byte slice.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_slice(&[val]);
        }
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0xbeef);
        out.put_u32_le(0xdead_beef);
        out.put_u64_le(0x0123_4567_89ab_cdef);
        out.put_bytes(0, 3);
        out.put_slice(b"xy");
        let mut buf = out.as_slice();
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0xbeef);
        assert_eq!(buf.get_u32_le(), 0xdead_beef);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89ab_cdef);
        buf.advance(3);
        assert_eq!(buf, b"xy");
        assert_eq!(buf.remaining(), 2);
    }
}
