//! Minimal offline subset of `parking_lot`: a `Mutex` with the
//! poison-free `lock()` signature, backed by `std::sync::Mutex`.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive whose `lock` never returns a poison
/// error: a panic while holding the lock leaves the data accessible,
/// as with the real parking_lot.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard dereferencing to the protected data.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
