//! Minimal offline subset of `rand` 0.8: `StdRng` seeded by
//! `seed_from_u64` and `Rng::gen_range` over half-open ranges. The
//! generator is SplitMix64 — deterministic and statistically fine for
//! workload data generation, which is all this workspace needs.

use std::ops::Range;

/// Core source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every
/// [`RngCore`], as in the real crate).
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range a uniform sample can be drawn from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f32> {
    type Output = f32;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = a.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            assert_eq!(x, b.gen_range(-1.0f32..1.0));
        }
        for _ in 0..1000 {
            let n = a.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let f = a.gen_range(0.05f64..1.0);
            assert!((0.05..1.0).contains(&f));
        }
    }
}
