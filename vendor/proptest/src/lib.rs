//! Minimal offline subset of `proptest`: a deterministic, sample-based
//! property-test runner with the strategy combinators this workspace
//! uses. No shrinking — a failing case panics with the bound values in
//! the assertion message — and assertions are panic-based rather than
//! `Result`-plumbed. Case generation is seeded from the test name, so
//! every run explores the same inputs.

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a), so each property
        /// gets its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given (nonempty) alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.gen_value(rng), )+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Strategy produced by [`super::arbitrary::any`].
    #[derive(Debug, Clone)]
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }
}

pub mod arbitrary {
    use super::strategy::{Any, Strategy};
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arb_value(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arb_value(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arb_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arb_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Generates `Vec`s with lengths in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror (`prop::collection::vec`, …) as in the real
    /// prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property (panic-based in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Declares property-test functions: each `arg in strategy` binding is
/// drawn `config.cases` times and the body re-run per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..config.cases {
                    let ( $( $arg, )* ) = (
                        $( $crate::strategy::Strategy::gen_value(&($strat), &mut rng), )*
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, v in prop::collection::vec(any::<u8>(), 0..=4)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn oneof_and_map_compose(n in prop_oneof![Just(0u64), arb_even().boxed()]) {
            prop_assert_eq!(n % 2, 0);
        }
    }
}
