//! Minimal offline subset of `serde`: marker traits plus the derive
//! re-exports. Nothing in this workspace actually serializes — the
//! derives exist so config types advertise serializability — so the
//! traits carry no methods.

/// Marker: the type could be serialized.
pub trait Serialize {}

/// Marker: the type could be deserialized.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
