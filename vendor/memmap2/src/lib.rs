//! Offline stand-in for the `memmap2` crate (see `vendor/README.md`).
//!
//! The real crate maps a file into the address space with `mmap(2)`;
//! this workspace forbids `unsafe`, so the stub reads the file onto
//! the heap once and hands out the same `Deref<Target = [u8]>`
//! surface. Callers get identical semantics for a read-only mapping
//! of a file that does not change underneath them — the only property
//! this workspace relies on — while the paging benefit of a true map
//! waits on the real crate.
//!
//! The `map` constructor mirrors the upstream signature minus its
//! `unsafe` qualifier: upstream marks it `unsafe` because a mapped
//! file mutated by another process breaks Rust's aliasing rules,
//! which a heap copy cannot.

use std::fs::File;
use std::io::Read;
use std::ops::Deref;

/// An immutable memory map of a file (heap-backed in this stub).
pub struct Mmap {
    bytes: Vec<u8>,
}

impl Mmap {
    /// Maps the whole file read-only.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be read.
    pub fn map(file: &File) -> std::io::Result<Mmap> {
        let mut bytes = Vec::new();
        let mut f = file;
        f.read_to_end(&mut bytes)?;
        Ok(Mmap { bytes })
    }

    /// The mapped length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the mapped file is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir();
        let path = dir.join("memmap2_stub_test.bin");
        let payload = b"hello mapped world";
        {
            let mut f = File::create(&path).expect("create");
            f.write_all(payload).expect("write");
        }
        let f = File::open(&path).expect("open");
        let m = Mmap::map(&f).expect("map");
        assert_eq!(&m[..], payload);
        assert_eq!(m.len(), payload.len());
        assert!(!m.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
