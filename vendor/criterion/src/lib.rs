//! Minimal offline subset of `criterion`: the group/bencher API this
//! workspace's benches use, timed with `std::time::Instant` and
//! reported to stdout. No statistical machinery — mean/min/max over a
//! fixed sample count — but the calling convention and the relative
//! numbers are what the benches need.

use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier, as the real crate provides.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by this harness; every
/// batch is one iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small inputs, batched by the real crate; per-iteration here.
    SmallInput,
    /// Large inputs, batched by the real crate; per-iteration here.
    LargeInput,
}

/// Work-per-iteration, used to report a rate next to the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: 0,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.default_samples, None, f);
        self
    }
}

/// A named group of benchmarks sharing sample count and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Declares work-per-iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        let samples = if self.samples == 0 { 20 } else { self.samples };
        run_bench(&full, samples, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warmup
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.timings.push(t0.elapsed());
        }
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.timings.push(t0.elapsed());
        }
    }
}

fn run_bench<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        timings: Vec::with_capacity(samples),
    };
    f(&mut b);
    if b.timings.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = b.timings.iter().sum();
    let mean = total / b.timings.len() as u32;
    let min = *b.timings.iter().min().unwrap();
    let max = *b.timings.iter().max().unwrap();
    let mut line = format!(
        "{id:<40} time: [{} {} {}]",
        fmt_dur(min),
        fmt_dur(mean),
        fmt_dur(max)
    );
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.3} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: {:.3} MiB/s", per_sec(n) / (1 << 20) as f64));
            }
        }
    }
    println!("{line}");
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert_eq!(calls, 4); // 1 warmup + 3 samples
    }
}
