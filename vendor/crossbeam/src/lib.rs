//! Minimal offline subset of `crossbeam`: scoped threads with the
//! crossbeam 0.8 calling convention (`scope(|s| { s.spawn(|_| ..) })`
//! returning `thread::Result`), backed by `std::thread::scope`, and
//! the `deque` work-stealing primitives (`Worker`/`Stealer`/
//! `Injector`) with the crossbeam-deque 0.8 API, backed by mutexed
//! ring buffers rather than lock-free arrays.

/// Scoped thread spawning.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result of a scope or a join: `Err` carries the panic
    /// payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; threads spawned through it may borrow from the
    /// enclosing stack frame.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining returns the closure's value
    /// or the panic payload.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the
        /// closure receives the scope so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its value, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope; all threads spawned in it are joined before
    /// `scope` returns. Returns `Err` if the closure (or an unjoined
    /// child, which `std` propagates into the closure's unwinding)
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Work-stealing double-ended queues with the `crossbeam-deque` 0.8
/// calling convention. The owner pushes and pops one end of its
/// [`deque::Worker`]; other threads batch-free [`deque::Stealer`]s
/// take from the opposite end; a shared [`deque::Injector`] is the
/// global FIFO. This offline subset trades the lock-free arrays for a
/// `Mutex<VecDeque>`, which preserves the API and the scheduling
/// semantics (LIFO owner / FIFO thief) at task granularities where
/// lock contention is negligible.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    #[derive(Debug)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// The owner's end of a work-stealing deque.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// A deque whose owner pops oldest-first.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// A deque whose owner pops newest-first (the classic
        /// work-stealing flavor: hot tasks stay with the owner).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().unwrap();
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// A handle other threads use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A thief's handle onto some [`Worker`]'s deque; steals take the
    /// oldest task (the end opposite a LIFO owner).
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// A shared FIFO task queue every worker can push to and steal
    /// from — the global entry point of a work-stealing pool.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Attempts to take the task at the front.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn lifo_owner_fifo_thief() {
        let w: Worker<u32> = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3)); // owner: newest first
        assert_eq!(s.steal(), Steal::Success(1)); // thief: oldest first
        assert_eq!(w.pop(), Some(2));
        assert!(w.is_empty() && s.is_empty());
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo_across_threads() {
        let inj: Injector<usize> = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let drained = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        let mut got = Vec::new();
                        while let Steal::Success(t) = inj.steal() {
                            got.push(t);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all
        })
        .unwrap();
        assert_eq!(drained, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn panics_become_err() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
