//! Minimal offline subset of `crossbeam`: scoped threads with the
//! crossbeam 0.8 calling convention (`scope(|s| { s.spawn(|_| ..) })`
//! returning `thread::Result`), backed by `std::thread::scope`.

/// Scoped thread spawning.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result of a scope or a join: `Err` carries the panic
    /// payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; threads spawned through it may borrow from the
    /// enclosing stack frame.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining returns the closure's value
    /// or the panic payload.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the
        /// closure receives the scope so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its value, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope; all threads spawned in it are joined before
    /// `scope` returns. Returns `Err` if the closure (or an unjoined
    /// child, which `std` propagates into the closure's unwinding)
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_become_err() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
