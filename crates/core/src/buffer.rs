//! The double-buffered SPE trace buffer.
//!
//! PDT keeps a small trace buffer in each SPE's local store, split into
//! two halves: the tracer fills one half while the other is being
//! DMA-flushed to main memory. If the active half fills before the
//! in-flight flush completes, records are *dropped* (and counted) —
//! the same back-pressure behaviour the real tool exhibits when the
//! event rate outruns the flush bandwidth. Buffer size is therefore a
//! first-order overhead knob, swept by experiment E4.

use cellsim::{FlushRequest, LocalStore, LsAddr, TagId};

/// Counters of buffer activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Records accepted into the buffer.
    pub records: u64,
    /// Records dropped (flush back-pressure or region exhaustion).
    pub dropped: u64,
    /// Bytes handed to flush DMAs.
    pub flushed_bytes: u64,
    /// Flush DMAs issued.
    pub flushes: u64,
}

impl BufferStats {
    /// Records the tracer attempted to write (accepted + dropped).
    pub fn attempted(&self) -> u64 {
        self.records + self.dropped
    }

    /// Fraction of attempted records that were dropped, in `0.0..=1.0`
    /// (zero when nothing was attempted).
    pub fn drop_fraction(&self) -> f64 {
        let attempted = self.attempted();
        if attempted == 0 {
            0.0
        } else {
            self.dropped as f64 / attempted as f64
        }
    }
}

/// Outcome of a record write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Whether the record made it into the buffer.
    pub written: bool,
    /// A flush to start (the previously active half).
    pub flush: Option<FlushRequest>,
}

/// A double-buffered local-store trace buffer with a main-memory
/// flush cursor.
#[derive(Debug)]
pub struct SpeTraceBuffer {
    base: LsAddr,
    half: u32,
    active: u32,
    fill: u32,
    flushing: bool,
    ea_base: u64,
    ea_cap: u64,
    ea_off: u64,
    region_full: bool,
    flush_tag: TagId,
    /// Activity counters.
    pub stats: BufferStats,
}

impl SpeTraceBuffer {
    /// Allocates the buffer region in `ls` and binds it to the
    /// main-memory window `[ea_base, ea_base + ea_cap)`.
    ///
    /// # Panics
    ///
    /// Panics if the local store cannot fit the buffer (the same hard
    /// failure a Cell programmer hits when PDT no longer fits beside
    /// the working set).
    pub fn new(
        ls: &mut LocalStore,
        total_bytes: u32,
        ea_base: u64,
        ea_cap: u64,
        flush_tag: TagId,
    ) -> Self {
        let base = ls
            .alloc(total_bytes, 128, "pdt-trace-buffer")
            .expect("local store cannot fit the PDT trace buffer");
        SpeTraceBuffer {
            base,
            half: total_bytes / 2,
            active: 0,
            fill: 0,
            flushing: false,
            ea_base,
            ea_cap,
            ea_off: 0,
            region_full: false,
            flush_tag,
            stats: BufferStats::default(),
        }
    }

    fn active_base(&self) -> LsAddr {
        self.base.offset(self.active * self.half)
    }

    fn make_flush(&mut self, len: u32) -> Option<FlushRequest> {
        if len == 0 {
            return None;
        }
        if self.ea_off + len as u64 > self.ea_cap {
            self.region_full = true;
            return None;
        }
        let req = FlushRequest {
            lsa: self.active_base(),
            len,
            ea: self.ea_base + self.ea_off,
            tag: self.flush_tag,
        };
        self.ea_off += len as u64;
        self.stats.flushed_bytes += len as u64;
        self.stats.flushes += 1;
        Some(req)
    }

    /// Appends an encoded record (16-byte granular), swapping and
    /// flushing halves as needed.
    ///
    /// Returns whether a flush DMA must be started and whether the
    /// record was dropped.
    pub fn write_record(&mut self, rec: &[u8], ls: &mut LocalStore) -> WriteOutcome {
        debug_assert_eq!(rec.len() % 16, 0, "records are 16-byte granular");
        let len = rec.len() as u32;
        if len > self.half || self.region_full {
            self.stats.dropped += 1;
            return WriteOutcome {
                written: false,
                flush: None,
            };
        }
        let mut flush = None;
        if self.fill + len > self.half {
            if self.flushing {
                // The other half is still on the wire: drop.
                self.stats.dropped += 1;
                return WriteOutcome {
                    written: false,
                    flush: None,
                };
            }
            // Flush the active half and switch.
            flush = self.make_flush(self.fill);
            if flush.is_some() {
                self.flushing = true;
            }
            // Even if the region filled (no flush), reuse the half —
            // the data is lost either way and is counted as dropped
            // region bytes on collection.
            self.active ^= 1;
            self.fill = 0;
            if self.region_full {
                self.stats.dropped += 1;
                return WriteOutcome {
                    written: false,
                    flush,
                };
            }
        }
        let addr = self.active_base().offset(self.fill);
        ls.write(addr, rec).expect("trace buffer write in bounds");
        self.fill += len;
        self.stats.records += 1;
        WriteOutcome {
            written: true,
            flush,
        }
    }

    /// The in-flight flush completed.
    pub fn flush_completed(&mut self) {
        self.flushing = false;
    }

    /// Final flush of the partial active half (at context stop).
    pub fn finalize(&mut self) -> Option<FlushRequest> {
        let len = self.fill;
        self.fill = 0;
        self.make_flush(len)
    }

    /// True while a flush DMA is on the wire.
    pub fn is_flushing(&self) -> bool {
        self.flushing
    }

    /// Bytes of the main-memory region consumed so far.
    pub fn region_used(&self) -> u64 {
        self.ea_off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(total: u32) -> (LocalStore, SpeTraceBuffer) {
        let mut ls = LocalStore::new(256 * 1024);
        let buf = SpeTraceBuffer::new(&mut ls, total, 0x1000, 1 << 20, TagId::new(31).unwrap());
        (ls, buf)
    }

    fn rec(n: usize) -> Vec<u8> {
        vec![0xabu8; n]
    }

    #[test]
    fn records_accumulate_until_half_full() {
        let (mut ls, mut buf) = setup(256); // halves of 128
        for _ in 0..4 {
            let out = buf.write_record(&rec(32), &mut ls);
            assert!(out.written);
            assert!(out.flush.is_none());
        }
        // Fifth record overflows the half → flush of 128 bytes.
        let out = buf.write_record(&rec(32), &mut ls);
        assert!(out.written);
        let f = out.flush.expect("flush requested");
        assert_eq!(f.len, 128);
        assert_eq!(f.ea, 0x1000);
        assert_eq!(buf.stats.flushes, 1);
        assert!(buf.is_flushing());
    }

    #[test]
    fn back_pressure_drops_records_while_flushing() {
        let (mut ls, mut buf) = setup(256);
        // Fill half A (4×32), overflow into B with a flush in flight.
        for _ in 0..5 {
            buf.write_record(&rec(32), &mut ls);
        }
        // Fill half B (3 more of 32 = 128 total in B).
        for _ in 0..3 {
            assert!(buf.write_record(&rec(32), &mut ls).written);
        }
        // B overflows while A's flush is still in flight → drop.
        let out = buf.write_record(&rec(32), &mut ls);
        assert!(!out.written);
        assert_eq!(buf.stats.dropped, 1);
        // Flush completes; the next overflow flushes B.
        buf.flush_completed();
        let out = buf.write_record(&rec(32), &mut ls);
        assert!(out.written);
        assert!(out.flush.is_some());
    }

    #[test]
    fn finalize_flushes_partial_half() {
        let (mut ls, mut buf) = setup(1024);
        buf.write_record(&rec(48), &mut ls);
        buf.write_record(&rec(16), &mut ls);
        let f = buf.finalize().expect("partial flush");
        assert_eq!(f.len, 64);
        assert_eq!(buf.finalize(), None, "second finalize is empty");
        assert_eq!(buf.region_used(), 64);
    }

    #[test]
    fn region_exhaustion_stops_tracing() {
        let mut ls = LocalStore::new(256 * 1024);
        // Region fits exactly one half flush.
        let mut buf = SpeTraceBuffer::new(&mut ls, 256, 0x0, 128, TagId::new(31).unwrap());
        for _ in 0..5 {
            buf.write_record(&rec(32), &mut ls);
        }
        buf.flush_completed();
        // Fill the second half and overflow: region cannot take more.
        for _ in 0..3 {
            buf.write_record(&rec(32), &mut ls);
        }
        let out = buf.write_record(&rec(32), &mut ls);
        assert!(out.flush.is_none(), "region full: no flush possible");
        assert!(!out.written);
        assert!(buf.stats.dropped >= 1);
        // Everything afterwards is dropped.
        let out = buf.write_record(&rec(16), &mut ls);
        assert!(!out.written);
    }

    #[test]
    fn oversized_record_is_dropped_not_panicking() {
        let (mut ls, mut buf) = setup(256);
        let out = buf.write_record(&rec(256), &mut ls);
        assert!(!out.written);
        assert_eq!(buf.stats.dropped, 1);
    }

    #[test]
    fn bytes_land_in_local_store() {
        let (ls, _buf) = {
            let mut ls = LocalStore::new(256 * 1024);
            let mut buf = SpeTraceBuffer::new(&mut ls, 256, 0x0, 1 << 20, TagId::new(31).unwrap());
            let data: Vec<u8> = (0..32).collect();
            buf.write_record(&data, &mut ls);
            (ls, buf)
        };
        // The buffer was the first allocation → base 0.
        let got = ls.bytes(LsAddr::new(0), 32).unwrap();
        assert_eq!(got, (0..32).collect::<Vec<u8>>().as_slice());
    }
}
