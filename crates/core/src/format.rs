//! The PDT trace-file format.
//!
//! A trace file holds a header describing the machine and session, one
//! record stream per core (a combined stream for the PPE threads, one
//! per SPE), and the context-name table. All integers are
//! little-endian.
//!
//! ```text
//! magic     "PDT1"
//! u16       version (1)
//! u8        num_ppe_threads
//! u8        num_spes
//! u64       core_hz
//! u64       timebase_divider
//! u32       decrementer start value
//! u32       enabled group mask
//! u32       spe trace-buffer bytes
//! u32       stream count
//! streams:  u8 core_tag, u8[3] pad, u64 byte_len, u64 dropped_records,
//!           then byte_len record bytes
//! names:    u32 count, then per entry u32 ctx, u32 len, utf-8 bytes
//! ```

use bytes::{Buf, BufMut};

use crate::record::{
    decode_stream, decode_stream_lossy, LossyDecode, RecordError, TraceCore, TraceRecord,
};

/// Trace-file magic bytes.
pub const MAGIC: &[u8; 4] = b"PDT1";

/// Current format version.
pub const VERSION: u16 = 1;

/// Session/machine metadata stored in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version.
    pub version: u16,
    /// PPE hardware threads traced.
    pub num_ppe_threads: u8,
    /// SPEs traced.
    pub num_spes: u8,
    /// Core clock in Hz.
    pub core_hz: u64,
    /// Core cycles per timebase tick.
    pub timebase_divider: u64,
    /// Decrementer value loaded at context start.
    pub dec_start: u32,
    /// Enabled group-mask bits.
    pub group_mask: u32,
    /// LS trace-buffer bytes per SPE.
    pub spe_buffer_bytes: u32,
}

/// One core's record stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStream {
    /// The producing core (the PPE stream uses `Ppe(0)` and carries
    /// per-thread tags inside its records).
    pub core: TraceCore,
    /// Encoded records.
    pub bytes: Vec<u8>,
    /// Records the tracer dropped (back-pressure / region exhaustion).
    pub dropped: u64,
}

impl TraceStream {
    /// Decodes the stream's records.
    ///
    /// # Errors
    ///
    /// Returns the offset and cause of the first corrupt record.
    pub fn records(&self) -> Result<Vec<TraceRecord>, (usize, RecordError)> {
        decode_stream(&self.bytes)
    }

    /// Decodes the stream's records, resynchronizing past corruption
    /// instead of failing; skipped ranges are reported as gaps.
    pub fn records_lossy(&self) -> LossyDecode {
        decode_stream_lossy(&self.bytes, Some(self.core))
    }

    /// Encoded record bytes in this stream.
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Upper bound on the record count, from the 16-byte granularity
    /// (exact when every record is a single granule). Lets a decoder
    /// pre-size its output without walking the stream.
    pub fn max_records(&self) -> usize {
        self.bytes.len() / 16
    }
}

/// Location of one core's stream inside a serialized trace image.
///
/// [`TraceFile::scan_stream_table`] produces these from the stream
/// directory alone — no record bytes are copied or decoded — so a
/// parallel reader can hand each worker a disjoint
/// `&image[offset..offset + len]` slice without a serial pre-scan of
/// the record data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamMeta {
    /// The producing core.
    pub core: TraceCore,
    /// Byte offset of the stream's first record within the image.
    pub offset: usize,
    /// Encoded record bytes.
    pub len: usize,
    /// Records the tracer dropped on this stream.
    pub dropped: u64,
}

impl StreamMeta {
    /// The stream's record bytes within `image`.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not the buffer this metadata was scanned
    /// from (range out of bounds).
    pub fn slice<'a>(&self, image: &'a [u8]) -> &'a [u8] {
        &image[self.offset..self.offset + self.len]
    }
}

/// A complete trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFile {
    /// Header metadata.
    pub header: TraceHeader,
    /// Per-core streams.
    pub streams: Vec<TraceStream>,
    /// Context-name table.
    pub ctx_names: Vec<(u32, String)>,
}

/// Errors from parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion {
        /// The version found.
        found: u16,
    },
    /// The file ended early.
    Truncated {
        /// What was being read.
        reading: &'static str,
    },
    /// A name-table entry is not UTF-8.
    BadName,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => f.write_str("not a PDT trace file (bad magic)"),
            FormatError::BadVersion { found } => {
                write!(f, "unsupported trace version {found} (expected {VERSION})")
            }
            FormatError::Truncated { reading } => {
                write!(f, "trace file truncated while reading {reading}")
            }
            FormatError::BadName => f.write_str("context name is not valid utf-8"),
        }
    }
}

impl std::error::Error for FormatError {}

impl TraceFile {
    /// Total encoded record bytes over all streams.
    pub fn total_bytes(&self) -> u64 {
        self.streams.iter().map(|s| s.bytes.len() as u64).sum()
    }

    /// Total dropped records over all streams.
    pub fn total_dropped(&self) -> u64 {
        self.streams.iter().map(|s| s.dropped).sum()
    }

    /// The stream for `core`, if present.
    pub fn stream(&self, core: TraceCore) -> Option<&TraceStream> {
        self.streams.iter().find(|s| s.core == core)
    }

    /// The name of context `ctx`, if recorded.
    pub fn ctx_name(&self, ctx: u32) -> Option<&str> {
        self.ctx_names
            .iter()
            .find(|(c, _)| *c == ctx)
            .map(|(_, n)| n.as_str())
    }

    /// Serializes to the on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.total_bytes() as usize);
        out.put_slice(MAGIC);
        out.put_u16_le(self.header.version);
        out.put_u8(self.header.num_ppe_threads);
        out.put_u8(self.header.num_spes);
        out.put_u64_le(self.header.core_hz);
        out.put_u64_le(self.header.timebase_divider);
        out.put_u32_le(self.header.dec_start);
        out.put_u32_le(self.header.group_mask);
        out.put_u32_le(self.header.spe_buffer_bytes);
        out.put_u32_le(self.streams.len() as u32);
        for s in &self.streams {
            out.put_u8(s.core.tag());
            out.put_bytes(0, 3);
            out.put_u64_le(s.bytes.len() as u64);
            out.put_u64_le(s.dropped);
            out.put_slice(&s.bytes);
        }
        out.put_u32_le(self.ctx_names.len() as u32);
        for (ctx, name) in &self.ctx_names {
            out.put_u32_le(*ctx);
            out.put_u32_le(name.len() as u32);
            out.put_slice(name.as_bytes());
        }
        out
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from the filesystem.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a trace from a file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error wrapping either the filesystem failure or
    /// a [`FormatError`].
    pub fn read_from(path: impl AsRef<std::path::Path>) -> std::io::Result<TraceFile> {
        let bytes = std::fs::read(path)?;
        TraceFile::from_bytes(&bytes).map_err(std::io::Error::other)
    }

    /// Parses only the header of a serialized trace image.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on bad magic, version or truncation.
    pub fn scan_header(image: &[u8]) -> Result<TraceHeader, FormatError> {
        let mut buf = image;
        parse_header(&mut buf)
    }

    /// Scans only the header and stream directory of a serialized
    /// trace image, returning each stream's [`StreamMeta`] without
    /// copying or decoding any record bytes. A parallel reader uses
    /// this to slice `image` into per-worker stream windows in O(number
    /// of streams) rather than O(file size).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on structural corruption of the header
    /// or directory (the name table past the streams is not visited).
    pub fn scan_stream_table(image: &[u8]) -> Result<Vec<StreamMeta>, FormatError> {
        let mut buf = image;
        parse_header(&mut buf)?;
        parse_stream_directory(image, &mut buf)
    }

    /// Parses the context-name table of a serialized trace image,
    /// skipping over the stream bytes without copying them.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on structural corruption.
    pub fn scan_ctx_names(image: &[u8]) -> Result<Vec<(u32, String)>, FormatError> {
        let mut buf = image;
        parse_header(&mut buf)?;
        parse_stream_directory(image, &mut buf)?;
        parse_ctx_names(&mut buf)
    }

    /// Parses the on-disk byte layout.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on structural corruption. Record-level
    /// corruption is reported later by [`TraceStream::records`].
    pub fn from_bytes(image: &[u8]) -> Result<TraceFile, FormatError> {
        let mut buf = image;
        let header = parse_header(&mut buf)?;
        let metas = parse_stream_directory(image, &mut buf)?;
        let ctx_names = parse_ctx_names(&mut buf)?;
        let streams = metas
            .into_iter()
            .map(|m| TraceStream {
                core: m.core,
                bytes: m.slice(image).to_vec(),
                dropped: m.dropped,
            })
            .collect();
        Ok(TraceFile {
            header,
            streams,
            ctx_names,
        })
    }
}

fn need(buf: &[u8], n: usize, what: &'static str) -> Result<(), FormatError> {
    if buf.len() < n {
        Err(FormatError::Truncated { reading: what })
    } else {
        Ok(())
    }
}

/// Parses the magic + header, advancing `buf` past them.
fn parse_header(buf: &mut &[u8]) -> Result<TraceHeader, FormatError> {
    need(buf, 4, "magic")?;
    if &buf[..4] != MAGIC {
        return Err(FormatError::BadMagic);
    }
    buf.advance(4);
    need(buf, 2 + 1 + 1 + 8 + 8 + 4 + 4 + 4, "header")?;
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(FormatError::BadVersion { found: version });
    }
    Ok(TraceHeader {
        version,
        num_ppe_threads: buf.get_u8(),
        num_spes: buf.get_u8(),
        core_hz: buf.get_u64_le(),
        timebase_divider: buf.get_u64_le(),
        dec_start: buf.get_u32_le(),
        group_mask: buf.get_u32_le(),
        spe_buffer_bytes: buf.get_u32_le(),
    })
}

/// Walks the stream directory (header already consumed), recording
/// each stream's location in `image` and advancing `buf` past the
/// record bytes without copying them.
fn parse_stream_directory(image: &[u8], buf: &mut &[u8]) -> Result<Vec<StreamMeta>, FormatError> {
    need(buf, 4, "stream count")?;
    let n_streams = buf.get_u32_le();
    let mut metas = Vec::with_capacity(n_streams as usize);
    for _ in 0..n_streams {
        need(buf, 4 + 8 + 8, "stream header")?;
        let core = TraceCore::from_tag(buf.get_u8());
        buf.advance(3);
        let len = buf.get_u64_le() as usize;
        let dropped = buf.get_u64_le();
        need(buf, len, "stream bytes")?;
        let offset = image.len() - buf.len();
        buf.advance(len);
        metas.push(StreamMeta {
            core,
            offset,
            len,
            dropped,
        });
    }
    Ok(metas)
}

/// Parses the context-name table (directory already consumed).
fn parse_ctx_names(buf: &mut &[u8]) -> Result<Vec<(u32, String)>, FormatError> {
    need(buf, 4, "name table")?;
    let n_names = buf.get_u32_le();
    let mut ctx_names = Vec::with_capacity(n_names as usize);
    for _ in 0..n_names {
        need(buf, 8, "name entry")?;
        let ctx = buf.get_u32_le();
        let len = buf.get_u32_le() as usize;
        need(buf, len, "name bytes")?;
        let name = String::from_utf8(buf[..len].to_vec()).map_err(|_| FormatError::BadName)?;
        buf.advance(len);
        ctx_names.push((ctx, name));
    }
    Ok(ctx_names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventCode;

    fn sample() -> TraceFile {
        let mut spe_bytes = Vec::new();
        TraceRecord {
            core: TraceCore::Spe(0),
            code: EventCode::SpeUser,
            timestamp: 999,
            params: vec![1, 2, 3],
        }
        .encode_into(&mut spe_bytes);
        let mut ppe_bytes = Vec::new();
        TraceRecord {
            core: TraceCore::Ppe(0),
            code: EventCode::PpeCtxCreate,
            timestamp: 5,
            params: vec![0],
        }
        .encode_into(&mut ppe_bytes);
        TraceFile {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 2,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: 0xffff,
                spe_buffer_bytes: 2048,
            },
            streams: vec![
                TraceStream {
                    core: TraceCore::Ppe(0),
                    bytes: ppe_bytes,
                    dropped: 0,
                },
                TraceStream {
                    core: TraceCore::Spe(0),
                    bytes: spe_bytes,
                    dropped: 3,
                },
            ],
            ctx_names: vec![(0, "kernel".into())],
        }
    }

    #[test]
    fn file_roundtrip() {
        let f = sample();
        let bytes = f.to_bytes();
        let g = TraceFile::from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
        assert_eq!(g.total_dropped(), 3);
        assert_eq!(g.ctx_name(0), Some("kernel"));
        assert_eq!(g.ctx_name(9), None);
    }

    #[test]
    fn records_decode_from_streams() {
        let f = sample();
        let spe = f.stream(TraceCore::Spe(0)).unwrap();
        let recs = spe.records().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].params, vec![1, 2, 3]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(TraceFile::from_bytes(&bytes), Err(FormatError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            TraceFile::from_bytes(&bytes),
            Err(FormatError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = sample().to_bytes();
        for cut in [3, 10, 30, bytes.len() - 1] {
            let r = TraceFile::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn stream_table_scan_matches_full_parse() {
        let f = sample();
        let bytes = f.to_bytes();
        let metas = TraceFile::scan_stream_table(&bytes).unwrap();
        assert_eq!(metas.len(), f.streams.len());
        for (meta, stream) in metas.iter().zip(&f.streams) {
            assert_eq!(meta.core, stream.core);
            assert_eq!(meta.len, stream.bytes.len());
            assert_eq!(meta.dropped, stream.dropped);
            assert_eq!(meta.slice(&bytes), stream.bytes.as_slice());
        }
        assert_eq!(TraceFile::scan_header(&bytes).unwrap(), f.header);
        assert_eq!(TraceFile::scan_ctx_names(&bytes).unwrap(), f.ctx_names);
    }

    #[test]
    fn stream_table_scan_rejects_corruption() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            TraceFile::scan_stream_table(&bytes),
            Err(FormatError::BadMagic)
        );
        let bytes = sample().to_bytes();
        assert!(TraceFile::scan_stream_table(&bytes[..41]).is_err());
    }

    #[test]
    fn empty_file_parses_with_no_streams() {
        let f = TraceFile {
            header: sample().header,
            streams: vec![],
            ctx_names: vec![],
        };
        let g = TraceFile::from_bytes(&f.to_bytes()).unwrap();
        assert!(g.streams.is_empty());
        assert_eq!(g.total_bytes(), 0);
    }
}
