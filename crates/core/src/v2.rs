//! The PDT v2 blocked, compressed trace container (`pdt2`).
//!
//! The v1 format ([`crate::format`]) stores raw 16-byte record
//! granules and must be held fully in memory. The v2 container splits
//! every stream into fixed-size blocks of column-major records with
//! per-block compression — delta + varint timestamps, dictionary-coded
//! event codes, all hand-rolled (no external codec dependencies) — and
//! carries a per-block *footer directory* (min/max global timestamp,
//! core set, event-group mask, decode-entry state) so windowed queries
//! can skip whole blocks without decoding them.
//!
//! ```text
//! magic     "PDT2"
//! u16       version (2)
//! header    num_ppe_threads .. spe_buffer_bytes, exactly as v1
//! u32       stream count
//! streams:  40-byte stream header
//!             u8  core_tag, u8 anchoring, u16 pad,
//!             u32 n_blocks, u64 dropped, u64 raw_len,
//!             u64 payloads_len, u64 run_tb
//!           payloads_len bytes of blocks, each:
//!             17-byte inline prefix (kind, n_records, raw_len,
//!                                    payload_len, payload_crc)
//!             payload bytes
//!           n_blocks x 80-byte directory entries (the footers)
//! names:    u32 count, then per entry u32 ctx, u32 len, utf-8 bytes
//! ```
//!
//! Two block kinds exist. **Packed** blocks hold a run of records that
//! decode cleanly under the stream invariants of
//! [`decode_stream_lossy`]; their payload is columnar and compressed.
//! **Raw** blocks hold byte ranges the lossy decoder skipped
//! ([`DecodeGap`]s) verbatim. Decoding a v2 stream therefore
//! reconstructs the *decode-equivalent* v1 byte stream: every clean
//! record re-encodes canonically at its original offset and every gap
//! byte is preserved, so the lossy decoder reports identical records,
//! gaps and resync behavior — loss accounting survives the format
//! conversion exactly.
//!
//! Corruption inside a v2 image (a failed payload CRC, a torn block, a
//! flipped footer) is never fatal: readers substitute zero bytes for
//! the block's raw range, which the lossy decoder reports as a single
//! [`DecodeGap`] — damage degrades to the same loss accounting the v1
//! path uses.

use std::io::{self, Seek, SeekFrom, Write};

use bytes::{Buf, BufMut};

use crate::event::EventCode;
use crate::format::{TraceFile, TraceHeader, TraceStream, VERSION};
use crate::record::{decode_stream_lossy, TraceCore, TraceRecord, MAX_PARAMS};

/// v2 container magic bytes.
pub const MAGIC2: &[u8; 4] = b"PDT2";

/// v2 container version.
pub const VERSION2: u16 = 2;

/// Default records per packed block.
pub const DEFAULT_BLOCK_RECORDS: usize = 4096;

/// Raw (gap) payload bytes per block before splitting.
pub const RAW_BLOCK_MAX: usize = 1 << 24;

/// Size of a stream header.
pub const STREAM_HEADER_BYTES: usize = 40;

/// Size of a block's inline prefix.
pub const PREFIX_BYTES: usize = 17;

/// Size of one directory entry (block footer).
pub const ENTRY_BYTES: usize = 80;

/// Errors from parsing or decoding a v2 container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum V2Error {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion {
        /// The version found.
        found: u16,
    },
    /// The image ended early.
    Truncated {
        /// What was being read.
        reading: &'static str,
    },
    /// A structural or CRC inconsistency.
    Corrupt {
        /// What failed to validate.
        what: &'static str,
    },
    /// A name-table entry is not UTF-8.
    BadName,
}

impl std::fmt::Display for V2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            V2Error::BadMagic => f.write_str("not a PDT v2 container (bad magic)"),
            V2Error::BadVersion { found } => {
                write!(f, "unsupported v2 version {found} (expected {VERSION2})")
            }
            V2Error::Truncated { reading } => {
                write!(f, "v2 container truncated while reading {reading}")
            }
            V2Error::Corrupt { what } => write!(f, "v2 container corrupt: {what}"),
            V2Error::BadName => f.write_str("context name is not valid utf-8"),
        }
    }
}

impl std::error::Error for V2Error {}

// ---------------------------------------------------------------------
// Primitive codecs: varint, zigzag, crc32.
// ---------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = more).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads an LEB128 varint from the front of `buf`, advancing it.
/// Returns `None` on truncation or a varint wider than 64 bits.
pub fn get_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let (&b, rest) = buf.split_first()?;
        *buf = rest;
        if shift == 63 && b > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zigzag-encodes a signed delta so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Sync anchors (global-time placement for footer timestamps).
// ---------------------------------------------------------------------

/// A `PpeCtxRun` sync record harvested from a PPE stream: the bridge
/// from an SPE's decrementer snapshots to the global timebase. The v2
/// *packer* replicates the analyzer's harvest (first anchor per SPE, in
/// stream then record order) so block footers can carry global
/// timestamps; the analyzer itself still re-derives anchors from the
/// decoded records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncAnchor {
    /// SPE index.
    pub spe: u8,
    /// Context id (params\[0\]).
    pub ctx: u32,
    /// Timebase at context run (the record's timestamp).
    pub run_tb: u64,
    /// Decrementer start value (params\[2\]).
    pub dec_start: u32,
}

/// Harvests sync anchors from a trace's PPE streams exactly as the
/// analyzer does: lossy decode, first `PpeCtxRun` per SPE wins, in
/// stream then record order.
pub fn harvest_sync_anchors(trace: &TraceFile) -> Vec<SyncAnchor> {
    let mut anchors: Vec<SyncAnchor> = Vec::new();
    for s in &trace.streams {
        if s.core.is_spe() {
            continue;
        }
        for r in &decode_stream_lossy(&s.bytes, Some(s.core)).records {
            if r.code == EventCode::PpeCtxRun && r.params.len() >= 3 {
                let spe = r.params[1] as u8;
                if !anchors.iter().any(|a| a.spe == spe) {
                    anchors.push(SyncAnchor {
                        spe,
                        ctx: r.params[0] as u32,
                        run_tb: r.timestamp,
                        dec_start: r.params[2] as u32,
                    });
                }
            }
        }
    }
    anchors
}

// ---------------------------------------------------------------------
// Codec statistics.
// ---------------------------------------------------------------------

/// Counters describing what a v2 decode actually touched — the codec
/// analogue of the scheduler's `ExecStats`. A windowed query that
/// skips properly shows `blocks_skipped` close to the block total and
/// `payload_bytes_read` far below the container size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Packed blocks whose payload was decoded.
    pub blocks_decoded: u64,
    /// Blocks skipped via footer min/max without touching the payload.
    pub blocks_skipped: u64,
    /// Blocks treated as damaged (CRC/structure failure) and replaced
    /// by a zero-filled gap range.
    pub blocks_corrupt: u64,
    /// Records decoded out of packed payloads.
    pub records_decoded: u64,
    /// Compressed payload bytes read and decoded.
    pub payload_bytes_read: u64,
    /// Reconstructed v1 record bytes produced.
    pub raw_bytes_out: u64,
}

impl CodecStats {
    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &CodecStats) {
        self.blocks_decoded += other.blocks_decoded;
        self.blocks_skipped += other.blocks_skipped;
        self.blocks_corrupt += other.blocks_corrupt;
        self.records_decoded += other.records_decoded;
        self.payload_bytes_read += other.payload_bytes_read;
        self.raw_bytes_out += other.raw_bytes_out;
    }
}

// ---------------------------------------------------------------------
// Block metadata: inline prefixes and directory entries (footers).
// ---------------------------------------------------------------------

/// Block payload kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Columnar-compressed run of cleanly decodable records.
    Packed,
    /// Verbatim bytes of a [`DecodeGap`] range.
    Raw,
}

impl BlockKind {
    fn to_byte(self) -> u8 {
        match self {
            BlockKind::Packed => 0,
            BlockKind::Raw => 1,
        }
    }

    fn from_byte(b: u8) -> Option<BlockKind> {
        match b {
            0 => Some(BlockKind::Packed),
            1 => Some(BlockKind::Raw),
            _ => None,
        }
    }
}

/// Footer flag: this block covers a decode gap (raw bytes).
pub const FLAG_GAP: u8 = 1 << 0;
/// Footer flag: the stream had no sync anchor when written, so the
/// footer carries no global timestamps and its events (if any) are
/// unplaced — exactly the streams the analyzer discards as unanchored.
pub const FLAG_UNPLACED: u8 = 1 << 1;

/// One directory entry — the per-block footer that makes skipping
/// possible without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Payload kind.
    pub kind: BlockKind,
    /// [`FLAG_GAP`] / [`FLAG_UNPLACED`].
    pub flags: u8,
    /// Records in the block (0 for raw blocks).
    pub n_records: u32,
    /// Reconstructed v1 bytes the block decodes to.
    pub raw_len: u32,
    /// Stored payload bytes.
    pub payload_len: u32,
    /// CRC-32 of the payload bytes.
    pub payload_crc: u32,
    /// Bit `min(core_tag, 31)` set for every core appearing in the
    /// block's records.
    pub core_mask: u32,
    /// OR of [`crate::EventGroup`] bits of the block's event codes.
    pub group_mask: u32,
    /// SPE decrementer snapshot in force *before* the block's first
    /// record (the anchor's `dec_start` for block 0). Lets a reader
    /// resume time reconstruction mid-stream.
    pub entry_dec: u32,
    /// Minimum global timestamp of the block's records. For gap blocks
    /// this brackets: the last placed time before the gap.
    pub min_tb: u64,
    /// Maximum global timestamp. For gap blocks: the first placed time
    /// after the gap (`u64::MAX` when the gap runs to end of stream).
    pub max_tb: u64,
    /// Cumulative elapsed decrementer ticks before the block.
    pub entry_elapsed: u64,
    /// Decoded records preceding this block in the stream (the first
    /// record's `stream_seq`).
    pub entry_seq: u64,
    /// Offset of the block's inline prefix within the stream's block
    /// region.
    pub block_off: u64,
}

impl BlockEntry {
    /// True when `[min_tb, max_tb]` intersects the half-open query
    /// window `[start_tb, end_tb)`.
    pub fn overlaps(&self, start_tb: u64, end_tb: u64) -> bool {
        self.min_tb < end_tb && self.max_tb >= start_tb
    }

    /// Serializes to the 80-byte on-disk entry (with trailing CRC).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.put_u8(self.kind.to_byte());
        out.put_u8(self.flags);
        out.put_u16_le(0);
        out.put_u32_le(self.n_records);
        out.put_u32_le(self.raw_len);
        out.put_u32_le(self.payload_len);
        out.put_u32_le(self.payload_crc);
        out.put_u32_le(self.core_mask);
        out.put_u32_le(self.group_mask);
        out.put_u32_le(self.entry_dec);
        out.put_u64_le(self.min_tb);
        out.put_u64_le(self.max_tb);
        out.put_u64_le(self.entry_elapsed);
        out.put_u64_le(self.entry_seq);
        out.put_u64_le(self.block_off);
        let crc = crc32(&out[start..]);
        out.put_u32_le(crc);
        out.put_u32_le(0);
        debug_assert_eq!(out.len() - start, ENTRY_BYTES);
    }

    /// Parses an 80-byte directory entry, verifying its CRC.
    ///
    /// # Errors
    ///
    /// Returns [`V2Error::Corrupt`] when the entry CRC or kind byte is
    /// invalid, [`V2Error::Truncated`] when fewer than
    /// [`ENTRY_BYTES`] are available.
    pub fn decode(bytes: &[u8]) -> Result<BlockEntry, V2Error> {
        if bytes.len() < ENTRY_BYTES {
            return Err(V2Error::Truncated {
                reading: "directory entry",
            });
        }
        let mut buf = &bytes[72..];
        let stored_crc = buf.get_u32_le();
        if crc32(&bytes[..72]) != stored_crc {
            return Err(V2Error::Corrupt {
                what: "directory entry crc",
            });
        }
        let mut buf = &bytes[..72];
        let kind = BlockKind::from_byte(buf.get_u8()).ok_or(V2Error::Corrupt {
            what: "directory entry kind",
        })?;
        let flags = buf.get_u8();
        buf.advance(2);
        Ok(BlockEntry {
            kind,
            flags,
            n_records: buf.get_u32_le(),
            raw_len: buf.get_u32_le(),
            payload_len: buf.get_u32_le(),
            payload_crc: buf.get_u32_le(),
            core_mask: buf.get_u32_le(),
            group_mask: buf.get_u32_le(),
            entry_dec: buf.get_u32_le(),
            min_tb: buf.get_u64_le(),
            max_tb: buf.get_u64_le(),
            entry_elapsed: buf.get_u64_le(),
            entry_seq: buf.get_u64_le(),
            block_off: buf.get_u64_le(),
        })
    }
}

/// A block's inline prefix: the minimal metadata a *streaming* reader
/// needs (the directory arrives after the payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPrefix {
    /// Payload kind.
    pub kind: BlockKind,
    /// Records in the block (0 for raw blocks).
    pub n_records: u32,
    /// Reconstructed v1 bytes the block decodes to.
    pub raw_len: u32,
    /// Stored payload bytes.
    pub payload_len: u32,
    /// CRC-32 of the payload bytes.
    pub payload_crc: u32,
}

impl BlockPrefix {
    /// Serializes the 17-byte prefix.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u8(self.kind.to_byte());
        out.put_u32_le(self.n_records);
        out.put_u32_le(self.raw_len);
        out.put_u32_le(self.payload_len);
        out.put_u32_le(self.payload_crc);
    }

    /// Parses a 17-byte prefix.
    ///
    /// # Errors
    ///
    /// Returns [`V2Error::Truncated`] on short input and
    /// [`V2Error::Corrupt`] on an invalid kind byte.
    pub fn decode(bytes: &[u8]) -> Result<BlockPrefix, V2Error> {
        if bytes.len() < PREFIX_BYTES {
            return Err(V2Error::Truncated {
                reading: "block prefix",
            });
        }
        let mut buf = bytes;
        let kind = BlockKind::from_byte(buf.get_u8()).ok_or(V2Error::Corrupt {
            what: "block prefix kind",
        })?;
        Ok(BlockPrefix {
            kind,
            n_records: buf.get_u32_le(),
            raw_len: buf.get_u32_le(),
            payload_len: buf.get_u32_le(),
            payload_crc: buf.get_u32_le(),
        })
    }
}

// ---------------------------------------------------------------------
// Packed payload codec (columnar, compressed).
// ---------------------------------------------------------------------

/// Encodes a run of cleanly decodable records as a columnar packed
/// payload: an event-code dictionary, core/param-count columns (each
/// collapsing to a single byte when uniform), delta+varint timestamps
/// and varint parameters.
///
/// # Panics
///
/// Panics on an empty run, more than 255 distinct event codes (cannot
/// happen — the code space is smaller) or a record with more than
/// [`MAX_PARAMS`] parameters.
pub fn encode_packed_payload(records: &[TraceRecord]) -> Vec<u8> {
    assert!(!records.is_empty(), "packed block must hold records");
    let mut dict: Vec<u16> = Vec::new();
    let mut indices: Vec<u8> = Vec::with_capacity(records.len());
    for r in records {
        let raw = r.code.raw();
        let idx = match dict.iter().position(|&c| c == raw) {
            Some(i) => i,
            None => {
                dict.push(raw);
                assert!(dict.len() <= 255, "event-code dictionary overflow");
                dict.len() - 1
            }
        };
        indices.push(idx as u8);
    }
    let first_tag = records[0].core.tag();
    let uniform_core = records.iter().all(|r| r.core.tag() == first_tag);
    let first_np = records[0].params.len();
    let uniform_np = records.iter().all(|r| r.params.len() == first_np);

    let mut out = Vec::with_capacity(records.len() * 4);
    out.put_u8(dict.len() as u8);
    for &c in &dict {
        out.put_u16_le(c);
    }
    out.put_u8(u8::from(uniform_core));
    out.put_u8(u8::from(uniform_np));
    if uniform_core {
        out.put_u8(first_tag);
    } else {
        for r in records {
            out.put_u8(r.core.tag());
        }
    }
    if uniform_np {
        assert!(first_np <= MAX_PARAMS);
        out.put_u8(first_np as u8);
    } else {
        for r in records {
            assert!(r.params.len() <= MAX_PARAMS);
            out.put_u8(r.params.len() as u8);
        }
    }
    out.extend_from_slice(&indices);
    put_varint(&mut out, records[0].timestamp);
    for pair in records.windows(2) {
        let delta = pair[1].timestamp.wrapping_sub(pair[0].timestamp) as i64;
        put_varint(&mut out, zigzag(delta));
    }
    for r in records {
        for &p in &r.params {
            put_varint(&mut out, p);
        }
    }
    out
}

/// Decodes a packed payload back into its records.
///
/// Every structural invariant is validated — dictionary bounds, known
/// event codes, parameter counts, varint termination, no trailing
/// bytes — so corrupt payloads fail cleanly instead of producing
/// records that were never written.
///
/// # Errors
///
/// Returns [`V2Error::Corrupt`] on any inconsistency.
pub fn decode_packed_payload(payload: &[u8], n_records: u32) -> Result<Vec<TraceRecord>, V2Error> {
    const CORRUPT: V2Error = V2Error::Corrupt {
        what: "packed payload",
    };
    let n = n_records as usize;
    if n == 0 {
        return Err(CORRUPT);
    }
    let mut buf = payload;
    let take = |buf: &mut &[u8], n: usize| -> Result<Vec<u8>, V2Error> {
        if buf.len() < n {
            return Err(CORRUPT);
        }
        let head = buf[..n].to_vec();
        buf.advance(n);
        Ok(head)
    };
    if buf.is_empty() {
        return Err(CORRUPT);
    }
    let dict_len = buf.get_u8() as usize;
    if dict_len == 0 || buf.len() < dict_len * 2 {
        return Err(CORRUPT);
    }
    let mut dict: Vec<EventCode> = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let raw = buf.get_u16_le();
        dict.push(EventCode::from_raw(raw).ok_or(CORRUPT)?);
    }
    if buf.len() < 2 {
        return Err(CORRUPT);
    }
    let uniform_core = buf.get_u8();
    let uniform_np = buf.get_u8();
    if uniform_core > 1 || uniform_np > 1 {
        return Err(CORRUPT);
    }
    let tags: Vec<u8> = if uniform_core == 1 {
        take(&mut buf, 1)?
    } else {
        take(&mut buf, n)?
    };
    let nparams: Vec<u8> = if uniform_np == 1 {
        take(&mut buf, 1)?
    } else {
        take(&mut buf, n)?
    };
    if nparams.iter().any(|&p| p as usize > MAX_PARAMS) {
        return Err(CORRUPT);
    }
    let indices = take(&mut buf, n)?;
    if indices.iter().any(|&i| i as usize >= dict_len) {
        return Err(CORRUPT);
    }
    let mut timestamps: Vec<u64> = Vec::with_capacity(n);
    let first_ts = get_varint(&mut buf).ok_or(CORRUPT)?;
    timestamps.push(first_ts);
    for _ in 1..n {
        let delta = unzigzag(get_varint(&mut buf).ok_or(CORRUPT)?);
        let prev = *timestamps.last().expect("nonempty");
        timestamps.push(prev.wrapping_add(delta as u64));
    }
    let mut records: Vec<TraceRecord> = Vec::with_capacity(n);
    for i in 0..n {
        let np = if uniform_np == 1 {
            nparams[0]
        } else {
            nparams[i]
        } as usize;
        let mut params = Vec::with_capacity(np);
        for _ in 0..np {
            params.push(get_varint(&mut buf).ok_or(CORRUPT)?);
        }
        let tag = if uniform_core == 1 { tags[0] } else { tags[i] };
        records.push(TraceRecord {
            core: TraceCore::from_tag(tag),
            code: dict[indices[i] as usize],
            timestamp: timestamps[i],
            params,
        });
    }
    if !buf.is_empty() {
        return Err(V2Error::Corrupt {
            what: "trailing packed payload bytes",
        });
    }
    Ok(records)
}

/// Re-encodes records to their canonical v1 byte stream.
pub fn records_to_bytes(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.iter().map(TraceRecord::encoded_len).sum());
    for r in records {
        r.encode_into(&mut out);
    }
    out
}

/// Sum of the records' canonical encoded lengths.
pub fn raw_len_of(records: &[TraceRecord]) -> usize {
    records.iter().map(TraceRecord::encoded_len).sum()
}

/// One packed block decoded column-wise: the struct-of-arrays twin of
/// [`decode_packed_payload`]'s `Vec<TraceRecord>`. The payload's
/// columns land directly in reusable buffers — no per-record `Vec`
/// allocation — so a reader can append them straight into its own
/// columnar store. Buffers keep their capacity across
/// [`decode_packed_columns`] calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnBatch {
    /// Per-record core tags (expanded to `n` entries even when the
    /// block stored a single uniform byte).
    pub tags: Vec<u8>,
    /// Per-record event codes.
    pub codes: Vec<EventCode>,
    /// Per-record raw timestamps (PPE: timebase; SPE: decrementer).
    pub timestamps: Vec<u64>,
    /// Parameter-range bounds into [`params`](Self::params);
    /// `n + 1` entries.
    pub params_off: Vec<u32>,
    /// Flattened parameters.
    pub params: Vec<u64>,
}

impl ColumnBatch {
    /// Records in the batch.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Drops the contents, keeping buffer capacity.
    pub fn clear(&mut self) {
        self.tags.clear();
        self.codes.clear();
        self.timestamps.clear();
        self.params_off.clear();
        self.params.clear();
    }

    /// Record `i`'s parameter slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn params_of(&self, i: usize) -> &[u64] {
        let lo = self.params_off[i] as usize;
        let hi = self.params_off[i + 1] as usize;
        &self.params[lo..hi]
    }

    /// Sum of the records' canonical v1 encoded lengths — what
    /// [`records_to_bytes`] would produce, computed from the counts
    /// alone.
    pub fn raw_len(&self) -> u64 {
        let mut total = 0u64;
        for w in self.params_off.windows(2) {
            let np = (w[1] - w[0]) as usize;
            total += (1 + np.div_ceil(2)) as u64 * 16;
        }
        total
    }

    /// Reconstructs record `i` (the row-form escape hatch for readers
    /// that fall back to the record path).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn record(&self, i: usize) -> TraceRecord {
        TraceRecord {
            core: TraceCore::from_tag(self.tags[i]),
            code: self.codes[i],
            timestamp: self.timestamps[i],
            params: self.params_of(i).to_vec(),
        }
    }
}

/// Decodes a packed payload straight into columnar buffers, appending
/// nothing on failure. Validation is identical to
/// [`decode_packed_payload`] — dictionary bounds, known event codes,
/// parameter counts, varint termination, no trailing bytes — and the
/// decoded columns are record-for-record equal to the record path.
///
/// # Errors
///
/// Returns [`V2Error::Corrupt`] on any inconsistency.
pub fn decode_packed_columns(
    payload: &[u8],
    n_records: u32,
    out: &mut ColumnBatch,
) -> Result<(), V2Error> {
    let r = decode_packed_columns_inner(payload, n_records, out);
    if r.is_err() {
        out.clear();
    }
    r
}

fn decode_packed_columns_inner(
    payload: &[u8],
    n_records: u32,
    out: &mut ColumnBatch,
) -> Result<(), V2Error> {
    const CORRUPT: V2Error = V2Error::Corrupt {
        what: "packed payload",
    };
    out.clear();
    let n = n_records as usize;
    if n == 0 || payload.is_empty() {
        return Err(CORRUPT);
    }
    let mut buf = payload;
    let take = |buf: &mut &[u8], n: usize| -> Result<(), V2Error> {
        if buf.len() < n {
            return Err(CORRUPT);
        }
        buf.advance(n);
        Ok(())
    };
    let dict_len = buf.get_u8() as usize;
    if dict_len == 0 || buf.len() < dict_len * 2 {
        return Err(CORRUPT);
    }
    let mut dict: [EventCode; 255] = [EventCode::PpeUser; 255];
    for slot in dict.iter_mut().take(dict_len) {
        let raw = buf.get_u16_le();
        *slot = EventCode::from_raw(raw).ok_or(CORRUPT)?;
    }
    if buf.len() < 2 {
        return Err(CORRUPT);
    }
    let uniform_core = buf.get_u8();
    let uniform_np = buf.get_u8();
    if uniform_core > 1 || uniform_np > 1 {
        return Err(CORRUPT);
    }
    let tags = buf;
    take(&mut buf, if uniform_core == 1 { 1 } else { n })?;
    let nparams = buf;
    take(&mut buf, if uniform_np == 1 { 1 } else { n })?;
    let np_bound = if uniform_np == 1 { 1 } else { n };
    if nparams[..np_bound].iter().any(|&p| p as usize > MAX_PARAMS) {
        return Err(CORRUPT);
    }
    let indices = buf;
    take(&mut buf, n)?;
    if indices[..n].iter().any(|&i| i as usize >= dict_len) {
        return Err(CORRUPT);
    }

    out.timestamps.reserve(n);
    let mut ts = get_varint(&mut buf).ok_or(CORRUPT)?;
    out.timestamps.push(ts);
    for _ in 1..n {
        let delta = unzigzag(get_varint(&mut buf).ok_or(CORRUPT)?);
        ts = ts.wrapping_add(delta as u64);
        out.timestamps.push(ts);
    }

    out.tags.reserve(n);
    if uniform_core == 1 {
        out.tags.resize(n, tags[0]);
    } else {
        out.tags.extend_from_slice(&tags[..n]);
    }
    out.codes.reserve(n);
    out.codes
        .extend(indices[..n].iter().map(|&i| dict[i as usize]));

    out.params_off.reserve(n + 1);
    out.params_off.push(0);
    for i in 0..n {
        let np = if uniform_np == 1 {
            nparams[0]
        } else {
            nparams[i]
        } as usize;
        for _ in 0..np {
            out.params.push(get_varint(&mut buf).ok_or(CORRUPT)?);
        }
        out.params_off.push(out.params.len() as u32);
    }
    if !buf.is_empty() {
        return Err(V2Error::Corrupt {
            what: "trailing packed payload bytes",
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Streaming writer.
// ---------------------------------------------------------------------

/// How a stream's footer timestamps were placed on the global timebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchoring {
    /// PPE stream: record timestamps *are* global timebase values.
    Ppe,
    /// SPE stream with a known sync anchor; the stream header's
    /// `run_tb` plus per-block `entry_dec`/`entry_elapsed` reconstruct
    /// global time from any block without decoding its predecessors.
    Anchored,
    /// SPE stream written before any sync anchor was known: footers
    /// carry no usable timestamps ([`FLAG_UNPLACED`]) and the
    /// analyzer will discard the stream's events as unanchored.
    Unanchored,
}

impl Anchoring {
    fn to_byte(self) -> u8 {
        match self {
            Anchoring::Ppe => 0,
            Anchoring::Anchored => 1,
            Anchoring::Unanchored => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Anchoring> {
        match b {
            0 => Some(Anchoring::Ppe),
            1 => Some(Anchoring::Anchored),
            2 => Some(Anchoring::Unanchored),
            _ => None,
        }
    }
}

struct OpenStream {
    core: TraceCore,
    anchoring: Anchoring,
    run_tb: u64,
    dropped: u64,
    prev_dec: u32,
    elapsed: u64,
    seq: u64,
    raw_len: u64,
    payloads_len: u64,
    header_pos: u64,
    buf: Vec<(TraceRecord, u64)>,
    snap: (u32, u64, u64),
    entries: Vec<BlockEntry>,
    pending_gap: Vec<usize>,
    last_time: u64,
}

/// Streaming v2 container writer: records (and gap byte ranges) go in,
/// blocks come out, and memory stays bounded by one block plus the
/// in-flight stream's directory — a 10M-event trace never exists as a
/// contiguous byte buffer.
///
/// Stream order matters for footer precision: sync anchors are
/// harvested from pushed PPE records, so write the PPE stream before
/// the SPE streams it anchors (the layout every tracer in this repo
/// produces). An SPE stream begun before its anchor is written with
/// [`FLAG_UNPLACED`] footers; [`finish`](V2Writer::finish) rejects the
/// container if an anchor for it surfaced later, rather than emit
/// footers that contradict the analyzer.
pub struct V2Writer<W: Write + Seek> {
    w: W,
    block_records: usize,
    anchors: Vec<SyncAnchor>,
    count_pos: u64,
    n_streams: u32,
    cur: Option<OpenStream>,
    unanchored_spes: Vec<u8>,
    finished: bool,
}

impl<W: Write + Seek> std::fmt::Debug for V2Writer<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("V2Writer")
            .field("block_records", &self.block_records)
            .field("n_streams", &self.n_streams)
            .field("finished", &self.finished)
            .finish()
    }
}

impl<W: Write + Seek> V2Writer<W> {
    /// Starts a container: writes the magic, header and a stream-count
    /// placeholder (backpatched by [`finish`](V2Writer::finish)).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if `block_records` is 0 or over `1 << 20`.
    pub fn new(mut w: W, header: TraceHeader, block_records: usize) -> io::Result<V2Writer<W>> {
        assert!(
            (1..=1 << 20).contains(&block_records),
            "block_records out of range"
        );
        let mut head = Vec::with_capacity(44);
        head.put_slice(MAGIC2);
        head.put_u16_le(VERSION2);
        head.put_u8(header.num_ppe_threads);
        head.put_u8(header.num_spes);
        head.put_u64_le(header.core_hz);
        head.put_u64_le(header.timebase_divider);
        head.put_u32_le(header.dec_start);
        head.put_u32_le(header.group_mask);
        head.put_u32_le(header.spe_buffer_bytes);
        w.write_all(&head)?;
        let count_pos = w.stream_position()?;
        w.write_all(&0u32.to_le_bytes())?;
        Ok(V2Writer {
            w,
            block_records,
            anchors: Vec::new(),
            count_pos,
            n_streams: 0,
            cur: None,
            unanchored_spes: Vec::new(),
            finished: false,
        })
    }

    /// Seeds the anchor table up front (the two-pass packer knows every
    /// anchor before writing; a streaming caller can skip this and rely
    /// on harvest-as-pushed).
    pub fn preset_anchors(&mut self, anchors: &[SyncAnchor]) {
        for a in anchors {
            if !self.anchors.iter().any(|x| x.spe == a.spe) {
                self.anchors.push(*a);
            }
        }
    }

    /// Opens the next stream.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if a stream is already open or the writer is finished.
    pub fn begin_stream(&mut self, core: TraceCore, dropped: u64) -> io::Result<()> {
        assert!(self.cur.is_none(), "previous stream still open");
        assert!(!self.finished, "writer already finished");
        let header_pos = self.w.stream_position()?;
        self.w.write_all(&[0u8; STREAM_HEADER_BYTES])?;
        let (anchoring, run_tb, prev_dec) = match core {
            TraceCore::Ppe(_) => (Anchoring::Ppe, 0, 0),
            TraceCore::Spe(spe) => match self.anchors.iter().find(|a| a.spe == spe) {
                Some(a) => (Anchoring::Anchored, a.run_tb, a.dec_start),
                None => {
                    self.unanchored_spes.push(spe);
                    (Anchoring::Unanchored, 0, 0)
                }
            },
        };
        self.cur = Some(OpenStream {
            core,
            anchoring,
            run_tb,
            dropped,
            prev_dec,
            elapsed: 0,
            seq: 0,
            raw_len: 0,
            payloads_len: 0,
            header_pos,
            buf: Vec::new(),
            snap: (prev_dec, 0, 0),
            entries: Vec::new(),
            pending_gap: Vec::new(),
            last_time: 0,
        });
        Ok(())
    }

    /// Appends one record to the open stream. The record must satisfy
    /// the stream's decode invariants (matching core tag, monotone SPE
    /// decrementer) — a tracer always produces such records; corrupt
    /// ranges go through [`push_gap`](V2Writer::push_gap) instead.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if no stream is open.
    pub fn push(&mut self, rec: &TraceRecord) -> io::Result<()> {
        let s = self.cur.as_mut().expect("no open stream");
        if s.buf.is_empty() {
            s.snap = (s.prev_dec, s.elapsed, s.seq);
        }
        let time = match s.anchoring {
            Anchoring::Ppe => {
                if rec.code == EventCode::PpeCtxRun && rec.params.len() >= 3 {
                    let spe = rec.params[1] as u8;
                    if !self.anchors.iter().any(|a| a.spe == spe) {
                        self.anchors.push(SyncAnchor {
                            spe,
                            ctx: rec.params[0] as u32,
                            run_tb: rec.timestamp,
                            dec_start: rec.params[2] as u32,
                        });
                    }
                }
                rec.timestamp
            }
            Anchoring::Anchored => {
                let dec = rec.timestamp as u32;
                s.elapsed += u64::from(s.prev_dec.wrapping_sub(dec));
                s.prev_dec = dec;
                s.run_tb + s.elapsed
            }
            Anchoring::Unanchored => 0,
        };
        if s.anchoring != Anchoring::Unanchored {
            for idx in s.pending_gap.drain(..) {
                s.entries[idx].max_tb = time;
            }
            s.last_time = time;
        }
        s.seq += 1;
        s.buf.push((rec.clone(), time));
        if s.buf.len() >= self.block_records {
            Self::flush_packed(&mut self.w, s)?;
        }
        Ok(())
    }

    /// Appends a decode-gap byte range verbatim, closing any buffered
    /// record run first. The footer brackets the gap between the last
    /// placed record time and the next one ([`u64::MAX`] until a record
    /// follows or the stream ends).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if no stream is open.
    pub fn push_gap(&mut self, bytes: &[u8]) -> io::Result<()> {
        let s = self.cur.as_mut().expect("no open stream");
        if !s.buf.is_empty() {
            Self::flush_packed(&mut self.w, s)?;
        }
        for chunk in bytes.chunks(RAW_BLOCK_MAX) {
            let crc = crc32(chunk);
            let prefix = BlockPrefix {
                kind: BlockKind::Raw,
                n_records: 0,
                raw_len: chunk.len() as u32,
                payload_len: chunk.len() as u32,
                payload_crc: crc,
            };
            let mut head = Vec::with_capacity(PREFIX_BYTES);
            prefix.encode_into(&mut head);
            self.w.write_all(&head)?;
            self.w.write_all(chunk)?;
            let unplaced = s.anchoring == Anchoring::Unanchored;
            s.entries.push(BlockEntry {
                kind: BlockKind::Raw,
                flags: FLAG_GAP | if unplaced { FLAG_UNPLACED } else { 0 },
                n_records: 0,
                raw_len: chunk.len() as u32,
                payload_len: chunk.len() as u32,
                payload_crc: crc,
                core_mask: 0,
                group_mask: 0,
                entry_dec: s.prev_dec,
                min_tb: s.last_time,
                max_tb: u64::MAX,
                entry_elapsed: s.elapsed,
                entry_seq: s.seq,
                block_off: s.payloads_len,
            });
            if !unplaced {
                let idx = s.entries.len() - 1;
                s.pending_gap.push(idx);
            }
            s.payloads_len += (PREFIX_BYTES + chunk.len()) as u64;
            s.raw_len += chunk.len() as u64;
        }
        Ok(())
    }

    fn flush_packed(w: &mut W, s: &mut OpenStream) -> io::Result<()> {
        if s.buf.is_empty() {
            return Ok(());
        }
        let records: Vec<TraceRecord> = s.buf.iter().map(|(r, _)| r.clone()).collect();
        let payload = encode_packed_payload(&records);
        let raw_len = raw_len_of(&records) as u32;
        let crc = crc32(&payload);
        let prefix = BlockPrefix {
            kind: BlockKind::Packed,
            n_records: records.len() as u32,
            raw_len,
            payload_len: payload.len() as u32,
            payload_crc: crc,
        };
        let mut head = Vec::with_capacity(PREFIX_BYTES);
        prefix.encode_into(&mut head);
        w.write_all(&head)?;
        w.write_all(&payload)?;
        let mut core_mask = 0u32;
        let mut group_mask = 0u32;
        for r in &records {
            core_mask |= 1u32 << u32::from(r.core.tag()).min(31);
            group_mask |= r.code.group().bit();
        }
        let unplaced = s.anchoring == Anchoring::Unanchored;
        let (min_tb, max_tb) = if unplaced {
            (u64::MAX, 0)
        } else {
            let times = s.buf.iter().map(|&(_, t)| t);
            (
                times.clone().min().expect("nonempty"),
                times.max().expect("nonempty"),
            )
        };
        s.entries.push(BlockEntry {
            kind: BlockKind::Packed,
            flags: if unplaced { FLAG_UNPLACED } else { 0 },
            n_records: records.len() as u32,
            raw_len,
            payload_len: payload.len() as u32,
            payload_crc: crc,
            core_mask,
            group_mask,
            entry_dec: s.snap.0,
            min_tb,
            max_tb,
            entry_elapsed: s.snap.1,
            entry_seq: s.snap.2,
            block_off: s.payloads_len,
        });
        s.payloads_len += (PREFIX_BYTES + payload.len()) as u64;
        s.raw_len += u64::from(raw_len);
        s.buf.clear();
        Ok(())
    }

    /// Closes the open stream: flushes the buffered run, writes the
    /// footer directory and backpatches the stream header.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if no stream is open.
    pub fn end_stream(&mut self) -> io::Result<()> {
        let mut s = self.cur.take().expect("no open stream");
        Self::flush_packed(&mut self.w, &mut s)?;
        s.pending_gap.clear();
        let mut dir = Vec::with_capacity(s.entries.len() * ENTRY_BYTES);
        for e in &s.entries {
            e.encode_into(&mut dir);
        }
        self.w.write_all(&dir)?;
        let end_pos = self.w.stream_position()?;
        let mut head = Vec::with_capacity(STREAM_HEADER_BYTES);
        head.put_u8(s.core.tag());
        head.put_u8(s.anchoring.to_byte());
        head.put_u16_le(0);
        head.put_u32_le(s.entries.len() as u32);
        head.put_u64_le(s.dropped);
        head.put_u64_le(s.raw_len);
        head.put_u64_le(s.payloads_len);
        head.put_u64_le(s.run_tb);
        self.w.seek(SeekFrom::Start(s.header_pos))?;
        self.w.write_all(&head)?;
        self.w.seek(SeekFrom::Start(end_pos))?;
        self.n_streams += 1;
        Ok(())
    }

    /// Writes the name table, backpatches the stream count and returns
    /// the underlying writer.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] if a stream was
    /// written as unanchored but a sync anchor for it surfaced in a
    /// later PPE stream (its footers would contradict the analyzer);
    /// otherwise returns the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if a stream is still open.
    pub fn finish(mut self, ctx_names: &[(u32, String)]) -> io::Result<W> {
        assert!(self.cur.is_none(), "stream still open");
        assert!(!self.finished, "writer already finished");
        self.finished = true;
        if let Some(spe) = self
            .unanchored_spes
            .iter()
            .find(|spe| self.anchors.iter().any(|a| a.spe == **spe))
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("SPE{spe} stream was written before its sync anchor; reorder streams"),
            ));
        }
        let mut names = Vec::new();
        names.put_u32_le(ctx_names.len() as u32);
        for (ctx, name) in ctx_names {
            names.put_u32_le(*ctx);
            names.put_u32_le(name.len() as u32);
            names.put_slice(name.as_bytes());
        }
        self.w.write_all(&names)?;
        let end_pos = self.w.stream_position()?;
        self.w.seek(SeekFrom::Start(self.count_pos))?;
        self.w.write_all(&self.n_streams.to_le_bytes())?;
        self.w.seek(SeekFrom::Start(end_pos))?;
        self.w.flush()?;
        Ok(self.w)
    }

    /// Sync anchors known so far (preset plus harvested).
    pub fn anchors(&self) -> &[SyncAnchor] {
        &self.anchors
    }
}

// ---------------------------------------------------------------------
// One-shot conversion: v1 <-> v2.
// ---------------------------------------------------------------------

/// Packs a v1 trace into a v2 container.
///
/// Each stream is lossy-decoded with the same invariants the analyzer
/// uses: clean record runs become packed blocks of at most
/// `block_records` records, decode gaps become raw blocks holding the
/// damaged bytes verbatim. Unpacking (or block-at-a-time ingestion)
/// therefore reproduces a byte stream whose lossy decode — records,
/// gap offsets, gap causes, resync points — is identical to the
/// original's.
pub fn pack(trace: &TraceFile, block_records: usize) -> Vec<u8> {
    let anchors = harvest_sync_anchors(trace);
    let cursor = io::Cursor::new(Vec::new());
    let mut w = V2Writer::new(cursor, trace.header, block_records).expect("vec io");
    w.preset_anchors(&anchors);
    for s in &trace.streams {
        w.begin_stream(s.core, s.dropped).expect("vec io");
        let lossy = decode_stream_lossy(&s.bytes, Some(s.core));
        let mut next = 0usize;
        for gap in &lossy.gaps {
            while next < gap.records_before as usize {
                w.push(&lossy.records[next]).expect("vec io");
                next += 1;
            }
            w.push_gap(&s.bytes[gap.offset..gap.offset + gap.len])
                .expect("vec io");
        }
        while next < lossy.records.len() {
            w.push(&lossy.records[next]).expect("vec io");
            next += 1;
        }
        w.end_stream().expect("vec io");
    }
    w.finish(&trace.ctx_names).expect("vec io").into_inner()
}

/// Unpacks a v2 container back into an in-memory v1 trace.
///
/// This is the *strict* path (for `ta-cli unpack`): any CRC or
/// structural failure is an error. Tolerant decoding — damaged blocks
/// degrading to decode gaps — lives in the analyzer's v2 ingestion.
///
/// # Errors
///
/// Returns [`V2Error`] on any structural or CRC inconsistency.
pub fn unpack(image: &[u8]) -> Result<TraceFile, V2Error> {
    let v2 = V2File::parse(image)?;
    let mut streams = Vec::with_capacity(v2.streams.len());
    for (idx, meta) in v2.streams.iter().enumerate() {
        let mut bytes = Vec::with_capacity(meta.raw_len as usize);
        for item in v2.blocks(idx) {
            let (prefix, payload) = item?;
            if crc32(payload) != prefix.payload_crc {
                return Err(V2Error::Corrupt {
                    what: "block payload crc",
                });
            }
            match prefix.kind {
                BlockKind::Packed => {
                    let records = decode_packed_payload(payload, prefix.n_records)?;
                    let raw = records_to_bytes(&records);
                    if raw.len() != prefix.raw_len as usize {
                        return Err(V2Error::Corrupt {
                            what: "packed block raw length",
                        });
                    }
                    bytes.extend_from_slice(&raw);
                }
                BlockKind::Raw => {
                    if prefix.raw_len != prefix.payload_len {
                        return Err(V2Error::Corrupt {
                            what: "raw block length",
                        });
                    }
                    bytes.extend_from_slice(payload);
                }
            }
        }
        if bytes.len() as u64 != meta.raw_len {
            return Err(V2Error::Corrupt {
                what: "stream raw length",
            });
        }
        streams.push(TraceStream {
            core: meta.core,
            bytes,
            dropped: meta.dropped,
        });
    }
    Ok(TraceFile {
        header: v2.header,
        streams,
        ctx_names: v2.ctx_names,
    })
}

// ---------------------------------------------------------------------
// Random-access scan of a v2 image.
// ---------------------------------------------------------------------

/// Location and placement metadata of one stream inside a v2 image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2StreamMeta {
    /// The producing core.
    pub core: TraceCore,
    /// How footer timestamps were placed.
    pub anchoring: Anchoring,
    /// Sync-anchor run timebase (SPE anchored streams; 0 otherwise).
    pub run_tb: u64,
    /// Records the tracer dropped on this stream.
    pub dropped: u64,
    /// Reconstructed v1 byte length of the stream.
    pub raw_len: u64,
    /// Block count.
    pub n_blocks: u32,
    /// Absolute offset of the block region within the image.
    pub blocks_off: usize,
    /// Block-region length in bytes.
    pub payloads_len: u64,
    /// Absolute offset of the footer directory within the image.
    pub dir_off: usize,
}

/// A parsed v2 container: header, per-stream block-region locations
/// and footer directories — no payload is decoded. Parsing is O(stream
/// count); queries then read only the directory entries and payloads
/// they need.
#[derive(Debug, Clone)]
pub struct V2File<'a> {
    image: &'a [u8],
    /// Session/machine header (version rewritten to the v1 value so a
    /// reconstructed [`TraceFile`] serializes valid v1 bytes).
    pub header: TraceHeader,
    /// Per-stream metadata, in directory order.
    pub streams: Vec<V2StreamMeta>,
    /// Context-name table.
    pub ctx_names: Vec<(u32, String)>,
}

impl<'a> V2File<'a> {
    /// Parses the container structure (header, stream directory, name
    /// table) without touching any block payload.
    ///
    /// # Errors
    ///
    /// Returns [`V2Error`] on bad magic/version, truncation or a
    /// structurally inconsistent stream directory.
    pub fn parse(image: &'a [u8]) -> Result<V2File<'a>, V2Error> {
        let mut buf = image;
        if buf.len() < 4 {
            return Err(V2Error::Truncated { reading: "magic" });
        }
        if &buf[..4] != MAGIC2 {
            return Err(V2Error::BadMagic);
        }
        buf.advance(4);
        if buf.len() < 2 + 1 + 1 + 8 + 8 + 4 + 4 + 4 {
            return Err(V2Error::Truncated { reading: "header" });
        }
        let version = buf.get_u16_le();
        if version != VERSION2 {
            return Err(V2Error::BadVersion { found: version });
        }
        let header = TraceHeader {
            version: VERSION,
            num_ppe_threads: buf.get_u8(),
            num_spes: buf.get_u8(),
            core_hz: buf.get_u64_le(),
            timebase_divider: buf.get_u64_le(),
            dec_start: buf.get_u32_le(),
            group_mask: buf.get_u32_le(),
            spe_buffer_bytes: buf.get_u32_le(),
        };
        if buf.len() < 4 {
            return Err(V2Error::Truncated {
                reading: "stream count",
            });
        }
        let n_streams = buf.get_u32_le();
        let mut streams = Vec::with_capacity(n_streams as usize);
        for _ in 0..n_streams {
            if buf.len() < STREAM_HEADER_BYTES {
                return Err(V2Error::Truncated {
                    reading: "stream header",
                });
            }
            let core = TraceCore::from_tag(buf.get_u8());
            let anchoring = Anchoring::from_byte(buf.get_u8()).ok_or(V2Error::Corrupt {
                what: "stream anchoring byte",
            })?;
            buf.advance(2);
            let n_blocks = buf.get_u32_le();
            let dropped = buf.get_u64_le();
            let raw_len = buf.get_u64_le();
            let payloads_len = buf.get_u64_le();
            let run_tb = buf.get_u64_le();
            let blocks_off = image.len() - buf.len();
            let region = usize::try_from(payloads_len).map_err(|_| V2Error::Corrupt {
                what: "stream payload length",
            })?;
            if buf.len() < region {
                return Err(V2Error::Truncated {
                    reading: "block region",
                });
            }
            buf.advance(region);
            let dir_off = image.len() - buf.len();
            let dir_len = n_blocks as usize * ENTRY_BYTES;
            if buf.len() < dir_len {
                return Err(V2Error::Truncated {
                    reading: "footer directory",
                });
            }
            buf.advance(dir_len);
            streams.push(V2StreamMeta {
                core,
                anchoring,
                run_tb,
                dropped,
                raw_len,
                n_blocks,
                blocks_off,
                payloads_len,
                dir_off,
            });
        }
        if buf.len() < 4 {
            return Err(V2Error::Truncated {
                reading: "name table",
            });
        }
        let n_names = buf.get_u32_le();
        let mut ctx_names = Vec::with_capacity(n_names as usize);
        for _ in 0..n_names {
            if buf.len() < 8 {
                return Err(V2Error::Truncated {
                    reading: "name entry",
                });
            }
            let ctx = buf.get_u32_le();
            let len = buf.get_u32_le() as usize;
            if buf.len() < len {
                return Err(V2Error::Truncated {
                    reading: "name bytes",
                });
            }
            let name = String::from_utf8(buf[..len].to_vec()).map_err(|_| V2Error::BadName)?;
            buf.advance(len);
            ctx_names.push((ctx, name));
        }
        Ok(V2File {
            image,
            header,
            streams,
            ctx_names,
        })
    }

    /// Decodes (and CRC-verifies) one footer directory entry.
    ///
    /// # Errors
    ///
    /// Returns [`V2Error::Corrupt`] on a flipped footer.
    ///
    /// # Panics
    ///
    /// Panics if `stream` or `block` is out of range.
    pub fn entry(&self, stream: usize, block: u32) -> Result<BlockEntry, V2Error> {
        let meta = &self.streams[stream];
        assert!(block < meta.n_blocks, "block index out of range");
        let off = meta.dir_off + block as usize * ENTRY_BYTES;
        BlockEntry::decode(&self.image[off..off + ENTRY_BYTES])
    }

    /// The payload bytes a (trusted) footer entry points at.
    ///
    /// # Errors
    ///
    /// Returns [`V2Error::Corrupt`] when the entry points outside the
    /// stream's block region (a corrupt entry that passed its CRC
    /// cannot happen, but a caller may pass a synthetic one).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn payload(&self, stream: usize, entry: &BlockEntry) -> Result<&'a [u8], V2Error> {
        let meta = &self.streams[stream];
        let region = &self.image[meta.blocks_off..meta.blocks_off + meta.payloads_len as usize];
        let start = usize::try_from(entry.block_off)
            .ok()
            .and_then(|o| o.checked_add(PREFIX_BYTES))
            .ok_or(V2Error::Corrupt {
                what: "footer block offset",
            })?;
        let end = start.checked_add(entry.payload_len as usize);
        match end {
            Some(end) if end <= region.len() => Ok(&region[start..end]),
            _ => Err(V2Error::Corrupt {
                what: "footer block offset",
            }),
        }
    }

    /// Iterates a stream's blocks in order via the inline prefixes
    /// (the streaming decode path — no directory access).
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn blocks(&self, stream: usize) -> BlockIter<'a> {
        let meta = &self.streams[stream];
        BlockIter {
            region: &self.image[meta.blocks_off..meta.blocks_off + meta.payloads_len as usize],
            off: 0,
            failed: false,
        }
    }

    /// Total blocks over all streams.
    pub fn total_blocks(&self) -> u64 {
        self.streams.iter().map(|s| u64::from(s.n_blocks)).sum()
    }
}

/// Iterator over one stream's `(prefix, payload)` pairs, driven by the
/// inline prefixes. Yields one `Err` and then fuses if the block
/// region is structurally inconsistent.
#[derive(Debug, Clone)]
pub struct BlockIter<'a> {
    region: &'a [u8],
    off: usize,
    failed: bool,
}

impl<'a> Iterator for BlockIter<'a> {
    type Item = Result<(BlockPrefix, &'a [u8]), V2Error>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.off >= self.region.len() {
            return None;
        }
        let prefix = match BlockPrefix::decode(&self.region[self.off..]) {
            Ok(p) => p,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        let start = self.off + PREFIX_BYTES;
        let end = match start.checked_add(prefix.payload_len as usize) {
            Some(end) if end <= self.region.len() => end,
            _ => {
                self.failed = true;
                return Some(Err(V2Error::Truncated {
                    reading: "block payload",
                }));
            }
        };
        self.off = end;
        Some(Ok((prefix, &self.region[start..end])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::MAGIC;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX - 1, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut buf = out.as_slice();
            assert_eq!(get_varint(&mut buf), Some(v));
            assert!(buf.is_empty());
        }
        // Truncated and overlong inputs fail cleanly.
        assert_eq!(get_varint(&mut &[0x80u8][..]), None);
        assert_eq!(get_varint(&mut &[0x80u8; 11][..]), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn columnar_decode_matches_record_decode() {
        // Mixed cores, codes and param counts so neither column
        // collapses to its uniform byte; then a uniform run.
        let mixed: Vec<TraceRecord> = (0..100)
            .map(|i| TraceRecord {
                core: if i % 3 == 0 {
                    TraceCore::Ppe((i % 2) as u8)
                } else {
                    TraceCore::Spe((i % 5) as u8)
                },
                code: if i % 2 == 0 {
                    EventCode::SpeDmaGet
                } else {
                    EventCode::PpeUser
                },
                timestamp: 1_000_000u64.wrapping_add(i * 37 % 1000),
                params: vec![i; (i % 5) as usize],
            })
            .collect();
        let uniform: Vec<TraceRecord> = (0..50)
            .map(|i| TraceRecord {
                core: TraceCore::Spe(3),
                code: EventCode::SpeUser,
                timestamp: 500 + i,
                params: vec![i],
            })
            .collect();
        let mut batch = ColumnBatch::default();
        for records in [mixed, uniform] {
            let payload = encode_packed_payload(&records);
            let rows = decode_packed_payload(&payload, records.len() as u32).unwrap();
            decode_packed_columns(&payload, records.len() as u32, &mut batch).unwrap();
            assert_eq!(batch.len(), rows.len());
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(batch.record(i), *r);
            }
            assert_eq!(batch.raw_len(), raw_len_of(&records) as u64);
        }
    }

    #[test]
    fn columnar_decode_fails_atomically() {
        let records: Vec<TraceRecord> = (0..10)
            .map(|i| TraceRecord {
                core: TraceCore::Spe(0),
                code: EventCode::SpeUser,
                timestamp: i,
                params: vec![i, i + 1],
            })
            .collect();
        let payload = encode_packed_payload(&records);
        let mut batch = ColumnBatch::default();
        // Truncations and bit flips must match the record decoder's
        // verdict and leave the batch empty on failure.
        for cut in 0..payload.len() {
            let rows = decode_packed_payload(&payload[..cut], 10);
            let cols = decode_packed_columns(&payload[..cut], 10, &mut batch);
            assert_eq!(rows.is_err(), cols.is_err());
            if cols.is_err() {
                assert!(batch.is_empty() && batch.params_off.is_empty());
            }
        }
        for bit in 0..payload.len() * 8 {
            let mut bad = payload.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let rows = decode_packed_payload(&bad, 10);
            let cols = decode_packed_columns(&bad, 10, &mut batch);
            assert_eq!(rows.is_err(), cols.is_err(), "bit {bit}");
            match (rows, cols) {
                (Ok(rows), Ok(())) => {
                    assert_eq!(batch.len(), rows.len());
                    for (i, r) in rows.iter().enumerate() {
                        assert_eq!(batch.record(i), *r);
                    }
                }
                (Err(_), Err(_)) => {
                    assert!(batch.is_empty() && batch.params_off.is_empty());
                }
                _ => unreachable!(),
            }
        }
    }

    fn ppe_run(spe: u8, tb: u64, dec_start: u32) -> TraceRecord {
        TraceRecord {
            core: TraceCore::Ppe(0),
            code: EventCode::PpeCtxRun,
            timestamp: tb,
            params: vec![7, u64::from(spe), u64::from(dec_start)],
        }
    }

    fn spe_rec(spe: u8, code: EventCode, dec: u32, params: Vec<u64>) -> TraceRecord {
        TraceRecord {
            core: TraceCore::Spe(spe),
            code,
            timestamp: u64::from(dec),
            params,
        }
    }

    fn sample() -> TraceFile {
        let mut ppe = Vec::new();
        TraceRecord {
            core: TraceCore::Ppe(0),
            code: EventCode::PpeCtxCreate,
            timestamp: 50,
            params: vec![7],
        }
        .encode_into(&mut ppe);
        ppe_run(0, 100, 10_000).encode_into(&mut ppe);
        TraceRecord {
            core: TraceCore::Ppe(1),
            code: EventCode::PpeUser,
            timestamp: 400,
            params: vec![1, 2, 3],
        }
        .encode_into(&mut ppe);
        let mut spe = Vec::new();
        for (i, code) in [
            EventCode::SpeCtxStart,
            EventCode::SpeDmaGet,
            EventCode::SpeDmaGet,
            EventCode::SpeTagWaitBegin,
            EventCode::SpeTagWaitEnd,
            EventCode::SpeStop,
        ]
        .iter()
        .enumerate()
        {
            spe_rec(0, *code, 10_000 - 100 * i as u32, vec![i as u64; i % 4]).encode_into(&mut spe);
        }
        TraceFile {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 2,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: 10_000,
                group_mask: 0xffff,
                spe_buffer_bytes: 4096,
            },
            streams: vec![
                TraceStream {
                    core: TraceCore::Ppe(0),
                    bytes: ppe,
                    dropped: 1,
                },
                TraceStream {
                    core: TraceCore::Spe(0),
                    bytes: spe,
                    dropped: 0,
                },
            ],
            ctx_names: vec![(7, "kernel".into())],
        }
    }

    #[test]
    fn packed_payload_roundtrip_mixed() {
        // Duplicate codes, mixed thread tags, max-width params and
        // pathological timestamp deltas in one block.
        let records = vec![
            TraceRecord {
                core: TraceCore::Ppe(0),
                code: EventCode::PpeUser,
                timestamp: u64::MAX,
                params: vec![u64::MAX; MAX_PARAMS],
            },
            TraceRecord {
                core: TraceCore::Ppe(3),
                code: EventCode::PpeMboxWrite,
                timestamp: 0,
                params: vec![],
            },
            TraceRecord {
                core: TraceCore::Ppe(0),
                code: EventCode::PpeUser,
                timestamp: 1,
                params: vec![0, u64::MAX, 42],
            },
        ];
        let payload = encode_packed_payload(&records);
        let back = decode_packed_payload(&payload, records.len() as u32).unwrap();
        assert_eq!(back, records);
        assert_eq!(records_to_bytes(&back), records_to_bytes(&records));
    }

    #[test]
    fn packed_payload_rejects_damage() {
        let records = vec![
            spe_rec(0, EventCode::SpeDmaGet, 900, vec![1, 2]),
            spe_rec(0, EventCode::SpeDmaPut, 800, vec![3]),
        ];
        let payload = encode_packed_payload(&records);
        assert!(decode_packed_payload(&payload, 2).is_ok());
        // Wrong record count, truncation, trailing garbage, bad dict.
        assert!(decode_packed_payload(&payload, 3).is_err());
        assert!(decode_packed_payload(&payload[..payload.len() - 1], 2).is_err());
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_packed_payload(&long, 2).is_err());
        let mut bad = payload;
        bad[1] = 0xff; // dictionary entry -> unknown event code
        bad[2] = 0xff;
        assert!(decode_packed_payload(&bad, 2).is_err());
    }

    #[test]
    fn entry_roundtrip_and_crc() {
        let e = BlockEntry {
            kind: BlockKind::Packed,
            flags: 0,
            n_records: 9,
            raw_len: 144,
            payload_len: 60,
            payload_crc: 0xdead_beef,
            core_mask: 1 << 16,
            group_mask: 0b10,
            entry_dec: 5000,
            min_tb: 100,
            max_tb: 900,
            entry_elapsed: 50,
            entry_seq: 4096,
            block_off: 77,
        };
        let mut bytes = Vec::new();
        e.encode_into(&mut bytes);
        assert_eq!(bytes.len(), ENTRY_BYTES);
        assert_eq!(BlockEntry::decode(&bytes).unwrap(), e);
        for i in [0, 5, 33, 70] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(BlockEntry::decode(&bad).is_err(), "flip at {i} undetected");
        }
        assert!(e.overlaps(0, 101));
        assert!(e.overlaps(900, 901));
        assert!(!e.overlaps(0, 100));
        assert!(!e.overlaps(901, 2000));
    }

    #[test]
    fn pack_unpack_roundtrip_clean() {
        let f = sample();
        let image = pack(&f, 2);
        assert_eq!(&image[..4], MAGIC2);
        let g = unpack(&image).unwrap();
        assert_eq!(f, g);
        // v1 magic rejected by the v2 parser and vice versa.
        assert_eq!(V2File::parse(&f.to_bytes()).unwrap_err(), V2Error::BadMagic);
        assert_eq!(&f.to_bytes()[..4], MAGIC);
    }

    #[test]
    fn pack_unpack_roundtrip_damaged() {
        // Corrupt one SPE record: the gap bytes must survive verbatim
        // so the reconstructed stream decodes identically.
        let mut f = sample();
        f.streams[1].bytes[16] = 0; // zero granule count
        let before = decode_stream_lossy(&f.streams[1].bytes, Some(TraceCore::Spe(0)));
        assert!(!before.gaps.is_empty());
        let g = unpack(&pack(&f, 2)).unwrap();
        assert_eq!(f, g, "gap bytes and clean runs must both round-trip");
    }

    #[test]
    fn footer_times_match_analyzer_semantics() {
        let f = sample();
        let image = pack(&f, 2);
        let v2 = V2File::parse(&image).unwrap();
        assert_eq!(v2.header, f.header);
        assert_eq!(v2.ctx_names, f.ctx_names);
        assert_eq!(v2.streams.len(), 2);
        assert_eq!(v2.streams[0].anchoring, Anchoring::Ppe);
        assert_eq!(v2.streams[1].anchoring, Anchoring::Anchored);
        assert_eq!(v2.streams[1].run_tb, 100);

        // SPE stream: decs 10_000, 9_900 ... elapsed 0,100,...; times
        // run_tb + elapsed. Blocks of 2 records.
        let meta = &v2.streams[1];
        assert_eq!(meta.n_blocks, 3);
        let e0 = v2.entry(1, 0).unwrap();
        assert_eq!((e0.min_tb, e0.max_tb), (100, 200));
        assert_eq!(e0.entry_dec, 10_000);
        assert_eq!((e0.entry_elapsed, e0.entry_seq), (0, 0));
        let e1 = v2.entry(1, 1).unwrap();
        assert_eq!((e1.min_tb, e1.max_tb), (300, 400));
        assert_eq!(e1.entry_dec, 9_900);
        assert_eq!((e1.entry_elapsed, e1.entry_seq), (100, 2));
        let e2 = v2.entry(1, 2).unwrap();
        assert_eq!((e2.min_tb, e2.max_tb), (500, 600));
        assert!(e2.group_mask & crate::EventGroup::SpeLifecycle.bit() != 0);
        assert_eq!(e0.core_mask, 1 << 16);

        // PPE stream: min/max are raw timestamps; thread tags 0 and 1.
        let p0 = v2.entry(0, 0).unwrap();
        assert_eq!((p0.min_tb, p0.max_tb), (50, 100));
        let p1 = v2.entry(0, 1).unwrap();
        assert_eq!((p1.min_tb, p1.max_tb), (400, 400));
        assert_eq!(p1.core_mask, 1 << 1);

        // Payload access agrees with the block iterator.
        let by_iter: Vec<_> = v2.blocks(1).map(|r| r.unwrap().1.to_vec()).collect();
        for (i, want) in by_iter.iter().enumerate() {
            let e = v2.entry(1, i as u32).unwrap();
            assert_eq!(v2.payload(1, &e).unwrap(), want.as_slice());
        }
    }

    #[test]
    fn gap_footers_bracket_global_time() {
        let mut f = sample();
        f.streams[1].bytes[48] = 0; // corrupt record 2's granule header
        let image = pack(&f, 1);
        let v2 = V2File::parse(&image).unwrap();
        let meta = &v2.streams[1];
        let entries: Vec<BlockEntry> = (0..meta.n_blocks)
            .map(|i| v2.entry(1, i).unwrap())
            .collect();
        let gap = entries
            .iter()
            .find(|e| e.kind == BlockKind::Raw)
            .expect("gap block");
        assert!(gap.flags & FLAG_GAP != 0);
        // Gap sits after the record at time 200 and before the next
        // surviving record; its bracket must cover that span.
        assert_eq!(gap.min_tb, 200);
        assert!(gap.max_tb > gap.min_tb && gap.max_tb != u64::MAX);
        assert_eq!(gap.n_records, 0);
    }

    #[test]
    fn unanchored_stream_is_flagged_and_never_overlaps() {
        let mut f = sample();
        // Remove the PPE stream: the SPE stream loses its anchor.
        f.streams.remove(0);
        let image = pack(&f, 4);
        let v2 = V2File::parse(&image).unwrap();
        assert_eq!(v2.streams[0].anchoring, Anchoring::Unanchored);
        let e = v2.entry(0, 0).unwrap();
        assert!(e.flags & FLAG_UNPLACED != 0);
        assert!(!e.overlaps(0, u64::MAX));
        // Unpack still reproduces the stream bytes exactly.
        assert_eq!(unpack(&image).unwrap(), f);
    }

    #[test]
    fn writer_rejects_anchor_after_unanchored_stream() {
        let f = sample();
        let mut w = V2Writer::new(io::Cursor::new(Vec::new()), f.header, 8).unwrap();
        // SPE stream first (no anchor known yet) ...
        w.begin_stream(TraceCore::Spe(0), 0).unwrap();
        w.push(&spe_rec(0, EventCode::SpeUser, 9000, vec![]))
            .unwrap();
        w.end_stream().unwrap();
        // ... then the PPE stream that would have anchored it.
        w.begin_stream(TraceCore::Ppe(0), 0).unwrap();
        w.push(&ppe_run(0, 100, 10_000)).unwrap();
        w.end_stream().unwrap();
        let err = w.finish(&[]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn parse_detects_truncation_and_flipped_footers() {
        let image = pack(&sample(), 2);
        for cut in [3, 10, 45, 60, image.len() - 1] {
            assert!(V2File::parse(&image[..cut]).is_err(), "cut at {cut}");
        }
        let v2 = V2File::parse(&image).unwrap();
        let mut flipped = image.clone();
        flipped[v2.streams[1].dir_off + 8] ^= 0x01;
        let v2f = V2File::parse(&flipped).unwrap();
        assert_eq!(
            v2f.entry(1, 0).unwrap_err(),
            V2Error::Corrupt {
                what: "directory entry crc"
            }
        );
        // Other entries in the same stream are unaffected.
        assert!(v2f.entry(1, 1).is_ok());
    }

    #[test]
    fn block_iter_fuses_on_structural_damage() {
        let image = pack(&sample(), 2);
        let v2 = V2File::parse(&image).unwrap();
        let mut bad = image.clone();
        // Blow up the first block's payload_len field (prefix offset 9).
        let off = v2.streams[1].blocks_off + 9;
        bad[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let v2b = V2File::parse(&bad).unwrap();
        let mut it = v2b.blocks(1);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "iterator must fuse after an error");
    }

    #[test]
    fn anchor_harvest_matches_analyzer_rules() {
        let mut f = sample();
        // A second run record for the same SPE must not displace the
        // first; one with too few params is ignored.
        let mut extra = Vec::new();
        TraceRecord {
            core: TraceCore::Ppe(0),
            code: EventCode::PpeCtxRun,
            timestamp: 999,
            params: vec![1],
        }
        .encode_into(&mut extra);
        ppe_run(0, 5555, 1).encode_into(&mut extra);
        ppe_run(2, 700, 8_000).encode_into(&mut extra);
        f.streams[0].bytes.extend_from_slice(&extra);
        let anchors = harvest_sync_anchors(&f);
        assert_eq!(anchors.len(), 2);
        assert_eq!((anchors[0].spe, anchors[0].run_tb), (0, 100));
        assert_eq!((anchors[1].spe, anchors[1].run_tb), (2, 700));
    }
}
