//! Event codes and the mapping from runtime events to trace records.
//!
//! Every instrumentation point has a stable 16-bit [`EventCode`]; the
//! mapping from a [`RuntimeEvent`] to `(code, group, parameter words)`
//! is the PDT's event schema. The trace analyzer decodes records using
//! the same schema, so it lives here in the `pdt` crate.

use cellsim::{DmaKind, RuntimeEvent, SignalReg, TagWaitMode};

use crate::group::EventGroup;

/// Stable numeric code of a traceable event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventCode {
    /// SPU began executing a context. Params: `[ctx]`.
    SpeCtxStart = 0x0100,
    /// SPU stopped. Params: `[code]`.
    SpeStop = 0x0101,
    /// SPU enqueued a GET. Params: `[ea, lsa, size, tag|list_len<<8]`.
    SpeDmaGet = 0x0110,
    /// SPU enqueued a PUT. Params: as `SpeDmaGet`.
    SpeDmaPut = 0x0111,
    /// SPU enqueued an MFC barrier command: every command enqueued
    /// before it is ordered before every command enqueued after it,
    /// across all tag groups. Params: `[]`.
    SpeDmaBarrier = 0x0112,
    /// SPU issued an atomic fetch-and-add. Params: `[ea, delta]`.
    SpeAtomic = 0x0116,
    /// SPU entered a tag wait. Params: `[mask, mode]` (0=all, 1=any).
    SpeTagWaitBegin = 0x0114,
    /// SPU left a tag wait. Params: `[completed_mask]`.
    SpeTagWaitEnd = 0x0115,
    /// SPU began reading its inbound mailbox. Params: `[]`.
    SpeMboxReadBegin = 0x0120,
    /// SPU finished reading its inbound mailbox. Params: `[value]`.
    SpeMboxReadEnd = 0x0121,
    /// SPU wrote the outbound mailbox. Params: `[value]`.
    SpeMboxWrite = 0x0122,
    /// SPU wrote the outbound interrupt mailbox. Params: `[value]`.
    SpeIntrMboxWrite = 0x0123,
    /// SPU began reading a signal register. Params: `[reg]` (1 or 2).
    SpeSignalReadBegin = 0x0130,
    /// SPU finished reading a signal register. Params: `[value]`.
    SpeSignalReadEnd = 0x0131,
    /// SPU sent a signal to another SPE. Params: `[target, reg, value]`.
    SpeSignalSend = 0x0132,
    /// SPE user event. Params: `[id, a0, a1]`.
    SpeUser = 0x0140,
    /// PPE created a context. Params: `[ctx]` (name in the name table).
    PpeCtxCreate = 0x0200,
    /// PPE started a context — the time-sync record. Params:
    /// `[ctx, spe, dec_start]`.
    PpeCtxRun = 0x0201,
    /// PPE observed a context stop. Params: `[ctx, code]`.
    PpeCtxStopped = 0x0202,
    /// PPE wrote an inbound mailbox. Params: `[ctx, value]`.
    PpeMboxWrite = 0x0210,
    /// PPE read an outbound mailbox. Params: `[ctx, value]`.
    PpeMboxRead = 0x0211,
    /// PPE read the outbound interrupt mailbox. Params: `[ctx, value]`.
    PpeIntrMboxRead = 0x0212,
    /// PPE delivered a signal. Params: `[ctx, reg, value]`.
    PpeSignalWrite = 0x0220,
    /// PPE issued a proxy DMA. Params: `[ctx, kind, size, tag]`.
    PpeProxyDma = 0x0230,
    /// PPE user event. Params: `[id, a0, a1]`.
    PpeUser = 0x0240,
}

impl EventCode {
    /// The raw 16-bit code.
    #[inline]
    pub fn raw(self) -> u16 {
        self as u16
    }

    /// Decodes a raw code.
    pub fn from_raw(raw: u16) -> Option<EventCode> {
        use EventCode::*;
        Some(match raw {
            0x0100 => SpeCtxStart,
            0x0101 => SpeStop,
            0x0110 => SpeDmaGet,
            0x0111 => SpeDmaPut,
            0x0112 => SpeDmaBarrier,
            0x0114 => SpeTagWaitBegin,
            0x0115 => SpeTagWaitEnd,
            0x0116 => SpeAtomic,
            0x0120 => SpeMboxReadBegin,
            0x0121 => SpeMboxReadEnd,
            0x0122 => SpeMboxWrite,
            0x0123 => SpeIntrMboxWrite,
            0x0130 => SpeSignalReadBegin,
            0x0131 => SpeSignalReadEnd,
            0x0132 => SpeSignalSend,
            0x0140 => SpeUser,
            0x0200 => PpeCtxCreate,
            0x0201 => PpeCtxRun,
            0x0202 => PpeCtxStopped,
            0x0210 => PpeMboxWrite,
            0x0211 => PpeMboxRead,
            0x0212 => PpeIntrMboxRead,
            0x0220 => PpeSignalWrite,
            0x0230 => PpeProxyDma,
            0x0240 => PpeUser,
            _ => return None,
        })
    }

    /// The group the event belongs to.
    pub fn group(self) -> EventGroup {
        use EventCode::*;
        match self {
            SpeCtxStart | SpeStop => EventGroup::SpeLifecycle,
            SpeDmaGet | SpeDmaPut | SpeDmaBarrier | SpeAtomic | SpeTagWaitBegin | SpeTagWaitEnd => {
                EventGroup::SpeDma
            }
            SpeMboxReadBegin | SpeMboxReadEnd | SpeMboxWrite | SpeIntrMboxWrite => {
                EventGroup::SpeMbox
            }
            SpeSignalReadBegin | SpeSignalReadEnd | SpeSignalSend => EventGroup::SpeSignal,
            SpeUser => EventGroup::SpeUser,
            PpeCtxCreate | PpeCtxRun | PpeCtxStopped => EventGroup::PpeLifecycle,
            PpeMboxWrite | PpeMboxRead | PpeIntrMboxRead => EventGroup::PpeMbox,
            PpeSignalWrite => EventGroup::PpeSignal,
            PpeProxyDma => EventGroup::PpeDma,
            PpeUser => EventGroup::PpeUser,
        }
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        use EventCode::*;
        match self {
            SpeCtxStart => "spe-ctx-start",
            SpeStop => "spe-stop",
            SpeDmaGet => "spe-dma-get",
            SpeDmaPut => "spe-dma-put",
            SpeDmaBarrier => "spe-dma-barrier",
            SpeAtomic => "spe-atomic",
            SpeTagWaitBegin => "spe-tag-wait-begin",
            SpeTagWaitEnd => "spe-tag-wait-end",
            SpeMboxReadBegin => "spe-mbox-read-begin",
            SpeMboxReadEnd => "spe-mbox-read-end",
            SpeMboxWrite => "spe-mbox-write",
            SpeIntrMboxWrite => "spe-intr-mbox-write",
            SpeSignalReadBegin => "spe-signal-read-begin",
            SpeSignalReadEnd => "spe-signal-read-end",
            SpeSignalSend => "spe-signal-send",
            SpeUser => "spe-user",
            PpeCtxCreate => "ppe-ctx-create",
            PpeCtxRun => "ppe-ctx-run",
            PpeCtxStopped => "ppe-ctx-stopped",
            PpeMboxWrite => "ppe-mbox-write",
            PpeMboxRead => "ppe-mbox-read",
            PpeIntrMboxRead => "ppe-intr-mbox-read",
            PpeSignalWrite => "ppe-signal-write",
            PpeProxyDma => "ppe-proxy-dma",
            PpeUser => "ppe-user",
        }
    }
}

/// A runtime event translated into the trace schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedEvent {
    /// The event code.
    pub code: EventCode,
    /// Parameter words, per the code's documented layout.
    pub params: Vec<u64>,
    /// Context name for `PpeCtxCreate` (goes to the name table, not
    /// the record).
    pub ctx_name: Option<String>,
}

/// Translates a runtime event into its trace-schema form.
pub fn encode_event(ev: &RuntimeEvent) -> EncodedEvent {
    let (code, params, ctx_name) = match ev {
        RuntimeEvent::SpeCtxStart { ctx } => {
            (EventCode::SpeCtxStart, vec![ctx.index() as u64], None)
        }
        RuntimeEvent::SpeStop { code } => (EventCode::SpeStop, vec![*code as u64], None),
        RuntimeEvent::SpeDmaIssue {
            kind,
            lsa,
            ea,
            size,
            tag,
            list_len,
        } => {
            let code = match kind {
                DmaKind::Get => EventCode::SpeDmaGet,
                DmaKind::Put => EventCode::SpeDmaPut,
            };
            (
                code,
                vec![
                    *ea,
                    *lsa as u64,
                    *size as u64,
                    (*tag as u64) | ((*list_len as u64) << 8),
                ],
                None,
            )
        }
        RuntimeEvent::SpeDmaBarrier => (EventCode::SpeDmaBarrier, vec![], None),
        RuntimeEvent::SpeSignalSend { target, reg, value } => (
            EventCode::SpeSignalSend,
            vec![
                *target as u64,
                match reg {
                    SignalReg::Sig1 => 1,
                    SignalReg::Sig2 => 2,
                },
                *value as u64,
            ],
            None,
        ),
        RuntimeEvent::SpeAtomic { ea, delta } => {
            (EventCode::SpeAtomic, vec![*ea, *delta as u64], None)
        }
        RuntimeEvent::SpeTagWaitBegin { mask, mode } => (
            EventCode::SpeTagWaitBegin,
            vec![
                *mask as u64,
                match mode {
                    TagWaitMode::All => 0,
                    TagWaitMode::Any => 1,
                },
            ],
            None,
        ),
        RuntimeEvent::SpeTagWaitEnd { mask } => {
            (EventCode::SpeTagWaitEnd, vec![*mask as u64], None)
        }
        RuntimeEvent::SpeMboxReadBegin => (EventCode::SpeMboxReadBegin, vec![], None),
        RuntimeEvent::SpeMboxReadEnd { value } => {
            (EventCode::SpeMboxReadEnd, vec![*value as u64], None)
        }
        RuntimeEvent::SpeMboxWrite { value, interrupt } => (
            if *interrupt {
                EventCode::SpeIntrMboxWrite
            } else {
                EventCode::SpeMboxWrite
            },
            vec![*value as u64],
            None,
        ),
        RuntimeEvent::SpeSignalReadBegin { reg } => (
            EventCode::SpeSignalReadBegin,
            vec![match reg {
                SignalReg::Sig1 => 1,
                SignalReg::Sig2 => 2,
            }],
            None,
        ),
        RuntimeEvent::SpeSignalReadEnd { value } => {
            (EventCode::SpeSignalReadEnd, vec![*value as u64], None)
        }
        RuntimeEvent::SpeUser { id, a0, a1 } => {
            (EventCode::SpeUser, vec![*id as u64, *a0, *a1], None)
        }
        RuntimeEvent::PpeCtxCreate { ctx, name } => (
            EventCode::PpeCtxCreate,
            vec![ctx.index() as u64],
            Some(name.clone()),
        ),
        RuntimeEvent::PpeCtxRun {
            ctx,
            spe,
            dec_start,
        } => (
            EventCode::PpeCtxRun,
            vec![ctx.index() as u64, spe.index() as u64, *dec_start as u64],
            None,
        ),
        RuntimeEvent::PpeCtxStopped { ctx, code } => (
            EventCode::PpeCtxStopped,
            vec![ctx.index() as u64, *code as u64],
            None,
        ),
        RuntimeEvent::PpeMboxWrite { ctx, value } => (
            EventCode::PpeMboxWrite,
            vec![ctx.index() as u64, *value as u64],
            None,
        ),
        RuntimeEvent::PpeMboxRead {
            ctx,
            value,
            interrupt,
        } => (
            if *interrupt {
                EventCode::PpeIntrMboxRead
            } else {
                EventCode::PpeMboxRead
            },
            vec![ctx.index() as u64, *value as u64],
            None,
        ),
        RuntimeEvent::PpeSignalWrite { ctx, reg, value } => (
            EventCode::PpeSignalWrite,
            vec![
                ctx.index() as u64,
                match reg {
                    SignalReg::Sig1 => 1,
                    SignalReg::Sig2 => 2,
                },
                *value as u64,
            ],
            None,
        ),
        RuntimeEvent::PpeProxyDma {
            ctx,
            kind,
            size,
            tag,
        } => (
            EventCode::PpeProxyDma,
            vec![
                ctx.index() as u64,
                match kind {
                    DmaKind::Get => 0,
                    DmaKind::Put => 1,
                },
                *size as u64,
                *tag as u64,
            ],
            None,
        ),
        RuntimeEvent::PpeUser { id, a0, a1 } => {
            (EventCode::PpeUser, vec![*id as u64, *a0, *a1], None)
        }
    };
    EncodedEvent {
        code,
        params,
        ctx_name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::CtxId;

    #[test]
    fn raw_code_roundtrip_for_all_codes() {
        use EventCode::*;
        for code in [
            SpeCtxStart,
            SpeStop,
            SpeDmaGet,
            SpeDmaPut,
            SpeAtomic,
            SpeTagWaitBegin,
            SpeTagWaitEnd,
            SpeMboxReadBegin,
            SpeMboxReadEnd,
            SpeMboxWrite,
            SpeIntrMboxWrite,
            SpeSignalReadBegin,
            SpeSignalReadEnd,
            SpeSignalSend,
            SpeUser,
            PpeCtxCreate,
            PpeCtxRun,
            PpeCtxStopped,
            PpeMboxWrite,
            PpeMboxRead,
            PpeIntrMboxRead,
            PpeSignalWrite,
            PpeProxyDma,
            PpeUser,
        ] {
            assert_eq!(EventCode::from_raw(code.raw()), Some(code));
            assert!(!code.name().is_empty());
        }
        assert_eq!(EventCode::from_raw(0xffff), None);
    }

    #[test]
    fn dma_issue_packs_tag_and_list_len() {
        let ev = RuntimeEvent::SpeDmaIssue {
            kind: DmaKind::Put,
            lsa: 0x80,
            ea: 0x10000,
            size: 4096,
            tag: 5,
            list_len: 3,
        };
        let enc = encode_event(&ev);
        assert_eq!(enc.code, EventCode::SpeDmaPut);
        assert_eq!(enc.params, vec![0x10000, 0x80, 4096, 5 | (3 << 8)]);
    }

    #[test]
    fn ctx_create_carries_name_out_of_band() {
        let ev = RuntimeEvent::PpeCtxCreate {
            ctx: CtxId::new(2),
            name: "worker".into(),
        };
        let enc = encode_event(&ev);
        assert_eq!(enc.code, EventCode::PpeCtxCreate);
        assert_eq!(enc.params, vec![2]);
        assert_eq!(enc.ctx_name.as_deref(), Some("worker"));
    }

    #[test]
    fn groups_partition_spe_and_ppe() {
        assert_eq!(EventCode::SpeDmaGet.group(), EventGroup::SpeDma);
        assert_eq!(EventCode::SpeTagWaitEnd.group(), EventGroup::SpeDma);
        assert_eq!(EventCode::PpeCtxRun.group(), EventGroup::PpeLifecycle);
        assert_eq!(EventCode::SpeUser.group(), EventGroup::SpeUser);
    }

    #[test]
    fn mode_encodes_all_vs_any() {
        let all = encode_event(&RuntimeEvent::SpeTagWaitBegin {
            mask: 0xf,
            mode: TagWaitMode::All,
        });
        let any = encode_event(&RuntimeEvent::SpeTagWaitBegin {
            mask: 0xf,
            mode: TagWaitMode::Any,
        });
        assert_eq!(all.params[1], 0);
        assert_eq!(any.params[1], 1);
    }
}
