//! Tracing-session configuration.

use serde::{Deserialize, Serialize};

use crate::group::GroupMask;
use crate::overhead::OverheadModel;

/// Errors from validating a [`TracingConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracingConfigError {
    msg: String,
}

impl TracingConfigError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        TracingConfigError { msg: msg.into() }
    }
}

impl std::fmt::Display for TracingConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid tracing configuration: {}", self.msg)
    }
}

impl std::error::Error for TracingConfigError {}

/// Configuration of a PDT tracing session.
///
/// The defaults match the shipped PDT: a 2 KiB double-buffered trace
/// buffer in each SPE's local store, a dedicated flush tag, and all
/// event groups enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracingConfig {
    /// Enabled event groups.
    pub groups: GroupMask,
    /// Total LS trace-buffer bytes per SPE (split into two halves).
    pub spe_buffer_bytes: u32,
    /// Main-memory base address of the trace regions.
    pub region_base: u64,
    /// Main-memory bytes reserved per SPE stream.
    pub region_per_spe: u64,
    /// MFC tag the tracer's flush DMAs use (PDT reserves one).
    pub flush_tag: u8,
    /// The instrumentation cost model.
    pub overhead: OverheadModel,
}

impl Default for TracingConfig {
    fn default() -> Self {
        TracingConfig {
            groups: GroupMask::all(),
            spe_buffer_bytes: 2048,
            region_base: 0x0800_0000, // 128 MiB, above workload data
            region_per_spe: 4 * 1024 * 1024,
            flush_tag: 31,
            overhead: OverheadModel::default(),
        }
    }
}

impl TracingConfig {
    /// Sets the enabled groups.
    pub fn with_groups(mut self, groups: GroupMask) -> Self {
        self.groups = groups;
        self
    }

    /// Sets the per-SPE local-store buffer size.
    pub fn with_buffer_bytes(mut self, bytes: u32) -> Self {
        self.spe_buffer_bytes = bytes;
        self
    }

    /// Sets the overhead model.
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Half-buffer size (the flush granule).
    pub fn half_buffer_bytes(&self) -> u32 {
        self.spe_buffer_bytes / 2
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`TracingConfigError`] if the buffer is too small,
    /// misaligned, larger than one DMA can flush, or the flush tag is
    /// out of range.
    pub fn validate(&self) -> Result<(), TracingConfigError> {
        if self.spe_buffer_bytes < 256 {
            return Err(TracingConfigError::new(format!(
                "spe_buffer_bytes {} too small (min 256)",
                self.spe_buffer_bytes
            )));
        }
        if !self.spe_buffer_bytes.is_multiple_of(32) {
            return Err(TracingConfigError::new(
                "spe_buffer_bytes must be a multiple of 32 (two 16-byte-granular halves)",
            ));
        }
        if self.half_buffer_bytes() > 16 * 1024 {
            return Err(TracingConfigError::new(
                "half buffer exceeds the 16 KiB single-DMA limit",
            ));
        }
        if self.flush_tag >= 32 {
            return Err(TracingConfigError::new(format!(
                "flush_tag {} out of range",
                self.flush_tag
            )));
        }
        if self.region_per_spe < self.spe_buffer_bytes as u64 {
            return Err(TracingConfigError::new(
                "region_per_spe smaller than one trace buffer",
            ));
        }
        if !self.region_base.is_multiple_of(128) {
            return Err(TracingConfigError::new(
                "region_base must be 128-byte aligned",
            ));
        }
        Ok(())
    }
}

/// Serializable mirror of [`TracingConfig`] (used for config
/// round-trips in tools and tests; `OverheadModel` is flattened).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TracingConfigRepr {
    /// Group-mask bits.
    pub groups: u32,
    /// LS buffer bytes.
    pub spe_buffer_bytes: u32,
    /// Region base EA.
    pub region_base: u64,
    /// Region bytes per SPE.
    pub region_per_spe: u64,
    /// Flush tag.
    pub flush_tag: u8,
    /// SPE event base cycles.
    pub spe_event_cycles: u64,
    /// PPE event base cycles.
    pub ppe_event_cycles: u64,
}

impl From<&TracingConfig> for TracingConfigRepr {
    fn from(c: &TracingConfig) -> Self {
        TracingConfigRepr {
            groups: c.groups.bits(),
            spe_buffer_bytes: c.spe_buffer_bytes,
            region_base: c.region_base,
            region_per_spe: c.region_per_spe,
            flush_tag: c.flush_tag,
            spe_event_cycles: c.overhead.spe_event_cycles,
            ppe_event_cycles: c.overhead.ppe_event_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = TracingConfig::default();
        c.validate().unwrap();
        assert_eq!(c.half_buffer_bytes(), 1024);
        assert!(c.groups.contains(crate::group::EventGroup::SpeDma));
    }

    #[test]
    fn small_or_misaligned_buffers_rejected() {
        assert!(TracingConfig::default()
            .with_buffer_bytes(128)
            .validate()
            .is_err());
        assert!(TracingConfig::default()
            .with_buffer_bytes(1000)
            .validate()
            .is_err());
        assert!(
            TracingConfig::default()
                .with_buffer_bytes(64 * 1024)
                .validate()
                .is_err(),
            "half > 16 KiB DMA limit"
        );
    }

    #[test]
    fn bad_flush_tag_rejected() {
        let c = TracingConfig {
            flush_tag: 32,
            ..TracingConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn repr_mirrors_config() {
        let c = TracingConfig::default().with_buffer_bytes(4096);
        let r = TracingConfigRepr::from(&c);
        assert_eq!(r.spe_buffer_bytes, 4096);
        assert_eq!(r.groups, c.groups.bits());
        assert_eq!(r.flush_tag, 31);
    }
}
