//! The PPE-side tracer.
//!
//! PPE trace buffers live in cacheable main memory and are drained by
//! the trace writer directly, so — unlike the SPE side — no simulated
//! DMA is involved: the tracer appends encoded records to a host-side
//! stream and charges the configured cycles. It also harvests context
//! names and the `PpeCtxRun` time-synchronization records the analyzer
//! needs to place SPE decrementer timestamps on the global timeline.

use cellsim::{PpeThreadId, PpeTracer, RuntimeEvent};

use crate::config::TracingConfig;
use crate::event::encode_event;
use crate::record::{TraceCore, TraceRecord};
use crate::sink::PpeStreamHandle;

/// PPE-side PDT tracer (one per machine, shared by both hardware
/// threads).
#[derive(Debug)]
pub struct PdtPpeTracer {
    cfg: TracingConfig,
    shared: PpeStreamHandle,
    scratch: Vec<u8>,
}

impl PdtPpeTracer {
    /// Creates a tracer publishing records through `shared`.
    pub fn new(cfg: TracingConfig, shared: PpeStreamHandle) -> Self {
        PdtPpeTracer {
            cfg,
            shared,
            scratch: Vec::with_capacity(128),
        }
    }
}

impl PpeTracer for PdtPpeTracer {
    fn on_event(&mut self, thread: PpeThreadId, timebase: u64, ev: &RuntimeEvent) -> u64 {
        let enc = encode_event(ev);
        if !self.cfg.groups.contains(enc.code.group()) {
            return self.cfg.overhead.disabled_check_cycles;
        }
        let record = TraceRecord {
            core: TraceCore::Ppe(thread.index() as u8),
            code: enc.code,
            timestamp: timebase,
            params: enc.params,
        };
        self.scratch.clear();
        record.encode_into(&mut self.scratch);
        let nparams = record.params.len();
        {
            let mut s = self.shared.lock();
            s.bytes.extend_from_slice(&self.scratch);
            s.records += 1;
            if let Some(name) = enc.ctx_name {
                s.ctx_names.push((record.params[0] as u32, name));
            }
        }
        self.cfg.overhead.ppe_cost(nparams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventCode;
    use crate::group::GroupMask;
    use crate::record::decode_stream;
    use crate::sink::new_ppe_handle;
    use cellsim::{CtxId, SpeId};

    #[test]
    fn records_and_names_are_collected() {
        let shared = new_ppe_handle();
        let mut tr = PdtPpeTracer::new(TracingConfig::default(), shared.clone());
        let c1 = tr.on_event(
            PpeThreadId::new(0),
            100,
            &RuntimeEvent::PpeCtxCreate {
                ctx: CtxId::new(0),
                name: "fft".into(),
            },
        );
        assert!(c1 > 0);
        tr.on_event(
            PpeThreadId::new(1),
            150,
            &RuntimeEvent::PpeCtxRun {
                ctx: CtxId::new(0),
                spe: SpeId::new(3),
                dec_start: u32::MAX,
            },
        );
        let s = shared.lock();
        assert_eq!(s.records, 2);
        assert_eq!(s.ctx_names, vec![(0, "fft".to_string())]);
        let recs = decode_stream(&s.bytes).unwrap();
        assert_eq!(recs[0].core, TraceCore::Ppe(0));
        assert_eq!(recs[0].timestamp, 100);
        assert_eq!(recs[1].core, TraceCore::Ppe(1));
        assert_eq!(recs[1].code, EventCode::PpeCtxRun);
        assert_eq!(recs[1].params, vec![0, 3, u32::MAX as u64]);
    }

    #[test]
    fn disabled_groups_record_nothing() {
        let shared = new_ppe_handle();
        let cfg = TracingConfig::default().with_groups(GroupMask::NONE);
        let mut tr = PdtPpeTracer::new(cfg, shared.clone());
        let c = tr.on_event(
            PpeThreadId::new(0),
            1,
            &RuntimeEvent::PpeUser {
                id: 1,
                a0: 0,
                a1: 0,
            },
        );
        assert_eq!(c, cfg.overhead.disabled_check_cycles);
        assert_eq!(shared.lock().records, 0);
    }
}
