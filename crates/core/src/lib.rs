//! # pdt — the Performance Debugging Tool
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Trace-based Performance Analysis on Cell BE* (Biberstein et al.,
//! ISPASS 2008): an event-tracing infrastructure for Cell applications
//! that records significant runtime events — DMA issue and completion
//! waits, mailbox and signal traffic, context lifecycle and
//! user-defined events — while preserving per-core sequential order,
//! core assignment and relative timing.
//!
//! Architecture (mirroring the shipped PDT):
//!
//! - **Event schema** ([`event`], [`group`]): every instrumentation
//!   point has a stable [`EventCode`] in an [`EventGroup`]; groups are
//!   enabled per session through a [`GroupMask`].
//! - **SPE tracing** ([`spe_tracer`], [`buffer`]): events are recorded
//!   into a small double-buffered trace buffer in each SPE's local
//!   store, timestamped with the SPU decrementer, and flushed to main
//!   memory with real DMA transfers riding the ordinary MFC/EIB path.
//!   Recording charges SPU cycles per the [`OverheadModel`], so tracing
//!   perturbation *emerges* from the simulation.
//! - **PPE tracing** ([`ppe_tracer`]): PPE events are timestamped with
//!   the timebase and buffered in main memory; `PpeCtxRun` records
//!   carry the decrementer/timebase synchronization the analyzer needs.
//! - **Trace file** ([`mod@format`], [`record`]): a binary format with
//!   per-core streams of 16-byte-granular records plus the context
//!   name table.
//! - **Session** ([`session`]): installs tracers into a
//!   [`cellsim::Machine`] and collects the trace after the run.
//!
//! ## Example
//!
//! ```
//! use cellsim::{Machine, MachineConfig, PpeThreadId, SpmdDriver, SpeJob, SpuScript, SpuAction};
//! use pdt::{TraceSession, TracingConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::default().with_num_spes(1))?;
//! let session = TraceSession::install(TracingConfig::default(), &mut machine)?;
//! machine.set_ppe_program(
//!     PpeThreadId::new(0),
//!     Box::new(SpmdDriver::new(vec![SpeJob::new(
//!         "kernel",
//!         Box::new(SpuScript::new(vec![SpuAction::Compute(10_000)])),
//!     )])),
//! );
//! machine.run()?;
//! let trace = session.collect(&machine);
//! assert!(trace.total_bytes() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod config;

/// Marker conventions for user events.
///
/// Applications bracket logical phases by emitting user events whose
/// first payload word (`a0`) carries one of these markers; the trace
/// analyzer's `phases` module pairs them into named intervals.
pub mod markers {
    /// `a0` value opening a user phase.
    pub const PHASE_BEGIN: u64 = 1;
    /// `a0` value closing a user phase.
    pub const PHASE_END: u64 = 2;

    /// User-event id that suspends SPE-side tracing (the
    /// `pdt_trace_disable` API): subsequent events on that SPE pay
    /// only the mask check and record nothing until re-enabled. The
    /// control events themselves are always recorded so the analyzer
    /// can see the gap.
    pub const TRACE_DISABLE_ID: u32 = 0xffff_ff00;
    /// User-event id that resumes SPE-side tracing
    /// (`pdt_trace_enable`).
    pub const TRACE_ENABLE_ID: u32 = 0xffff_ff01;
}

pub mod event;
pub mod format;
pub mod group;
pub mod overhead;
pub mod ppe_tracer;
pub mod record;
pub mod session;
pub mod sink;
pub mod spe_tracer;
pub mod v2;

pub use buffer::{BufferStats, SpeTraceBuffer, WriteOutcome};
pub use config::{TracingConfig, TracingConfigError, TracingConfigRepr};
pub use event::{encode_event, EncodedEvent, EventCode};
pub use format::{FormatError, StreamMeta, TraceFile, TraceHeader, TraceStream, MAGIC, VERSION};
pub use group::{EventGroup, GroupMask};
pub use overhead::OverheadModel;
pub use ppe_tracer::PdtPpeTracer;
pub use record::{
    decode_stream, decode_stream_lossy, granules_for, DecodeGap, LossyCursor, LossyDecode,
    RecordError, TraceCore, TraceRecord, DEFAULT_WRAP_TOLERANCE, MAX_PARAMS,
};
pub use session::TraceSession;
pub use spe_tracer::PdtSpeTracer;
pub use v2::{
    pack, unpack, Anchoring, BlockEntry, BlockIter, BlockKind, BlockPrefix, CodecStats, SyncAnchor,
    V2Error, V2File, V2StreamMeta, V2Writer, DEFAULT_BLOCK_RECORDS, MAGIC2, VERSION2,
};
