//! Trace-session orchestration.
//!
//! [`TraceSession::install`] wires PDT tracers into a machine before a
//! run; [`TraceSession::collect`] assembles the [`TraceFile`] after the
//! run by reading the flushed SPE streams back out of *simulated main
//! memory* (the bytes got there through real simulated DMA) and
//! grabbing the PPE stream from the host-side buffer.

use cellsim::{Machine, SpeId, DEC_START_VALUE};

use crate::config::{TracingConfig, TracingConfigError};
use crate::format::{TraceFile, TraceHeader, TraceStream, VERSION};
use crate::ppe_tracer::PdtPpeTracer;
use crate::record::TraceCore;
use crate::sink::{new_ppe_handle, new_spe_handle, PpeStreamHandle, SpeStreamHandle};
use crate::spe_tracer::PdtSpeTracer;

/// A live tracing session bound to one machine.
#[derive(Debug)]
pub struct TraceSession {
    cfg: TracingConfig,
    spe_handles: Vec<SpeStreamHandle>,
    ppe_handle: PpeStreamHandle,
    num_spes: usize,
    num_ppe_threads: usize,
    core_hz: u64,
    timebase_divider: u64,
}

impl TraceSession {
    /// Validates `cfg` against the machine and installs tracers on
    /// every SPE and the PPE.
    ///
    /// # Errors
    ///
    /// Returns [`TracingConfigError`] if the configuration is invalid,
    /// the per-SPE trace regions overlap (the region layout wraps the
    /// address space), a region start violates the MFC DMA alignment
    /// rule (flush targets must share the local-store buffer's low 4
    /// address bits, i.e. be 16-byte aligned), or the regions do not
    /// fit in the machine's main memory.
    pub fn install(cfg: TracingConfig, machine: &mut Machine) -> Result<Self, TracingConfigError> {
        // Every flush DMA targets region_base + i * region_per_spe +
        // offset from a 16-byte-aligned LS half-buffer; the MFC
        // requires EA and LSA to agree in their low 4 bits, so both
        // the base and the stride must be 16-byte aligned.
        if !cfg.region_base.is_multiple_of(16) {
            return Err(TracingConfigError::new(format!(
                "region_base {:#x} violates the MFC DMA alignment rule (16-byte)",
                cfg.region_base
            )));
        }
        if !cfg.region_per_spe.is_multiple_of(16) {
            return Err(TracingConfigError::new(format!(
                "region_per_spe {:#x} violates the MFC DMA alignment rule (16-byte)",
                cfg.region_per_spe
            )));
        }
        cfg.validate()?;
        let mcfg = machine.config();
        let num_spes = mcfg.num_spes;
        // Checked layout arithmetic: if base + per_spe * num_spes wraps
        // the u64 address space, later regions alias earlier ones.
        let end = cfg
            .region_per_spe
            .checked_mul(num_spes as u64)
            .and_then(|total| cfg.region_base.checked_add(total))
            .ok_or_else(|| {
                TracingConfigError::new(format!(
                    "per-SPE trace regions overlap: {:#x} + {} * {:#x} wraps the address space",
                    cfg.region_base, num_spes, cfg.region_per_spe
                ))
            })?;
        if end > mcfg.mem_size {
            return Err(TracingConfigError::new(format!(
                "trace regions [{:#x}, {:#x}) exceed main memory of {:#x} bytes",
                cfg.region_base, end, mcfg.mem_size
            )));
        }
        let num_ppe_threads = mcfg.num_ppe_threads;
        let core_hz = mcfg.clock.core_hz;
        let timebase_divider = mcfg.clock.timebase_divider;

        let mut spe_handles = Vec::with_capacity(num_spes);
        for i in 0..num_spes {
            let handle = new_spe_handle();
            machine.set_spe_tracer(
                SpeId::new(i),
                Box::new(PdtSpeTracer::new(cfg, handle.clone())),
            );
            spe_handles.push(handle);
        }
        let ppe_handle = new_ppe_handle();
        machine.set_ppe_tracer(Box::new(PdtPpeTracer::new(cfg, ppe_handle.clone())));

        Ok(TraceSession {
            cfg,
            spe_handles,
            ppe_handle,
            num_spes,
            num_ppe_threads,
            core_hz,
            timebase_divider,
        })
    }

    /// The session's configuration.
    pub fn config(&self) -> &TracingConfig {
        &self.cfg
    }

    /// Assembles the trace file after `machine.run()` finished.
    pub fn collect(&self, machine: &Machine) -> TraceFile {
        let mut streams = Vec::with_capacity(1 + self.num_spes);
        {
            let ppe = self.ppe_handle.lock();
            streams.push(TraceStream {
                core: TraceCore::Ppe(0),
                bytes: ppe.bytes.clone(),
                dropped: 0,
            });
        }
        for (i, handle) in self.spe_handles.iter().enumerate() {
            let shared = handle.lock();
            let used = shared.region_used;
            let base = self.cfg.region_base + i as u64 * self.cfg.region_per_spe;
            let mut bytes = vec![0u8; used as usize];
            machine
                .mem()
                .read(base, &mut bytes)
                .expect("trace region within validated memory bounds");
            streams.push(TraceStream {
                core: TraceCore::Spe(i as u8),
                bytes,
                dropped: shared.stats.dropped,
            });
        }
        let ctx_names = self.ppe_handle.lock().ctx_names.clone();
        TraceFile {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: self.num_ppe_threads as u8,
                num_spes: self.num_spes as u8,
                core_hz: self.core_hz,
                timebase_divider: self.timebase_divider,
                dec_start: DEC_START_VALUE,
                group_mask: self.cfg.groups.bits(),
                spe_buffer_bytes: self.cfg.spe_buffer_bytes,
            },
            streams,
            ctx_names,
        }
    }

    /// Per-SPE record/drop counters (for overhead reports).
    pub fn spe_stats(&self) -> Vec<crate::buffer::BufferStats> {
        self.spe_handles.iter().map(|h| h.lock().stats).collect()
    }

    /// PPE records written.
    pub fn ppe_records(&self) -> u64 {
        self.ppe_handle.lock().records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::{
        LsAddr, MachineConfig, PpeThreadId, SpeJob, SpmdDriver, SpuAction, SpuScript, TagId,
        TagWaitMode,
    };

    fn traced_machine() -> (Machine, TraceSession) {
        let mut m = Machine::new(MachineConfig::default().with_num_spes(2)).unwrap();
        let session = TraceSession::install(TracingConfig::default(), &mut m).unwrap();
        let tag = TagId::new(0).unwrap();
        let jobs = (0..2)
            .map(|i| {
                SpeJob::new(
                    format!("k{i}"),
                    Box::new(SpuScript::new(vec![
                        SpuAction::DmaGet {
                            lsa: LsAddr::new(0x8000),
                            ea: 0x10000,
                            size: 4096,
                            tag,
                        },
                        SpuAction::WaitTags {
                            mask: tag.mask_bit(),
                            mode: TagWaitMode::All,
                        },
                        SpuAction::Compute(5_000),
                        SpuAction::UserEvent {
                            id: 7,
                            a0: 1,
                            a1: 2,
                        },
                    ])),
                )
            })
            .collect();
        m.set_ppe_program(PpeThreadId::new(0), Box::new(SpmdDriver::new(jobs)));
        (m, session)
    }

    #[test]
    fn end_to_end_trace_collection() {
        let (mut m, session) = traced_machine();
        m.run().unwrap();
        let trace = session.collect(&m);
        assert_eq!(trace.header.num_spes, 2);
        assert_eq!(trace.streams.len(), 3);
        // The PPE stream must contain lifecycle records with names.
        assert_eq!(trace.ctx_name(0), Some("k0"));
        assert_eq!(trace.ctx_name(1), Some("k1"));
        // Each SPE stream decodes and contains the expected sequence.
        for spe in 0..2u8 {
            let s = trace.stream(TraceCore::Spe(spe)).unwrap();
            let recs = s.records().unwrap();
            assert!(!recs.is_empty(), "SPE{spe} stream empty");
            use crate::event::EventCode::*;
            let codes: Vec<_> = recs.iter().map(|r| r.code).collect();
            assert_eq!(
                codes,
                vec![
                    SpeCtxStart,
                    SpeDmaGet,
                    SpeTagWaitBegin,
                    SpeTagWaitEnd,
                    SpeUser,
                    SpeStop
                ]
            );
            // Decrementer timestamps must be non-increasing (it counts
            // down).
            for w in recs.windows(2) {
                assert!(
                    w[1].timestamp <= w[0].timestamp,
                    "decrementer increased within a stream"
                );
            }
            assert_eq!(s.dropped, 0);
        }
        // Round-trip the whole file.
        let parsed = TraceFile::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn session_rejects_regions_beyond_memory() {
        let mut m = Machine::new(
            MachineConfig::default()
                .with_num_spes(2)
                .with_mem_size(1 << 20),
        )
        .unwrap();
        let err = TraceSession::install(TracingConfig::default(), &mut m).unwrap_err();
        assert!(err.to_string().contains("exceed main memory"));
    }

    #[test]
    fn session_rejects_overlapping_region_layout() {
        // base + per_spe * num_spes wraps u64, so SPE1's region would
        // alias low memory (and SPE0's region).
        let mut m = Machine::new(MachineConfig::default().with_num_spes(2)).unwrap();
        let cfg = TracingConfig {
            region_base: 0x1000,
            region_per_spe: (u64::MAX / 2 + 1) & !0xf,
            ..TracingConfig::default()
        };
        let err = TraceSession::install(cfg, &mut m).unwrap_err();
        assert!(err.to_string().contains("overlap"), "got: {err}");
    }

    #[test]
    fn session_rejects_dma_misaligned_regions() {
        let mut m = Machine::new(MachineConfig::default().with_num_spes(2)).unwrap();
        // Base breaks the low-4-bit congruence with the 16-byte-aligned
        // LS half-buffers.
        let cfg = TracingConfig {
            region_base: 0x0800_0008,
            ..TracingConfig::default()
        };
        let err = TraceSession::install(cfg, &mut m).unwrap_err();
        assert!(err.to_string().contains("alignment"), "got: {err}");
        // A misaligned stride breaks it for every SPE past the first.
        let cfg = TracingConfig {
            region_per_spe: 4 * 1024 * 1024 + 8,
            ..TracingConfig::default()
        };
        let err = TraceSession::install(cfg, &mut m).unwrap_err();
        assert!(err.to_string().contains("alignment"), "got: {err}");
    }

    #[test]
    fn stats_expose_record_counts() {
        let (mut m, session) = traced_machine();
        m.run().unwrap();
        let stats = session.spe_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.records == 6));
        assert!(session.ppe_records() > 0);
    }
}
