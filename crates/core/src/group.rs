//! Event groups and the group-enable mask.
//!
//! The PDT lets users enable tracing per *event group* (DMA, mailbox,
//! synchronization, user events, lifecycle) on each side of the
//! machine, trading trace completeness against overhead. [`GroupMask`]
//! is the runtime filter the tracers consult on every hook invocation.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// A PDT event group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum EventGroup {
    /// SPE context start/stop.
    SpeLifecycle = 1 << 0,
    /// SPE DMA issue and tag waits.
    SpeDma = 1 << 1,
    /// SPE mailbox traffic.
    SpeMbox = 1 << 2,
    /// SPE signal-register reads.
    SpeSignal = 1 << 3,
    /// SPE user-defined events.
    SpeUser = 1 << 4,
    /// PPE context create/run/stop.
    PpeLifecycle = 1 << 8,
    /// PPE mailbox traffic.
    PpeMbox = 1 << 9,
    /// PPE signal writes.
    PpeSignal = 1 << 10,
    /// PPE proxy DMA.
    PpeDma = 1 << 11,
    /// PPE user-defined events.
    PpeUser = 1 << 12,
}

impl EventGroup {
    /// All groups, in a stable order.
    pub const ALL: [EventGroup; 10] = [
        EventGroup::SpeLifecycle,
        EventGroup::SpeDma,
        EventGroup::SpeMbox,
        EventGroup::SpeSignal,
        EventGroup::SpeUser,
        EventGroup::PpeLifecycle,
        EventGroup::PpeMbox,
        EventGroup::PpeSignal,
        EventGroup::PpeDma,
        EventGroup::PpeUser,
    ];

    /// The group's bit.
    #[inline]
    pub fn bit(self) -> u32 {
        self as u32
    }

    /// Short stable name (used in reports and config files).
    pub fn name(self) -> &'static str {
        match self {
            EventGroup::SpeLifecycle => "spe-lifecycle",
            EventGroup::SpeDma => "spe-dma",
            EventGroup::SpeMbox => "spe-mbox",
            EventGroup::SpeSignal => "spe-signal",
            EventGroup::SpeUser => "spe-user",
            EventGroup::PpeLifecycle => "ppe-lifecycle",
            EventGroup::PpeMbox => "ppe-mbox",
            EventGroup::PpeSignal => "ppe-signal",
            EventGroup::PpeDma => "ppe-dma",
            EventGroup::PpeUser => "ppe-user",
        }
    }
}

impl fmt::Display for EventGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of enabled event groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GroupMask(u32);

impl GroupMask {
    /// No groups enabled (tracing effectively off).
    pub const NONE: GroupMask = GroupMask(0);

    /// Creates a mask from raw bits (unknown bits are kept, harmless).
    pub const fn from_bits(bits: u32) -> Self {
        GroupMask(bits)
    }

    /// Every group enabled.
    pub fn all() -> Self {
        EventGroup::ALL.iter().fold(GroupMask::NONE, |m, g| m | *g)
    }

    /// All DMA-related groups (the most common PDT configuration in
    /// the paper's use cases).
    pub fn dma_only() -> Self {
        GroupMask::NONE
            | EventGroup::SpeDma
            | EventGroup::PpeDma
            | EventGroup::SpeLifecycle
            | EventGroup::PpeLifecycle
    }

    /// Mailbox groups plus lifecycle.
    pub fn mbox_only() -> Self {
        GroupMask::NONE
            | EventGroup::SpeMbox
            | EventGroup::PpeMbox
            | EventGroup::SpeLifecycle
            | EventGroup::PpeLifecycle
    }

    /// User events plus lifecycle.
    pub fn user_only() -> Self {
        GroupMask::NONE
            | EventGroup::SpeUser
            | EventGroup::PpeUser
            | EventGroup::SpeLifecycle
            | EventGroup::PpeLifecycle
    }

    /// Raw bits (stored in the trace-file header).
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Whether `group` is enabled.
    #[inline]
    pub fn contains(self, group: EventGroup) -> bool {
        self.0 & group.bit() != 0
    }

    /// True when nothing is enabled.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The enabled groups, in stable order.
    pub fn groups(self) -> Vec<EventGroup> {
        EventGroup::ALL
            .into_iter()
            .filter(|g| self.contains(*g))
            .collect()
    }
}

impl BitOr<EventGroup> for GroupMask {
    type Output = GroupMask;
    fn bitor(self, rhs: EventGroup) -> GroupMask {
        GroupMask(self.0 | rhs.bit())
    }
}

impl BitOr for GroupMask {
    type Output = GroupMask;
    fn bitor(self, rhs: GroupMask) -> GroupMask {
        GroupMask(self.0 | rhs.0)
    }
}

impl BitOrAssign<EventGroup> for GroupMask {
    fn bitor_assign(&mut self, rhs: EventGroup) {
        self.0 |= rhs.bit();
    }
}

impl fmt::Display for GroupMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let names: Vec<&str> = self.groups().iter().map(|g| g.name()).collect();
        f.write_str(&names.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_group() {
        let m = GroupMask::all();
        for g in EventGroup::ALL {
            assert!(m.contains(g), "{g} missing from all()");
        }
        assert_eq!(m.groups().len(), 10);
    }

    #[test]
    fn none_is_empty() {
        assert!(GroupMask::NONE.is_empty());
        assert!(GroupMask::NONE.groups().is_empty());
        assert_eq!(GroupMask::NONE.to_string(), "none");
    }

    #[test]
    fn dma_only_excludes_mailboxes() {
        let m = GroupMask::dma_only();
        assert!(m.contains(EventGroup::SpeDma));
        assert!(m.contains(EventGroup::SpeLifecycle));
        assert!(!m.contains(EventGroup::SpeMbox));
        assert!(!m.contains(EventGroup::SpeUser));
    }

    #[test]
    fn bits_roundtrip() {
        let m = GroupMask::mbox_only();
        let m2 = GroupMask::from_bits(m.bits());
        assert_eq!(m, m2);
    }

    #[test]
    fn display_lists_names() {
        let m = GroupMask::NONE | EventGroup::SpeDma | EventGroup::SpeUser;
        assert_eq!(m.to_string(), "spe-dma+spe-user");
    }

    #[test]
    fn or_assign_adds_groups() {
        let mut m = GroupMask::NONE;
        m |= EventGroup::PpeUser;
        assert!(m.contains(EventGroup::PpeUser));
    }
}
