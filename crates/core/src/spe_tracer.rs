//! The SPE-side tracer: the PDT component that lives inside each SPU's
//! instrumented runtime.
//!
//! [`PdtSpeTracer`] implements [`cellsim::SpeTracer`]. On every hook it
//! encodes the event into the local-store trace buffer, charges the
//! configured instrumentation cycles, and — when a buffer half fills —
//! asks the machine to flush it with a real DMA. All of its costs flow
//! into simulated time, so the overhead experiments measure mechanism,
//! not assumption.

use cellsim::{FlushRequest, LocalStore, RuntimeEvent, SpeId, SpeTracer, TagId, TraceCost};

use crate::buffer::SpeTraceBuffer;
use crate::config::TracingConfig;
use crate::event::encode_event;
use crate::record::{TraceCore, TraceRecord};
use crate::sink::SpeStreamHandle;

/// SPE-side PDT tracer, one per SPE.
#[derive(Debug)]
pub struct PdtSpeTracer {
    cfg: TracingConfig,
    buffer: Option<SpeTraceBuffer>,
    shared: SpeStreamHandle,
    scratch: Vec<u8>,
    enabled: bool,
}

impl PdtSpeTracer {
    /// Creates a tracer publishing its counters through `shared`.
    pub fn new(cfg: TracingConfig, shared: SpeStreamHandle) -> Self {
        PdtSpeTracer {
            cfg,
            buffer: None,
            shared,
            scratch: Vec::with_capacity(128),
            enabled: true,
        }
    }

    /// Handles the runtime enable/disable control markers
    /// (see [`crate::markers`]). Returns whether `ev` is a control
    /// event; control events are always recorded.
    fn apply_control(&mut self, ev: &RuntimeEvent) -> bool {
        if let RuntimeEvent::SpeUser { id, .. } = ev {
            if *id == crate::markers::TRACE_DISABLE_ID {
                self.enabled = false;
                return true;
            }
            if *id == crate::markers::TRACE_ENABLE_ID {
                self.enabled = true;
                return true;
            }
        }
        false
    }

    fn publish(&self) {
        if let Some(buf) = &self.buffer {
            let mut s = self.shared.lock();
            s.stats = buf.stats;
            s.region_used = buf.region_used();
        }
    }
}

impl SpeTracer for PdtSpeTracer {
    fn attach(&mut self, spe: SpeId, ls: &mut LocalStore) {
        let ea_base = self.cfg.region_base + spe.index() as u64 * self.cfg.region_per_spe;
        self.buffer = Some(SpeTraceBuffer::new(
            ls,
            self.cfg.spe_buffer_bytes,
            ea_base,
            self.cfg.region_per_spe,
            TagId::new(self.cfg.flush_tag).expect("validated flush tag"),
        ));
    }

    fn on_event(
        &mut self,
        spe: SpeId,
        dec: u32,
        ev: &RuntimeEvent,
        ls: &mut LocalStore,
    ) -> TraceCost {
        let is_control = self.apply_control(ev);
        let enc = encode_event(ev);
        if (!self.enabled && !is_control) || !self.cfg.groups.contains(enc.code.group()) {
            return TraceCost {
                cycles: self.cfg.overhead.disabled_check_cycles,
                flush: None,
            };
        }
        let buffer = self
            .buffer
            .as_mut()
            .expect("on_event before attach: machine contract violation");
        let record = TraceRecord {
            core: TraceCore::Spe(spe.index() as u8),
            code: enc.code,
            timestamp: dec as u64,
            params: enc.params,
        };
        self.scratch.clear();
        record.encode_into(&mut self.scratch);
        let nparams = record.params.len();
        let outcome = buffer.write_record(&self.scratch, ls);
        self.publish();
        TraceCost {
            cycles: self.cfg.overhead.spe_cost(nparams, outcome.flush.is_some()),
            flush: outcome.flush,
        }
    }

    fn on_flush_complete(&mut self, _spe: SpeId, _ls: &mut LocalStore) -> Option<FlushRequest> {
        if let Some(buf) = self.buffer.as_mut() {
            buf.flush_completed();
        }
        None
    }

    fn finalize(&mut self, _spe: SpeId, _ls: &mut LocalStore) -> Option<FlushRequest> {
        let req = self.buffer.as_mut().and_then(|b| b.finalize());
        self.publish();
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupMask;
    use crate::overhead::OverheadModel;
    use crate::record::decode_stream;
    use crate::sink::new_spe_handle;
    use cellsim::DmaKind;

    fn dma_event() -> RuntimeEvent {
        RuntimeEvent::SpeDmaIssue {
            kind: DmaKind::Get,
            lsa: 0,
            ea: 0x1000,
            size: 128,
            tag: 0,
            list_len: 0,
        }
    }

    #[test]
    fn enabled_event_costs_and_records() {
        let shared = new_spe_handle();
        let mut tr = PdtSpeTracer::new(TracingConfig::default(), shared.clone());
        let mut ls = LocalStore::new(256 * 1024);
        tr.attach(SpeId::new(0), &mut ls);
        let cost = tr.on_event(SpeId::new(0), 12345, &dma_event(), &mut ls);
        assert!(cost.cycles >= OverheadModel::default().spe_event_cycles);
        assert!(cost.flush.is_none());
        assert_eq!(shared.lock().stats.records, 1);
    }

    #[test]
    fn disabled_group_costs_only_the_check() {
        let shared = new_spe_handle();
        let cfg = TracingConfig::default().with_groups(GroupMask::user_only());
        let mut tr = PdtSpeTracer::new(cfg, shared.clone());
        let mut ls = LocalStore::new(256 * 1024);
        tr.attach(SpeId::new(0), &mut ls);
        let cost = tr.on_event(SpeId::new(0), 1, &dma_event(), &mut ls);
        assert_eq!(cost.cycles, cfg.overhead.disabled_check_cycles);
        assert_eq!(shared.lock().stats.records, 0);
    }

    #[test]
    fn buffer_fill_requests_flush_with_valid_dma() {
        let shared = new_spe_handle();
        let cfg = TracingConfig::default().with_buffer_bytes(256);
        let mut tr = PdtSpeTracer::new(cfg, shared.clone());
        let mut ls = LocalStore::new(256 * 1024);
        tr.attach(SpeId::new(2), &mut ls);
        let mut flush = None;
        for i in 0..10 {
            let cost = tr.on_event(SpeId::new(2), 1000 - i, &dma_event(), &mut ls);
            if cost.flush.is_some() {
                flush = cost.flush;
                break;
            }
        }
        let f = flush.expect("a flush must trigger");
        assert_eq!(f.len % 16, 0);
        assert_eq!(f.tag.get(), 31);
        assert_eq!(
            f.ea,
            cfg.region_base + 2 * cfg.region_per_spe,
            "flush targets SPE2's region"
        );
    }

    #[test]
    fn recorded_bytes_decode_back_to_the_event() {
        let shared = new_spe_handle();
        let mut tr = PdtSpeTracer::new(TracingConfig::default(), shared);
        let mut ls = LocalStore::new(256 * 1024);
        tr.attach(SpeId::new(1), &mut ls);
        tr.on_event(SpeId::new(1), 777, &dma_event(), &mut ls);
        let f = tr.finalize(SpeId::new(1), &mut ls).expect("final flush");
        // Read the record straight out of the LS buffer region.
        let bytes = ls.bytes(f.lsa, f.len).unwrap().to_vec();
        let recs = decode_stream(&bytes).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].core, TraceCore::Spe(1));
        assert_eq!(recs[0].timestamp, 777);
        assert_eq!(recs[0].code, crate::event::EventCode::SpeDmaGet);
        assert_eq!(recs[0].params[0], 0x1000);
    }

    #[test]
    fn finalize_without_events_is_none() {
        let shared = new_spe_handle();
        let mut tr = PdtSpeTracer::new(TracingConfig::default(), shared);
        let mut ls = LocalStore::new(256 * 1024);
        tr.attach(SpeId::new(0), &mut ls);
        assert!(tr.finalize(SpeId::new(0), &mut ls).is_none());
    }
}

#[cfg(test)]
mod control_tests {
    use super::*;
    use crate::markers::{TRACE_DISABLE_ID, TRACE_ENABLE_ID};
    use crate::record::decode_stream;
    use crate::sink::new_spe_handle;
    use cellsim::{DmaKind, LocalStore, SpeId};

    fn user(id: u32) -> RuntimeEvent {
        RuntimeEvent::SpeUser { id, a0: 0, a1: 0 }
    }

    fn dma() -> RuntimeEvent {
        RuntimeEvent::SpeDmaIssue {
            kind: DmaKind::Get,
            lsa: 0,
            ea: 0x1000,
            size: 128,
            tag: 0,
            list_len: 0,
        }
    }

    #[test]
    fn runtime_disable_suppresses_events_but_records_controls() {
        let shared = new_spe_handle();
        let cfg = TracingConfig::default();
        let mut tr = PdtSpeTracer::new(cfg, shared.clone());
        let mut ls = LocalStore::new(256 * 1024);
        tr.attach(SpeId::new(0), &mut ls);

        tr.on_event(SpeId::new(0), 100, &dma(), &mut ls);
        // Disable: subsequent events cost only the check.
        tr.on_event(SpeId::new(0), 99, &user(TRACE_DISABLE_ID), &mut ls);
        let c = tr.on_event(SpeId::new(0), 98, &dma(), &mut ls);
        assert_eq!(c.cycles, cfg.overhead.disabled_check_cycles);
        tr.on_event(SpeId::new(0), 97, &user(42), &mut ls);
        // Re-enable: events record again.
        tr.on_event(SpeId::new(0), 96, &user(TRACE_ENABLE_ID), &mut ls);
        tr.on_event(SpeId::new(0), 95, &dma(), &mut ls);

        let f = tr.finalize(SpeId::new(0), &mut ls).expect("flush");
        let bytes = ls.bytes(f.lsa, f.len).unwrap().to_vec();
        let recs = decode_stream(&bytes).unwrap();
        // Recorded: dma, disable-marker, enable-marker, dma.
        let ids: Vec<(crate::event::EventCode, u64)> = recs
            .iter()
            .map(|r| (r.code, r.params.first().copied().unwrap_or(0)))
            .collect();
        assert_eq!(recs.len(), 4, "records: {ids:?}");
        assert_eq!(recs[1].params[0], TRACE_DISABLE_ID as u64);
        assert_eq!(recs[2].params[0], TRACE_ENABLE_ID as u64);
        assert_eq!(shared.lock().stats.records, 4);
    }
}
