//! Shared collection state between the installed tracers and the
//! session that installs them.
//!
//! Tracers are moved into the [`cellsim::Machine`] as boxed trait
//! objects; the session keeps `Arc<Mutex<_>>` handles to their
//! counters and (for the PPE) the host-side trace bytes, so it can
//! assemble the trace file after the run.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferStats;

/// Per-SPE stream state the session reads after the run.
#[derive(Debug, Clone, Default)]
pub struct SpeStreamShared {
    /// Buffer counters (records, drops, flushes).
    pub stats: BufferStats,
    /// Bytes of the main-memory region holding valid trace data.
    pub region_used: u64,
}

impl SpeStreamShared {
    /// True when the tracer lost records for this stream — the
    /// instrumentation-side counterpart to decoder gaps, folded into
    /// the analyzer's loss accounting.
    pub fn lost_records(&self) -> bool {
        self.stats.dropped > 0
    }
}

/// PPE-side stream state: trace bytes live host-side (they model a
/// main-memory buffer whose writes cost only the charged cycles).
#[derive(Debug, Clone, Default)]
pub struct PpeStreamShared {
    /// Encoded PPE records (all hardware threads interleaved; each
    /// record carries its thread tag).
    pub bytes: Vec<u8>,
    /// Records written.
    pub records: u64,
    /// Context-name table harvested from `PpeCtxCreate` events.
    pub ctx_names: Vec<(u32, String)>,
}

/// Shared handle to per-SPE stream state.
pub type SpeStreamHandle = Arc<Mutex<SpeStreamShared>>;

/// Shared handle to the PPE stream state.
pub type PpeStreamHandle = Arc<Mutex<PpeStreamShared>>;

/// Creates a fresh SPE stream handle.
pub fn new_spe_handle() -> SpeStreamHandle {
    Arc::new(Mutex::new(SpeStreamShared::default()))
}

/// Creates a fresh PPE stream handle.
pub fn new_ppe_handle() -> PpeStreamHandle {
    Arc::new(Mutex::new(PpeStreamShared::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let h = new_spe_handle();
        let h2 = h.clone();
        h.lock().region_used = 42;
        assert_eq!(h2.lock().region_used, 42);
    }

    #[test]
    fn ppe_handle_accumulates() {
        let h = new_ppe_handle();
        h.lock().bytes.extend_from_slice(&[1, 2, 3]);
        h.lock().ctx_names.push((0, "a".into()));
        assert_eq!(h.lock().bytes.len(), 3);
        assert_eq!(h.lock().ctx_names[0].1, "a");
    }
}
