//! Trace records and their binary encoding.
//!
//! Records are 16-byte granular so that any prefix of a trace buffer is
//! a valid DMA transfer (MFC transfers must be multiples of 16 bytes):
//!
//! ```text
//! byte 0      granule count (record length / 16)
//! byte 1      core tag (0x00..0x0f = PPE thread, 0x10.. = SPE index)
//! bytes 2-3   event code, little-endian u16
//! byte 4      parameter count
//! bytes 5-7   reserved (zero)
//! bytes 8-15  raw timestamp, little-endian u64
//!             (SPE records: decrementer snapshot; PPE records: timebase)
//! then        parameters, 8 bytes each, zero-padded to a 16-byte boundary
//! ```

use bytes::{Buf, BufMut};

use crate::event::EventCode;

/// The core a record was produced on, as encoded in trace bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceCore {
    /// PPE hardware thread.
    Ppe(u8),
    /// SPE index.
    Spe(u8),
}

impl TraceCore {
    /// Encodes to the one-byte core tag.
    pub fn tag(self) -> u8 {
        match self {
            TraceCore::Ppe(t) => t,
            TraceCore::Spe(i) => 0x10 + i,
        }
    }

    /// Decodes a core tag.
    pub fn from_tag(tag: u8) -> TraceCore {
        if tag < 0x10 {
            TraceCore::Ppe(tag)
        } else {
            TraceCore::Spe(tag - 0x10)
        }
    }

    /// True for SPE records.
    pub fn is_spe(self) -> bool {
        matches!(self, TraceCore::Spe(_))
    }
}

impl std::fmt::Display for TraceCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCore::Ppe(t) => write!(f, "PPE.{t}"),
            TraceCore::Spe(i) => write!(f, "SPE{i}"),
        }
    }
}

/// A decoded trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Producing core.
    pub core: TraceCore,
    /// Event code.
    pub code: EventCode,
    /// Raw timestamp: decrementer snapshot (SPE) or timebase (PPE).
    pub timestamp: u64,
    /// Parameter words.
    pub params: Vec<u64>,
}

/// Maximum parameters a record can carry (fits the u8 length fields).
pub const MAX_PARAMS: usize = 16;

/// Errors from record decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes than one granule.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes needed.
        need: usize,
    },
    /// Zero-length granule count (corrupt stream).
    ZeroLength,
    /// Unknown event code.
    UnknownCode {
        /// The raw code.
        raw: u16,
    },
    /// Parameter count inconsistent with the granule count.
    BadParamCount {
        /// Claimed parameter count.
        params: u8,
        /// Claimed granules.
        granules: u8,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated { have, need } => {
                write!(f, "truncated record: have {have} bytes, need {need}")
            }
            RecordError::ZeroLength => f.write_str("record with zero granule count"),
            RecordError::UnknownCode { raw } => write!(f, "unknown event code {raw:#06x}"),
            RecordError::BadParamCount { params, granules } => write!(
                f,
                "parameter count {params} does not fit {granules} granules"
            ),
        }
    }
}

impl std::error::Error for RecordError {}

impl TraceRecord {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        granules_for(self.params.len()) as usize * 16
    }

    /// Appends the binary encoding to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the record has more than [`MAX_PARAMS`] parameters.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(
            self.params.len() <= MAX_PARAMS,
            "record with {} params exceeds MAX_PARAMS",
            self.params.len()
        );
        let granules = granules_for(self.params.len());
        out.put_u8(granules);
        out.put_u8(self.core.tag());
        out.put_u16_le(self.code.raw());
        out.put_u8(self.params.len() as u8);
        out.put_bytes(0, 3);
        out.put_u64_le(self.timestamp);
        for p in &self.params {
            out.put_u64_le(*p);
        }
        if self.params.len() % 2 == 1 {
            out.put_u64_le(0);
        }
    }

    /// Decodes one record from the front of `buf`, returning it and the
    /// bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`RecordError`] on truncation or corruption.
    pub fn decode(mut buf: &[u8]) -> Result<(TraceRecord, usize), RecordError> {
        if buf.len() < 16 {
            return Err(RecordError::Truncated {
                have: buf.len(),
                need: 16,
            });
        }
        let granules = buf.get_u8();
        if granules == 0 {
            return Err(RecordError::ZeroLength);
        }
        let total = granules as usize * 16;
        if buf.len() + 1 < total {
            return Err(RecordError::Truncated {
                have: buf.len() + 1,
                need: total,
            });
        }
        let core = TraceCore::from_tag(buf.get_u8());
        let raw_code = buf.get_u16_le();
        let code =
            EventCode::from_raw(raw_code).ok_or(RecordError::UnknownCode { raw: raw_code })?;
        let nparams = buf.get_u8();
        buf.advance(3);
        let timestamp = buf.get_u64_le();
        if granules_for(nparams as usize) != granules {
            return Err(RecordError::BadParamCount {
                params: nparams,
                granules,
            });
        }
        let mut params = Vec::with_capacity(nparams as usize);
        for _ in 0..nparams {
            params.push(buf.get_u64_le());
        }
        Ok((
            TraceRecord {
                core,
                code,
                timestamp,
                params,
            },
            total,
        ))
    }
}

/// Granule count for a record with `nparams` parameters.
pub fn granules_for(nparams: usize) -> u8 {
    (1 + nparams.div_ceil(2)) as u8
}

/// Decodes every record in a byte stream.
///
/// # Errors
///
/// Returns the first [`RecordError`] with the offset it occurred at.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<TraceRecord>, (usize, RecordError)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let (rec, used) = TraceRecord::decode(&bytes[off..]).map_err(|e| (off, e))?;
        out.push(rec);
        off += used;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(nparams: usize) -> TraceRecord {
        TraceRecord {
            core: TraceCore::Spe(3),
            code: EventCode::SpeDmaGet,
            timestamp: 0xdead_beef_cafe,
            params: (0..nparams as u64).map(|i| i * 7 + 1).collect(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for n in 0..=6 {
            let r = rec(n);
            let mut bytes = Vec::new();
            r.encode_into(&mut bytes);
            assert_eq!(bytes.len(), r.encoded_len());
            assert_eq!(bytes.len() % 16, 0, "records are 16-byte granular");
            let (d, used) = TraceRecord::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(d, r);
        }
    }

    #[test]
    fn stream_of_mixed_records_decodes() {
        let mut bytes = Vec::new();
        let records: Vec<TraceRecord> = (0..5).map(rec).collect();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        let decoded = decode_stream(&bytes).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn truncated_stream_reports_offset() {
        let mut bytes = Vec::new();
        rec(2).encode_into(&mut bytes);
        let full = bytes.len();
        rec(4).encode_into(&mut bytes);
        bytes.truncate(full + 8);
        let (off, err) = decode_stream(&bytes).unwrap_err();
        assert_eq!(off, full);
        assert!(matches!(err, RecordError::Truncated { .. }));
    }

    #[test]
    fn unknown_code_is_rejected() {
        let mut bytes = Vec::new();
        rec(0).encode_into(&mut bytes);
        bytes[2] = 0xff;
        bytes[3] = 0xff;
        let err = TraceRecord::decode(&bytes).unwrap_err();
        assert_eq!(err, RecordError::UnknownCode { raw: 0xffff });
    }

    #[test]
    fn zero_granules_is_corrupt() {
        let mut bytes = vec![0u8; 16];
        assert_eq!(
            TraceRecord::decode(&bytes).unwrap_err(),
            RecordError::ZeroLength
        );
        bytes[0] = 2;
        bytes[4] = 9; // param count inconsistent with 2 granules
        let err = TraceRecord::decode(&bytes).unwrap_err();
        assert!(matches!(
            err,
            RecordError::Truncated { .. } | RecordError::BadParamCount { .. }
        ));
    }

    #[test]
    fn core_tag_roundtrip() {
        for c in [
            TraceCore::Ppe(0),
            TraceCore::Ppe(1),
            TraceCore::Spe(0),
            TraceCore::Spe(15),
        ] {
            assert_eq!(TraceCore::from_tag(c.tag()), c);
        }
        assert!(TraceCore::Spe(2).is_spe());
        assert!(!TraceCore::Ppe(0).is_spe());
        assert_eq!(TraceCore::Spe(4).to_string(), "SPE4");
    }

    #[test]
    fn granule_math() {
        assert_eq!(granules_for(0), 1);
        assert_eq!(granules_for(1), 2);
        assert_eq!(granules_for(2), 2);
        assert_eq!(granules_for(3), 3);
        assert_eq!(granules_for(4), 3);
    }
}
