//! Trace records and their binary encoding.
//!
//! Records are 16-byte granular so that any prefix of a trace buffer is
//! a valid DMA transfer (MFC transfers must be multiples of 16 bytes):
//!
//! ```text
//! byte 0      granule count (record length / 16)
//! byte 1      core tag (0x00..0x0f = PPE thread, 0x10.. = SPE index)
//! bytes 2-3   event code, little-endian u16
//! byte 4      parameter count
//! bytes 5-7   reserved (zero)
//! bytes 8-15  raw timestamp, little-endian u64
//!             (SPE records: decrementer snapshot; PPE records: timebase)
//! then        parameters, 8 bytes each, zero-padded to a 16-byte boundary
//! ```

use bytes::{Buf, BufMut};

use crate::event::EventCode;

/// The core a record was produced on, as encoded in trace bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceCore {
    /// PPE hardware thread.
    Ppe(u8),
    /// SPE index.
    Spe(u8),
}

impl TraceCore {
    /// Encodes to the one-byte core tag.
    pub fn tag(self) -> u8 {
        match self {
            TraceCore::Ppe(t) => t,
            TraceCore::Spe(i) => 0x10 + i,
        }
    }

    /// Decodes a core tag.
    pub fn from_tag(tag: u8) -> TraceCore {
        if tag < 0x10 {
            TraceCore::Ppe(tag)
        } else {
            TraceCore::Spe(tag - 0x10)
        }
    }

    /// True for SPE records.
    pub fn is_spe(self) -> bool {
        matches!(self, TraceCore::Spe(_))
    }
}

impl std::fmt::Display for TraceCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCore::Ppe(t) => write!(f, "PPE.{t}"),
            TraceCore::Spe(i) => write!(f, "SPE{i}"),
        }
    }
}

/// A decoded trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Producing core.
    pub core: TraceCore,
    /// Event code.
    pub code: EventCode,
    /// Raw timestamp: decrementer snapshot (SPE) or timebase (PPE).
    pub timestamp: u64,
    /// Parameter words.
    pub params: Vec<u64>,
}

/// Maximum parameters a record can carry (fits the u8 length fields).
pub const MAX_PARAMS: usize = 16;

/// Errors from record decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes than one granule.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes needed.
        need: usize,
    },
    /// Zero-length granule count (corrupt stream).
    ZeroLength,
    /// Unknown event code.
    UnknownCode {
        /// The raw code.
        raw: u16,
    },
    /// Parameter count inconsistent with the granule count.
    BadParamCount {
        /// Claimed parameter count.
        params: u8,
        /// Claimed granules.
        granules: u8,
    },
    /// Record's core tag does not belong to the stream it was read from.
    CoreMismatch {
        /// Core tag the stream directory claims.
        expect: u8,
        /// Core tag found in the record.
        found: u8,
    },
    /// SPE timestamp wider than the 32-bit decrementer.
    TimestampWide {
        /// The raw timestamp.
        raw: u64,
    },
    /// Decrementer stepped backwards (or jumped) beyond wrap tolerance.
    TimestampJump {
        /// Previous in-stream decrementer snapshot.
        prev: u64,
        /// Offending snapshot.
        found: u64,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated { have, need } => {
                write!(f, "truncated record: have {have} bytes, need {need}")
            }
            RecordError::ZeroLength => f.write_str("record with zero granule count"),
            RecordError::UnknownCode { raw } => write!(f, "unknown event code {raw:#06x}"),
            RecordError::BadParamCount { params, granules } => write!(
                f,
                "parameter count {params} does not fit {granules} granules"
            ),
            RecordError::CoreMismatch { expect, found } => write!(
                f,
                "record core tag {found:#04x} does not match stream core tag {expect:#04x}"
            ),
            RecordError::TimestampWide { raw } => {
                write!(f, "SPE timestamp {raw:#x} exceeds the 32-bit decrementer")
            }
            RecordError::TimestampJump { prev, found } => write!(
                f,
                "decrementer jumped from {prev:#x} to {found:#x} beyond wrap tolerance"
            ),
        }
    }
}

impl std::error::Error for RecordError {}

impl TraceRecord {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        granules_for(self.params.len()) as usize * 16
    }

    /// Appends the binary encoding to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the record has more than [`MAX_PARAMS`] parameters.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(
            self.params.len() <= MAX_PARAMS,
            "record with {} params exceeds MAX_PARAMS",
            self.params.len()
        );
        let granules = granules_for(self.params.len());
        out.put_u8(granules);
        out.put_u8(self.core.tag());
        out.put_u16_le(self.code.raw());
        out.put_u8(self.params.len() as u8);
        out.put_bytes(0, 3);
        out.put_u64_le(self.timestamp);
        for p in &self.params {
            out.put_u64_le(*p);
        }
        if self.params.len() % 2 == 1 {
            out.put_u64_le(0);
        }
    }

    /// Decodes one record from the front of `buf`, returning it and the
    /// bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`RecordError`] on truncation or corruption.
    pub fn decode(mut buf: &[u8]) -> Result<(TraceRecord, usize), RecordError> {
        if buf.len() < 16 {
            return Err(RecordError::Truncated {
                have: buf.len(),
                need: 16,
            });
        }
        let granules = buf.get_u8();
        if granules == 0 {
            return Err(RecordError::ZeroLength);
        }
        let total = granules as usize * 16;
        if buf.len() + 1 < total {
            return Err(RecordError::Truncated {
                have: buf.len() + 1,
                need: total,
            });
        }
        let core = TraceCore::from_tag(buf.get_u8());
        let raw_code = buf.get_u16_le();
        let code =
            EventCode::from_raw(raw_code).ok_or(RecordError::UnknownCode { raw: raw_code })?;
        let nparams = buf.get_u8();
        buf.advance(3);
        let timestamp = buf.get_u64_le();
        if granules_for(nparams as usize) != granules {
            return Err(RecordError::BadParamCount {
                params: nparams,
                granules,
            });
        }
        let mut params = Vec::with_capacity(nparams as usize);
        for _ in 0..nparams {
            params.push(buf.get_u64_le());
        }
        Ok((
            TraceRecord {
                core,
                code,
                timestamp,
                params,
            },
            total,
        ))
    }
}

/// Granule count for a record with `nparams` parameters.
pub fn granules_for(nparams: usize) -> u8 {
    (1 + nparams.div_ceil(2)) as u8
}

/// Decodes every record in a byte stream.
///
/// # Errors
///
/// Returns the first [`RecordError`] with the offset it occurred at.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<TraceRecord>, (usize, RecordError)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let (rec, used) = TraceRecord::decode(&bytes[off..]).map_err(|e| (off, e))?;
        out.push(rec);
        off += used;
    }
    Ok(out)
}

/// Decrementer steps at or above this are treated as corruption rather
/// than normal wrap progress. Half the 32-bit wrap period: any backwards
/// jump (the decrementer counting *up*) lands in the upper half when
/// interpreted as forward progress.
pub const DEFAULT_WRAP_TOLERANCE: u32 = 1 << 31;

/// A contiguous byte range the lossy decoder skipped over after failing
/// to decode a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeGap {
    /// Byte offset of the gap within the stream.
    pub offset: usize,
    /// Gap length in bytes.
    pub len: usize,
    /// Estimated number of records lost in the gap (16-byte-granule
    /// upper bound, at least one).
    pub est_records: u64,
    /// How many records of this stream decoded successfully *before*
    /// the gap opened. Lets an analyzer bracket the gap in time: the
    /// gap falls between the stream's record `records_before - 1` and
    /// record `records_before` (counting surviving records in stream
    /// order).
    pub records_before: u64,
    /// The decode error that opened the gap.
    pub cause: RecordError,
}

/// Output of [`decode_stream_lossy`]: the records that survived plus the
/// gaps skipped around corruption.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LossyDecode {
    /// Successfully decoded records, in stream order.
    pub records: Vec<TraceRecord>,
    /// Byte ranges skipped, in stream order.
    pub gaps: Vec<DecodeGap>,
}

impl LossyDecode {
    /// Total bytes covered by gaps.
    pub fn gap_bytes(&self) -> u64 {
        self.gaps.iter().map(|g| g.len as u64).sum()
    }

    /// Total estimated records lost to gaps.
    pub fn est_lost_records(&self) -> u64 {
        self.gaps.iter().map(|g| g.est_records).sum()
    }

    /// True when the stream decoded without a single gap.
    pub fn is_clean(&self) -> bool {
        self.gaps.is_empty()
    }
}

/// Decodes one record and applies the stream-invariant checks used for
/// resynchronization: the record's core tag must belong to the stream,
/// and SPE timestamps must fit the 32-bit decrementer and step forward
/// (downward counts) within `wrap_tol` of the previous good snapshot.
///
/// Traces produced by an intact tracer always satisfy these invariants,
/// so on clean input the checked decode accepts exactly what
/// [`TraceRecord::decode`] accepts.
fn decode_checked(
    buf: &[u8],
    stream_core: Option<TraceCore>,
    prev_dec: Option<u32>,
    wrap_tol: u32,
) -> Result<(TraceRecord, usize), RecordError> {
    let (rec, used) = TraceRecord::decode(buf)?;
    if let Some(expect) = stream_core {
        let matches = match expect {
            // The PPE stream multiplexes hardware threads.
            TraceCore::Ppe(_) => !rec.core.is_spe(),
            TraceCore::Spe(_) => rec.core == expect,
        };
        if !matches {
            return Err(RecordError::CoreMismatch {
                expect: expect.tag(),
                found: rec.core.tag(),
            });
        }
        if expect.is_spe() {
            if rec.timestamp > u64::from(u32::MAX) {
                return Err(RecordError::TimestampWide { raw: rec.timestamp });
            }
            if let Some(prev) = prev_dec {
                let step = prev.wrapping_sub(rec.timestamp as u32);
                if step >= wrap_tol {
                    return Err(RecordError::TimestampJump {
                        prev: u64::from(prev),
                        found: rec.timestamp,
                    });
                }
            }
        }
    }
    Ok((rec, used))
}

/// Decodes a byte stream, resynchronizing past corruption instead of
/// failing.
///
/// On a malformed record the decoder scans forward in 16-byte steps
/// (the record granule size, so an intact suffix stays aligned) until a
/// record decodes *and* satisfies the stream invariants — core tag
/// matching `stream_core`, SPE decrementer snapshots fitting `u32` and
/// stepping monotonically within [`DEFAULT_WRAP_TOLERANCE`] — then
/// emits a [`DecodeGap`] covering the skipped range and continues.
///
/// On uncorrupted input the output records are exactly those of
/// [`decode_stream`] and `gaps` is empty.
pub fn decode_stream_lossy(bytes: &[u8], stream_core: Option<TraceCore>) -> LossyDecode {
    let wrap_tol = DEFAULT_WRAP_TOLERANCE;
    let mut out = LossyDecode::default();
    let mut off = 0usize;
    // Last good decrementer snapshot on SPE streams; survives gaps (the
    // decrementer keeps counting down through lost records).
    let mut prev_dec: Option<u32> = None;
    let is_spe_stream = stream_core.is_some_and(|c| c.is_spe());
    while off < bytes.len() {
        match decode_checked(&bytes[off..], stream_core, prev_dec, wrap_tol) {
            Ok((rec, used)) => {
                if is_spe_stream {
                    prev_dec = Some(rec.timestamp as u32);
                }
                out.records.push(rec);
                off += used;
            }
            Err(cause) => {
                let gap_start = off;
                // Resynchronize: candidate headers live on the 16-byte
                // grid of the original stream.
                let mut cand = off + 16;
                loop {
                    if cand >= bytes.len() {
                        cand = bytes.len();
                        break;
                    }
                    if decode_checked(&bytes[cand..], stream_core, prev_dec, wrap_tol).is_ok() {
                        break;
                    }
                    cand += 16;
                }
                let len = cand - gap_start;
                out.gaps.push(DecodeGap {
                    offset: gap_start,
                    len,
                    est_records: (len as u64).div_ceil(16).max(1),
                    records_before: out.records.len() as u64,
                    cause,
                });
                off = cand;
            }
        }
    }
    out
}

/// A resync scan that is still in progress when the available bytes run
/// out: the gap has opened but its end is not yet known.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OpenGap {
    /// Absolute stream offset where the gap opened.
    start: usize,
    /// The decode error that opened the gap.
    cause: RecordError,
    /// Records decoded before the gap opened.
    records_before: u64,
    /// Absolute offset of the next resync candidate to test.
    cand: usize,
}

/// Incremental counterpart of [`decode_stream_lossy`]: feed a stream's
/// bytes in arbitrary chunks and get the identical records and gaps.
///
/// The cursor carries every piece of decoder state across chunk
/// boundaries — the partial record at the tail of a chunk, the last
/// good decrementer snapshot, and (crucially) an in-progress resync
/// scan. A gap that spans a chunk boundary therefore stays *open* until
/// its true end is found and is reported exactly once, where a naive
/// per-chunk decode would re-enter it at the next buffer start and
/// double-count it.
///
/// A record (or resync candidate) that fails only because bytes are
/// missing is held back, not treated as corrupt, until [`finish`] marks
/// the stream complete — truncation at a chunk boundary is expected,
/// truncation at end-of-stream is a torn flush. After `finish`, the
/// concatenation of everything [`take_output`] returned equals
/// `decode_stream_lossy` over the whole stream, byte for byte, for
/// every possible chunking.
///
/// The cursor buffers only the undecodable tail (at most one maximal
/// record), so memory stays bounded no matter how the stream is
/// chunked.
///
/// [`finish`]: LossyCursor::finish
/// [`take_output`]: LossyCursor::take_output
#[derive(Debug, Clone)]
pub struct LossyCursor {
    stream_core: Option<TraceCore>,
    wrap_tol: u32,
    /// Undecoded carry bytes; `buf[0]` sits at absolute offset `base`.
    buf: Vec<u8>,
    base: usize,
    prev_dec: Option<u32>,
    records: Vec<TraceRecord>,
    gaps: Vec<DecodeGap>,
    open_gap: Option<OpenGap>,
    finished: bool,
    records_total: u64,
}

impl LossyCursor {
    /// Creates a cursor for a stream claimed to come from `stream_core`
    /// (the same hint [`decode_stream_lossy`] takes), using
    /// [`DEFAULT_WRAP_TOLERANCE`].
    pub fn new(stream_core: Option<TraceCore>) -> LossyCursor {
        LossyCursor {
            stream_core,
            wrap_tol: DEFAULT_WRAP_TOLERANCE,
            buf: Vec::new(),
            base: 0,
            prev_dec: None,
            records: Vec::new(),
            gaps: Vec::new(),
            open_gap: None,
            finished: false,
            records_total: 0,
        }
    }

    /// Appends the next chunk of stream bytes and decodes as far as the
    /// data allows.
    ///
    /// # Panics
    ///
    /// Panics if the cursor was already [`finish`](LossyCursor::finish)ed.
    pub fn push(&mut self, chunk: &[u8]) {
        assert!(!self.finished, "push after finish");
        self.buf.extend_from_slice(chunk);
        self.drain();
    }

    /// Marks the stream complete: a held-back partial record becomes a
    /// torn-tail gap and an in-progress resync scan runs to the end,
    /// exactly as the one-shot decoder would at end of input. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.drain();
        debug_assert!(self.buf.is_empty(), "finish consumes every byte");
        debug_assert!(self.open_gap.is_none(), "finish closes any open gap");
    }

    /// True once [`finish`](LossyCursor::finish) has been called.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Total records decoded so far (including ones already taken).
    pub fn decoded_total(&self) -> u64 {
        self.records_total
    }

    /// Absolute stream offset of the first byte not yet fully decoded.
    pub fn offset(&self) -> usize {
        match &self.open_gap {
            Some(g) => g.start,
            None => self.base,
        }
    }

    /// Takes the records and gaps decoded since the last take, in
    /// stream order. Gap offsets are absolute within the stream.
    pub fn take_output(&mut self) -> LossyDecode {
        LossyDecode {
            records: std::mem::take(&mut self.records),
            gaps: std::mem::take(&mut self.gaps),
        }
    }

    /// What [`finish`](LossyCursor::finish) would emit *beyond* output
    /// already produced, without consuming the cursor: the cursor can
    /// keep accepting chunks afterwards. Used to build exact
    /// point-in-time snapshots of a stream still being appended.
    pub fn finish_preview(&self) -> LossyDecode {
        if self.finished {
            return LossyDecode::default();
        }
        let mut probe = self.clone();
        probe.records = Vec::new();
        probe.gaps = Vec::new();
        probe.finish();
        probe.take_output()
    }

    /// Decodes as much of `buf` as the data (and `finished`) allows,
    /// then discards the consumed prefix so the carry stays bounded.
    fn drain(&mut self) {
        // Relative offset of the scan position within `buf`.
        let mut rel = match &self.open_gap {
            Some(g) => g.cand - self.base,
            None => 0,
        };
        let is_spe_stream = self.stream_core.is_some_and(TraceCore::is_spe);
        'outer: loop {
            if self.open_gap.is_some() {
                // Resync scan: candidate headers live on the 16-byte
                // grid of the original stream.
                loop {
                    if rel >= self.buf.len() {
                        if !self.finished {
                            self.open_gap.as_mut().expect("scan state").cand = self.base + rel;
                            break 'outer;
                        }
                        let g = self.open_gap.take().expect("scan state");
                        rel = self.buf.len();
                        self.close_gap(g, self.base + rel);
                        break 'outer;
                    }
                    match decode_checked(
                        &self.buf[rel..],
                        self.stream_core,
                        self.prev_dec,
                        self.wrap_tol,
                    ) {
                        Ok(_) => {
                            let g = self.open_gap.take().expect("scan state");
                            self.close_gap(g, self.base + rel);
                            break; // resume normal decoding at `rel`
                        }
                        // A candidate that fails only for lack of bytes
                        // may succeed once more arrive: pause *at* it.
                        Err(RecordError::Truncated { .. }) if !self.finished => {
                            self.open_gap.as_mut().expect("scan state").cand = self.base + rel;
                            break 'outer;
                        }
                        Err(_) => rel += 16,
                    }
                }
            }
            // Normal decoding.
            loop {
                if rel >= self.buf.len() {
                    break 'outer;
                }
                match decode_checked(
                    &self.buf[rel..],
                    self.stream_core,
                    self.prev_dec,
                    self.wrap_tol,
                ) {
                    Ok((rec, used)) => {
                        if is_spe_stream {
                            self.prev_dec = Some(rec.timestamp as u32);
                        }
                        self.records.push(rec);
                        self.records_total += 1;
                        rel += used;
                    }
                    // A partial record at the chunk tail: wait for more
                    // bytes. At end-of-stream the same error is a torn
                    // flush and falls through to open a gap.
                    Err(RecordError::Truncated { .. }) if !self.finished => break 'outer,
                    Err(cause) => {
                        self.open_gap = Some(OpenGap {
                            start: self.base + rel,
                            cause,
                            records_before: self.records_total,
                            cand: self.base + rel + 16,
                        });
                        rel += 16;
                        continue 'outer;
                    }
                }
            }
        }
        // Discard everything before the live position: decoded records,
        // and (when a gap is open) its interior — only offsets matter.
        let keep_abs = match &self.open_gap {
            Some(g) => g.cand,
            None => self.base + rel,
        };
        let keep_rel = keep_abs - self.base;
        if keep_rel > 0 {
            self.buf.drain(..keep_rel);
            self.base = keep_abs;
        }
    }

    fn close_gap(&mut self, g: OpenGap, end: usize) {
        let len = end - g.start;
        self.gaps.push(DecodeGap {
            offset: g.start,
            len,
            est_records: (len as u64).div_ceil(16).max(1),
            records_before: g.records_before,
            cause: g.cause,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(nparams: usize) -> TraceRecord {
        TraceRecord {
            core: TraceCore::Spe(3),
            code: EventCode::SpeDmaGet,
            timestamp: 0xdead_beef_cafe,
            params: (0..nparams as u64).map(|i| i * 7 + 1).collect(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for n in 0..=6 {
            let r = rec(n);
            let mut bytes = Vec::new();
            r.encode_into(&mut bytes);
            assert_eq!(bytes.len(), r.encoded_len());
            assert_eq!(bytes.len() % 16, 0, "records are 16-byte granular");
            let (d, used) = TraceRecord::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(d, r);
        }
    }

    #[test]
    fn stream_of_mixed_records_decodes() {
        let mut bytes = Vec::new();
        let records: Vec<TraceRecord> = (0..5).map(rec).collect();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        let decoded = decode_stream(&bytes).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn truncated_stream_reports_offset() {
        let mut bytes = Vec::new();
        rec(2).encode_into(&mut bytes);
        let full = bytes.len();
        rec(4).encode_into(&mut bytes);
        bytes.truncate(full + 8);
        let (off, err) = decode_stream(&bytes).unwrap_err();
        assert_eq!(off, full);
        assert!(matches!(err, RecordError::Truncated { .. }));
    }

    #[test]
    fn unknown_code_is_rejected() {
        let mut bytes = Vec::new();
        rec(0).encode_into(&mut bytes);
        bytes[2] = 0xff;
        bytes[3] = 0xff;
        let err = TraceRecord::decode(&bytes).unwrap_err();
        assert_eq!(err, RecordError::UnknownCode { raw: 0xffff });
    }

    #[test]
    fn zero_granules_is_corrupt() {
        let mut bytes = vec![0u8; 16];
        assert_eq!(
            TraceRecord::decode(&bytes).unwrap_err(),
            RecordError::ZeroLength
        );
        bytes[0] = 2;
        bytes[4] = 9; // param count inconsistent with 2 granules
        let err = TraceRecord::decode(&bytes).unwrap_err();
        assert!(matches!(
            err,
            RecordError::Truncated { .. } | RecordError::BadParamCount { .. }
        ));
    }

    #[test]
    fn core_tag_roundtrip() {
        for c in [
            TraceCore::Ppe(0),
            TraceCore::Ppe(1),
            TraceCore::Spe(0),
            TraceCore::Spe(15),
        ] {
            assert_eq!(TraceCore::from_tag(c.tag()), c);
        }
        assert!(TraceCore::Spe(2).is_spe());
        assert!(!TraceCore::Ppe(0).is_spe());
        assert_eq!(TraceCore::Spe(4).to_string(), "SPE4");
    }

    fn spe_rec(dec: u64, nparams: usize) -> TraceRecord {
        TraceRecord {
            core: TraceCore::Spe(3),
            code: EventCode::SpeDmaGet,
            timestamp: dec,
            params: (0..nparams as u64).collect(),
        }
    }

    fn spe_stream(decs: &[u64]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (i, &d) in decs.iter().enumerate() {
            spe_rec(d, i % 3).encode_into(&mut bytes);
        }
        bytes
    }

    #[test]
    fn lossy_matches_strict_on_clean_stream() {
        let bytes = spe_stream(&[5000, 4800, 4700, 4100, 4099]);
        let strict = decode_stream(&bytes).unwrap();
        let lossy = decode_stream_lossy(&bytes, Some(TraceCore::Spe(3)));
        assert!(lossy.is_clean());
        assert_eq!(lossy.gap_bytes(), 0);
        assert_eq!(lossy.est_lost_records(), 0);
        assert_eq!(lossy.records, strict);
        // Also with no stream-core hint.
        assert_eq!(decode_stream_lossy(&bytes, None).records, strict);
    }

    #[test]
    fn lossy_resyncs_past_header_corruption() {
        let bytes = spe_stream(&[5000, 4800, 4700, 4100, 4099]);
        let mut damaged = bytes.clone();
        // Record 1 starts at 16 (record 0 has 0 params = 1 granule).
        damaged[16] = 0; // zero granule count
        let lossy = decode_stream_lossy(&damaged, Some(TraceCore::Spe(3)));
        assert_eq!(lossy.gaps.len(), 1);
        assert_eq!(lossy.gaps[0].offset, 16);
        assert!(matches!(lossy.gaps[0].cause, RecordError::ZeroLength));
        assert!(lossy.gap_bytes() > 0);
        assert!(lossy.est_lost_records() >= 1);
        // One record survived before the gap, so the gap sits between
        // surviving records 0 and 1.
        assert_eq!(lossy.gaps[0].records_before, 1);
        // Records before and after the gap survive.
        assert_eq!(lossy.records.first().unwrap().timestamp, 5000);
        assert_eq!(lossy.records.last().unwrap().timestamp, 4099);
        assert!(lossy.records.len() < 5);
    }

    #[test]
    fn lossy_reports_torn_tail() {
        let mut bytes = spe_stream(&[5000, 4800]);
        let full = bytes.len();
        bytes.truncate(full - 7); // torn flush: partial final granule
        let lossy = decode_stream_lossy(&bytes, Some(TraceCore::Spe(3)));
        assert_eq!(lossy.records.len(), 1);
        assert_eq!(lossy.gaps.len(), 1);
        assert!(matches!(
            lossy.gaps[0].cause,
            RecordError::Truncated { .. } | RecordError::BadParamCount { .. }
        ));
        assert!(lossy.gaps[0].est_records >= 1);
    }

    #[test]
    fn lossy_rejects_core_mismatch_and_backward_decrementer() {
        // A record from another SPE spliced into SPE3's stream.
        let mut bytes = spe_stream(&[5000, 4800]);
        bytes[16 + 1] = TraceCore::Spe(7).tag();
        let lossy = decode_stream_lossy(&bytes, Some(TraceCore::Spe(3)));
        assert_eq!(lossy.records.len(), 1);
        assert!(matches!(
            lossy.gaps[0].cause,
            RecordError::CoreMismatch { .. }
        ));

        // Decrementer jumping upward (duplicated flush window).
        let bytes = spe_stream(&[5000, 4800, 5000, 4800]);
        let lossy = decode_stream_lossy(&bytes, Some(TraceCore::Spe(3)));
        assert!(lossy
            .gaps
            .iter()
            .any(|g| matches!(g.cause, RecordError::TimestampJump { .. })));

        // Timestamp wider than the 32-bit decrementer.
        let bytes = spe_stream(&[5000, u64::from(u32::MAX) + 10]);
        let lossy = decode_stream_lossy(&bytes, Some(TraceCore::Spe(3)));
        assert!(lossy
            .gaps
            .iter()
            .any(|g| matches!(g.cause, RecordError::TimestampWide { .. })));
    }

    #[test]
    fn lossy_ppe_stream_accepts_any_thread_tag() {
        let mut bytes = Vec::new();
        for t in 0..3u8 {
            TraceRecord {
                core: TraceCore::Ppe(t),
                code: EventCode::PpeUser,
                timestamp: 1000 + u64::from(t),
                params: vec![1, 2],
            }
            .encode_into(&mut bytes);
        }
        let lossy = decode_stream_lossy(&bytes, Some(TraceCore::Ppe(0)));
        assert!(lossy.is_clean());
        assert_eq!(lossy.records.len(), 3);
    }

    #[test]
    fn lossy_terminates_on_pure_garbage() {
        let bytes = vec![0xa5u8; 16 * 9 + 3];
        let lossy = decode_stream_lossy(&bytes, Some(TraceCore::Spe(0)));
        assert!(lossy.records.is_empty());
        assert_eq!(lossy.gap_bytes(), bytes.len() as u64);
        assert!(lossy.est_lost_records() >= 1);
    }

    #[test]
    fn granule_math() {
        assert_eq!(granules_for(0), 1);
        assert_eq!(granules_for(1), 2);
        assert_eq!(granules_for(2), 2);
        assert_eq!(granules_for(3), 3);
        assert_eq!(granules_for(4), 3);
    }

    /// Runs `bytes` through a cursor split at the given points and
    /// returns the concatenated output.
    fn chunked(bytes: &[u8], core: Option<TraceCore>, splits: &[usize]) -> LossyDecode {
        let mut cur = LossyCursor::new(core);
        let mut out = LossyDecode::default();
        let mut prev = 0;
        for &s in splits {
            cur.push(&bytes[prev..s]);
            let d = cur.take_output();
            out.records.extend(d.records);
            out.gaps.extend(d.gaps);
            prev = s;
        }
        cur.push(&bytes[prev..]);
        cur.finish();
        assert!(cur.is_finished());
        let d = cur.take_output();
        out.records.extend(d.records);
        out.gaps.extend(d.gaps);
        assert_eq!(cur.decoded_total(), out.records.len() as u64);
        out
    }

    /// Asserts cursor == one-shot at every single split point and under
    /// 1-byte chunking.
    fn assert_chunking_invariant(bytes: &[u8], core: Option<TraceCore>) {
        let oneshot = decode_stream_lossy(bytes, core);
        for split in 0..=bytes.len() {
            assert_eq!(
                chunked(bytes, core, &[split]),
                oneshot,
                "split at {split} of {}",
                bytes.len()
            );
        }
        let every_byte: Vec<usize> = (1..bytes.len()).collect();
        assert_eq!(chunked(bytes, core, &every_byte), oneshot, "1-byte chunks");
    }

    #[test]
    fn cursor_matches_oneshot_on_clean_stream() {
        let bytes = spe_stream(&[5000, 4800, 4700, 4100, 4099]);
        assert_chunking_invariant(&bytes, Some(TraceCore::Spe(3)));
        assert_chunking_invariant(&bytes, None);
    }

    #[test]
    fn cursor_matches_oneshot_on_header_corruption() {
        let mut bytes = spe_stream(&[5000, 4800, 4700, 4100, 4099]);
        bytes[16] = 0; // zero granule count on record 1
        assert_chunking_invariant(&bytes, Some(TraceCore::Spe(3)));
    }

    #[test]
    fn cursor_matches_oneshot_on_torn_tail() {
        let mut bytes = spe_stream(&[5000, 4800, 4700]);
        let full = bytes.len();
        bytes.truncate(full - 7);
        assert_chunking_invariant(&bytes, Some(TraceCore::Spe(3)));
    }

    #[test]
    fn cursor_matches_oneshot_on_invariant_violations() {
        // Core mismatch, decrementer jump, wide timestamp, garbage run.
        let mut spliced = spe_stream(&[5000, 4800, 4600]);
        spliced[16 + 1] = TraceCore::Spe(7).tag();
        assert_chunking_invariant(&spliced, Some(TraceCore::Spe(3)));

        let dup = spe_stream(&[5000, 4800, 5000, 4800]);
        assert_chunking_invariant(&dup, Some(TraceCore::Spe(3)));

        let wide = spe_stream(&[5000, u64::from(u32::MAX) + 10, 4800]);
        assert_chunking_invariant(&wide, Some(TraceCore::Spe(3)));

        let garbage = vec![0xa5u8; 16 * 9 + 3];
        assert_chunking_invariant(&garbage, Some(TraceCore::Spe(0)));

        let mut mixed = spe_stream(&[5000, 4800, 4700, 4600, 4500]);
        for b in &mut mixed[40..56] {
            *b ^= 0x5a;
        }
        assert_chunking_invariant(&mixed, Some(TraceCore::Spe(3)));
    }

    #[test]
    fn gap_spanning_chunk_boundary_is_counted_once() {
        let bytes = spe_stream(&[5000, 4800, 4700, 4100, 4099]);
        let mut damaged = bytes.clone();
        // Corrupt records 1 and 2 into one contiguous gap.
        damaged[16] = 0;
        damaged[32] = 0;
        let oneshot = decode_stream_lossy(&damaged, Some(TraceCore::Spe(3)));
        assert_eq!(oneshot.gaps.len(), 1, "one contiguous gap");
        // Split right in the middle of the gap: a per-chunk decoder
        // would report the gap once per chunk; the cursor must not.
        let split = 24;
        let got = chunked(&damaged, Some(TraceCore::Spe(3)), &[split]);
        assert_eq!(got.gaps.len(), 1, "gap re-entered at a chunk boundary");
        assert_eq!(got, oneshot);
    }

    #[test]
    fn cursor_finish_preview_is_nondestructive() {
        let mut bytes = spe_stream(&[5000, 4800, 4700]);
        let tail = bytes.split_off(20); // mid-record split
        let mut cur = LossyCursor::new(Some(TraceCore::Spe(3)));
        cur.push(&bytes);
        let early = cur.take_output();
        assert_eq!(early.records.len(), 1, "only the complete record");

        // Previewing a finish reports the held-back partial record as a
        // torn tail without disturbing the cursor.
        let preview = cur.finish_preview();
        assert_eq!(preview.records.len(), 0);
        assert_eq!(preview.gaps.len(), 1);
        assert!(matches!(
            preview.gaps[0].cause,
            RecordError::Truncated { .. }
        ));
        assert!(!cur.is_finished());

        // The real stream continues and the preview left no residue.
        cur.push(&tail);
        cur.finish();
        let rest = cur.take_output();
        assert_eq!(rest.records.len(), 2);
        assert!(rest.gaps.is_empty());
        assert_eq!(cur.finish_preview(), LossyDecode::default());
    }

    #[test]
    fn cursor_empty_pushes_are_harmless() {
        let bytes = spe_stream(&[5000, 4800]);
        let mut cur = LossyCursor::new(Some(TraceCore::Spe(3)));
        cur.push(&[]);
        cur.push(&bytes);
        cur.push(&[]);
        cur.finish();
        cur.finish(); // idempotent
        assert_eq!(
            cur.take_output(),
            decode_stream_lossy(&bytes, Some(TraceCore::Spe(3)))
        );
    }
}
