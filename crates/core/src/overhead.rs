//! The instrumentation cost model.
//!
//! Recording an event is not free: the SPU must read its decrementer,
//! format a record into the local-store buffer and bump the write
//! pointer; the PPE goes through a library call and a TLS-buffer
//! append. [`OverheadModel`] prices these operations in cycles. The
//! defaults are calibrated to the ~100 ns-class per-event costs the
//! paper reports for PDT on 3.2 GHz hardware; experiments E1/E3 sweep
//! them.
//!
//! Events whose group is *disabled* still pay a small filter-check
//! cost (the instrumented library tests a mask), which is exactly the
//! residual overhead PDT exhibits when tracing is compiled in but
//! switched off.

/// Cycle costs of instrumentation operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadModel {
    /// Base cost of recording one SPE event (decrementer read, header
    /// store, pointer bump).
    pub spe_event_cycles: u64,
    /// Additional cost per parameter word on the SPE.
    pub spe_param_cycles: u64,
    /// Extra cost when an event triggers a buffer-flush handoff
    /// (starting the DMA, swapping halves).
    pub spe_flush_trigger_cycles: u64,
    /// Cost of the group-mask check for a disabled event.
    pub disabled_check_cycles: u64,
    /// Base cost of recording one PPE event.
    pub ppe_event_cycles: u64,
    /// Additional cost per parameter word on the PPE.
    pub ppe_param_cycles: u64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            // ~150 cycles ≈ 47 ns at 3.2 GHz, plus per-param stores.
            spe_event_cycles: 150,
            spe_param_cycles: 12,
            spe_flush_trigger_cycles: 90,
            disabled_check_cycles: 8,
            // The PPE side goes through a shared-library call.
            ppe_event_cycles: 420,
            ppe_param_cycles: 10,
        }
    }
}

impl OverheadModel {
    /// A zero-cost model (used to isolate trace *content* effects from
    /// timing effects in tests).
    pub fn free() -> Self {
        OverheadModel {
            spe_event_cycles: 0,
            spe_param_cycles: 0,
            spe_flush_trigger_cycles: 0,
            disabled_check_cycles: 0,
            ppe_event_cycles: 0,
            ppe_param_cycles: 0,
        }
    }

    /// A model scaled by `factor` (for the E3 overhead sweep).
    pub fn scaled(factor: f64) -> Self {
        let d = OverheadModel::default();
        let s = |v: u64| (v as f64 * factor).round() as u64;
        OverheadModel {
            spe_event_cycles: s(d.spe_event_cycles),
            spe_param_cycles: s(d.spe_param_cycles),
            spe_flush_trigger_cycles: s(d.spe_flush_trigger_cycles),
            disabled_check_cycles: s(d.disabled_check_cycles),
            ppe_event_cycles: s(d.ppe_event_cycles),
            ppe_param_cycles: s(d.ppe_param_cycles),
        }
    }

    /// Cycles to record an enabled SPE event with `nparams` parameters.
    pub fn spe_cost(&self, nparams: usize, triggers_flush: bool) -> u64 {
        self.spe_event_cycles
            + self.spe_param_cycles * nparams as u64
            + if triggers_flush {
                self.spe_flush_trigger_cycles
            } else {
                0
            }
    }

    /// Cycles to record an enabled PPE event with `nparams` parameters.
    pub fn ppe_cost(&self, nparams: usize) -> u64 {
        self.ppe_event_cycles + self.ppe_param_cycles * nparams as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_in_the_100ns_class() {
        let m = OverheadModel::default();
        // 4-param DMA event: 150 + 48 = 198 cycles ≈ 62 ns at 3.2 GHz.
        let c = m.spe_cost(4, false);
        assert!((150..=400).contains(&c), "cost {c}");
        assert!(m.ppe_cost(2) > m.spe_cost(2, false), "PPE events cost more");
    }

    #[test]
    fn flush_trigger_adds_cost() {
        let m = OverheadModel::default();
        assert_eq!(
            m.spe_cost(2, true) - m.spe_cost(2, false),
            m.spe_flush_trigger_cycles
        );
    }

    #[test]
    fn free_model_is_zero_everywhere() {
        let m = OverheadModel::free();
        assert_eq!(m.spe_cost(8, true), 0);
        assert_eq!(m.ppe_cost(8), 0);
        assert_eq!(m.disabled_check_cycles, 0);
    }

    #[test]
    fn scaling_is_linear() {
        let m = OverheadModel::scaled(2.0);
        let d = OverheadModel::default();
        assert_eq!(m.spe_event_cycles, d.spe_event_cycles * 2);
        assert_eq!(m.ppe_event_cycles, d.ppe_event_cycles * 2);
        let z = OverheadModel::scaled(0.0);
        assert_eq!(z.spe_cost(4, true), 0);
    }
}
