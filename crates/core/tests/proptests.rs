//! Property-based tests for the trace record format and the
//! double-buffered trace buffer.

use proptest::prelude::*;

use cellsim::{LocalStore, TagId};
use pdt::{decode_stream, EventCode, SpeTraceBuffer, TraceCore, TraceRecord};

const ALL_CODES: &[EventCode] = &[
    EventCode::SpeCtxStart,
    EventCode::SpeStop,
    EventCode::SpeDmaGet,
    EventCode::SpeDmaPut,
    EventCode::SpeTagWaitBegin,
    EventCode::SpeTagWaitEnd,
    EventCode::SpeMboxReadBegin,
    EventCode::SpeMboxReadEnd,
    EventCode::SpeMboxWrite,
    EventCode::SpeIntrMboxWrite,
    EventCode::SpeSignalReadBegin,
    EventCode::SpeSignalReadEnd,
    EventCode::SpeUser,
    EventCode::PpeCtxCreate,
    EventCode::PpeCtxRun,
    EventCode::PpeCtxStopped,
    EventCode::PpeMboxWrite,
    EventCode::PpeMboxRead,
    EventCode::PpeIntrMboxRead,
    EventCode::PpeSignalWrite,
    EventCode::PpeProxyDma,
    EventCode::PpeUser,
];

fn arb_core() -> impl Strategy<Value = TraceCore> {
    prop_oneof![
        (0u8..2).prop_map(TraceCore::Ppe),
        (0u8..16).prop_map(TraceCore::Spe),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        arb_core(),
        0..ALL_CODES.len(),
        any::<u64>(),
        prop::collection::vec(any::<u64>(), 0..=8),
    )
        .prop_map(|(core, code_i, timestamp, params)| TraceRecord {
            core,
            code: ALL_CODES[code_i],
            timestamp,
            params,
        })
}

proptest! {
    #[test]
    fn record_roundtrips(rec in arb_record()) {
        let mut bytes = Vec::new();
        rec.encode_into(&mut bytes);
        prop_assert_eq!(bytes.len() % 16, 0);
        prop_assert_eq!(bytes.len(), rec.encoded_len());
        let (decoded, used) = TraceRecord::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, rec);
    }

    #[test]
    fn streams_roundtrip(recs in prop::collection::vec(arb_record(), 0..64)) {
        let mut bytes = Vec::new();
        for r in &recs {
            r.encode_into(&mut bytes);
        }
        let decoded = decode_stream(&bytes).unwrap();
        prop_assert_eq!(decoded, recs);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine as long as it does not panic and obeys
        // the "consumed bytes are 16-granular" contract on success.
        if let Ok(recs) = decode_stream(&bytes) {
            let total: usize = recs.iter().map(|r| r.encoded_len()).sum();
            prop_assert_eq!(total, bytes.len());
        }
    }

    #[test]
    fn buffer_accounts_for_every_record(
        sizes in prop::collection::vec(prop_oneof![Just(16u32), Just(32u32), Just(48u32), Just(64u32)], 1..200),
        total in prop_oneof![Just(256u32), Just(512u32), Just(2048u32)],
        complete_every in 1usize..8,
    ) {
        let mut ls = LocalStore::new(256 * 1024);
        let mut buf = SpeTraceBuffer::new(&mut ls, total, 0, 1 << 20, TagId::new(31).unwrap());
        let mut flushed = 0u64;
        let mut writes = 0u64;
        for (i, sz) in sizes.iter().enumerate() {
            let rec = vec![0u8; *sz as usize];
            let out = buf.write_record(&rec, &mut ls);
            if out.written {
                writes += 1;
            }
            if let Some(f) = out.flush {
                prop_assert_eq!(f.len % 16, 0);
                prop_assert!(f.len <= total / 2);
                flushed += f.len as u64;
            }
            if i % complete_every == 0 {
                buf.flush_completed();
            }
        }
        if let Some(f) = buf.finalize() {
            flushed += f.len as u64;
        }
        prop_assert_eq!(buf.stats.records, writes);
        prop_assert_eq!(buf.stats.records + buf.stats.dropped, sizes.len() as u64);
        prop_assert_eq!(buf.stats.flushed_bytes, flushed);
        prop_assert_eq!(buf.region_used(), flushed);
        // Every written-and-flushed byte is accounted: flushed bytes
        // never exceed what was written.
        let written_bytes: u64 = buf.stats.records * 16; // lower bound (min record)
        prop_assert!(flushed >= written_bytes.saturating_sub(total as u64).min(flushed));
    }
}
