//! Standalone HTML report: summary, per-SPE activity, timeline and DMA
//! histogram in one self-contained file — the closest thing to the
//! original Trace Analyzer's GUI this reproduction ships.

use crate::report::RenderOptions;
use crate::session::Analysis;
use crate::svg::render_svg_impl;

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a self-contained HTML report for a session. Front door:
/// [`Analysis::render`](crate::session::Analysis::render) with
/// [`ReportKind::Html`](crate::report::ReportKind::Html).
pub(crate) fn html_report_impl(a: &Analysis, opts: &RenderOptions) -> String {
    let trace = a.analyzed();
    let stats = a.stats();
    let title = opts.title.as_str();
    let svg = match opts.window {
        Some((t0, t1)) => render_svg_impl(&a.timeline_window(t0, t1), &opts.svg),
        None => render_svg_impl(a.timeline(), &opts.svg),
    };

    // Degraded-analysis section: present whenever loss accounting ran.
    let loss = if a.loss().streams.is_empty() {
        String::new()
    } else {
        format!(
            "<h2>Loss accounting</h2>\n<pre>{}</pre>\n",
            escape(&a.loss().render())
        )
    };

    let mut rows = String::new();
    for a in &stats.spes {
        let f = |tb: u64| {
            if a.active_tb == 0 {
                0.0
            } else {
                tb as f64 / a.active_tb as f64 * 100.0
            }
        };
        rows.push_str(&format!(
            "<tr><td>SPE{}</td><td>{:.3}</td><td>{:.1}%</td><td>{:.1}%</td>\
             <td>{:.1}%</td><td>{:.1}%</td><td>{:.1}%</td></tr>\n",
            a.spe,
            trace.tb_to_ns(a.active_tb) / 1e6,
            f(a.compute_tb),
            f(a.dma_wait_tb),
            f(a.mbox_wait_tb),
            f(a.signal_wait_tb),
            a.utilization * 100.0
        ));
    }

    let mut counts = String::new();
    for (code, n) in stats.counts.sorted() {
        counts.push_str(&format!(
            "<tr><td><code>{}</code></td><td>{n}</td></tr>\n",
            code.name()
        ));
    }

    let mut hist = String::new();
    if stats.dma.latency_ticks.count() > 0 {
        let peak = stats
            .dma
            .latency_ticks
            .buckets()
            .iter()
            .map(|(_, _, c)| *c)
            .max()
            .unwrap_or(1);
        for (lo, hi, c) in stats.dma.latency_ticks.buckets() {
            let w = (c as f64 / peak as f64 * 320.0).max(2.0);
            hist.push_str(&format!(
                "<tr><td>{:.2}–{:.2} µs</td>\
                 <td><div class=\"bar\" style=\"width:{w:.0}px\"></div> {c}</td></tr>\n",
                trace.tb_to_ns(lo) / 1000.0,
                trace.tb_to_ns(hi) / 1000.0
            ));
        }
    }

    format!(
        r#"<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>{title}</title>
<style>
body {{ font-family: ui-monospace, monospace; margin: 2em; color: #222; }}
h1 {{ font-size: 1.3em; }} h2 {{ font-size: 1.05em; margin-top: 1.6em; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #ccc; padding: 3px 10px; text-align: right; }}
th {{ background: #f0f0f0; }}
td:first-child {{ text-align: left; }}
.bar {{ display: inline-block; height: 10px; background: #1565c0; vertical-align: middle; }}
.meta {{ color: #555; }}
</style></head><body>
<h1>PDT trace report — {title}</h1>
<p class="meta">{spes} SPE(s), {events} events, {dropped} dropped,
span {span_ms:.3} ms · core {ghz:.2} GHz, timebase {tb_mhz:.2} MHz</p>

<h2>Timeline</h2>
{svg}

<h2>Per-SPE activity</h2>
<table>
<tr><th>spe</th><th>active ms</th><th>compute</th><th>dma-wait</th>
<th>mbox-wait</th><th>sig-wait</th><th>utilization</th></tr>
{rows}</table>
<p class="meta">mean utilization {mean_util:.1}% · imbalance {imb:.2}</p>

<h2>DMA</h2>
<p>{gets} gets, {puts} puts, {kib:.1} KiB; observed latency distribution:</p>
<table>{hist}</table>

<h2>Event counts</h2>
<table><tr><th>event</th><th>count</th></tr>
{counts}</table>

{loss}</body></html>
"#,
        title = escape(title),
        spes = stats.spes.len(),
        events = trace.events.len(),
        dropped = trace.dropped,
        span_ms = trace.tb_to_ns(stats.duration_tb) / 1e6,
        ghz = trace.header.core_hz as f64 / 1e9,
        tb_mhz = (trace.header.core_hz / trace.header.timebase_divider) as f64 / 1e6,
        mean_util = stats.mean_utilization() * 100.0,
        imb = stats.imbalance(),
        gets = stats.dma.gets,
        puts = stats.dma.puts,
        kib = stats.dma.bytes as f64 / 1024.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{AnalyzedTrace, GlobalEvent, SpeAnchor};
    use crate::svg::SvgOptions;
    use pdt::{EventCode, TraceCore, TraceHeader, VERSION};

    fn trace() -> AnalyzedTrace {
        use EventCode::*;
        let mk = |t: u64, core, code, params: Vec<u64>| GlobalEvent {
            time_tb: t,
            core,
            code,
            params,
            stream_seq: t,
        };
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events: vec![
                mk(0, TraceCore::Ppe(0), PpeCtxRun, vec![0, 0, 0]),
                mk(0, TraceCore::Spe(0), SpeCtxStart, vec![0]),
                mk(2, TraceCore::Spe(0), SpeDmaGet, vec![0x1000, 0, 4096, 1]),
                mk(4, TraceCore::Spe(0), SpeTagWaitBegin, vec![2, 0]),
                mk(30, TraceCore::Spe(0), SpeTagWaitEnd, vec![2]),
                mk(100, TraceCore::Spe(0), SpeStop, vec![0]),
            ],
            ctx_names: vec![(0, "h<tml".into())],
            anchors: vec![SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 0,
                dec_start: u32::MAX,
            }],
            dropped: 0,
        }
    }

    fn render(t: &AnalyzedTrace, title: &str) -> String {
        let a = Analysis::from_analyzed(t.clone());
        let opts = RenderOptions::default()
            .with_title(title)
            .with_svg(SvgOptions {
                width: 1100,
                ..SvgOptions::default()
            });
        html_report_impl(&a, &opts)
    }

    #[test]
    fn report_is_complete_html() {
        let html = render(&trace(), "unit <test>");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.trim_end().ends_with("</html>"));
        assert!(html.contains("unit &lt;test&gt;"), "title escaped");
        assert!(html.contains("<svg"), "embedded timeline");
        assert!(html.contains("SPE0"));
        assert!(html.contains("spe-dma-get"));
        assert!(html.contains("1 gets, 0 puts"));
        assert!(html.contains("class=\"bar\""), "histogram bars");
        // The context name from the trace is escaped inside the SVG.
        assert!(!html.contains("h<tml"));
    }

    #[test]
    fn empty_trace_renders() {
        let mut t = trace();
        t.events.clear();
        let html = render(&t, "empty");
        assert!(html.contains("0 events"));
        assert!(html.contains("</html>"));
    }
}
