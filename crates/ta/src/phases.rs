//! User-defined phase intervals.
//!
//! PDT applications bracket logical phases with user events
//! (`pdt_trace_user` begin/end pairs); the analyzer turns them into
//! named intervals so the timeline can show *application* structure on
//! top of the hardware activity. The marker convention lives in
//! [`pdt::markers`]: a user event whose first payload word is
//! [`pdt::markers::PHASE_BEGIN`] opens phase `id` on its core, and
//! [`pdt::markers::PHASE_END`] closes it.

use std::collections::HashMap;

use pdt::markers::{PHASE_BEGIN, PHASE_END};
use pdt::{EventCode, TraceCore};

use crate::analyze::AnalyzedTrace;
use crate::columns::ColumnarTrace;

/// One reconstructed user phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserPhase {
    /// Core the phase ran on.
    pub core: TraceCore,
    /// User phase id.
    pub id: u32,
    /// Begin timestamp (ticks).
    pub start_tb: u64,
    /// End timestamp (ticks).
    pub end_tb: u64,
}

impl UserPhase {
    /// Phase length in ticks.
    pub fn ticks(&self) -> u64 {
        self.end_tb - self.start_tb
    }
}

/// Result of phase reconstruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseReport {
    /// Completed phases, in begin order.
    pub phases: Vec<UserPhase>,
    /// Begin markers never closed (count per `(core, id)`).
    pub unmatched_begins: u64,
    /// End markers with no open begin.
    pub unmatched_ends: u64,
}

impl PhaseReport {
    /// Total ticks spent in phases with `id`, over all cores.
    pub fn total_ticks(&self, id: u32) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.id == id)
            .map(UserPhase::ticks)
            .sum()
    }

    /// The distinct phase ids seen, sorted.
    pub fn ids(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.phases.iter().map(|p| p.id).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Reconstructs user phases from begin/end markers. Nested phases of
/// the *same id on the same core* pair LIFO (like brackets); distinct
/// ids are independent.
pub fn user_phases(trace: &AnalyzedTrace) -> PhaseReport {
    let mut open: HashMap<(TraceCore, u32), Vec<u64>> = HashMap::new();
    let mut report = PhaseReport::default();
    for e in &trace.events {
        if !matches!(e.code, EventCode::SpeUser | EventCode::PpeUser) {
            continue;
        }
        let id = e.params[0] as u32;
        let marker = e.params.get(1).copied().unwrap_or(0);
        if marker == PHASE_BEGIN {
            open.entry((e.core, id)).or_default().push(e.time_tb);
        } else if marker == PHASE_END {
            match open.get_mut(&(e.core, id)).and_then(Vec::pop) {
                Some(start_tb) => report.phases.push(UserPhase {
                    core: e.core,
                    id,
                    start_tb,
                    end_tb: e.time_tb,
                }),
                None => report.unmatched_ends += 1,
            }
        }
    }
    report.unmatched_begins = open.values().map(|v| v.len() as u64).sum();
    report.phases.sort_by_key(|p| (p.start_tb, p.id));
    report
}

/// [`user_phases`] over the columnar store: one pass over the code /
/// params columns with the same LIFO pairing. The session uses this
/// path; the row function remains the differential oracle.
pub fn user_phases_columns(trace: &ColumnarTrace) -> PhaseReport {
    let mut open: HashMap<(TraceCore, u32), Vec<u64>> = HashMap::new();
    let mut report = PhaseReport::default();
    for v in trace.events.iter() {
        if !matches!(v.code, EventCode::SpeUser | EventCode::PpeUser) {
            continue;
        }
        let id = v.params[0] as u32;
        let marker = v.params.get(1).copied().unwrap_or(0);
        if marker == PHASE_BEGIN {
            open.entry((v.core, id)).or_default().push(v.time_tb);
        } else if marker == PHASE_END {
            match open.get_mut(&(v.core, id)).and_then(Vec::pop) {
                Some(start_tb) => report.phases.push(UserPhase {
                    core: v.core,
                    id,
                    start_tb,
                    end_tb: v.time_tb,
                }),
                None => report.unmatched_ends += 1,
            }
        }
    }
    report.unmatched_begins = open.values().map(|v| v.len() as u64).sum();
    report.phases.sort_by_key(|p| (p.start_tb, p.id));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::GlobalEvent;
    use pdt::{TraceHeader, VERSION};

    fn user(t: u64, core: TraceCore, id: u32, marker: u64) -> GlobalEvent {
        GlobalEvent {
            time_tb: t,
            core,
            code: if core.is_spe() {
                EventCode::SpeUser
            } else {
                EventCode::PpeUser
            },
            params: vec![id as u64, marker, 0],
            stream_seq: t,
        }
    }

    fn trace(events: Vec<GlobalEvent>) -> AnalyzedTrace {
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 2,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events,
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        }
    }

    #[test]
    fn begin_end_pairs_become_phases() {
        let s0 = TraceCore::Spe(0);
        let t = trace(vec![
            user(10, s0, 1, PHASE_BEGIN),
            user(50, s0, 1, PHASE_END),
            user(60, s0, 2, PHASE_BEGIN),
            user(90, s0, 2, PHASE_END),
        ]);
        let r = user_phases(&t);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].ticks(), 40);
        assert_eq!(r.phases[1].ticks(), 30);
        assert_eq!(r.total_ticks(1), 40);
        assert_eq!(r.ids(), vec![1, 2]);
        assert_eq!(r.unmatched_begins, 0);
        assert_eq!(r.unmatched_ends, 0);
    }

    #[test]
    fn same_id_nests_lifo() {
        let s0 = TraceCore::Spe(0);
        let t = trace(vec![
            user(0, s0, 7, PHASE_BEGIN),
            user(10, s0, 7, PHASE_BEGIN),
            user(20, s0, 7, PHASE_END),
            user(40, s0, 7, PHASE_END),
        ]);
        let r = user_phases(&t);
        assert_eq!(r.phases.len(), 2);
        // Inner pairs first by start order after sorting.
        assert_eq!(r.phases[0].start_tb, 0);
        assert_eq!(r.phases[0].end_tb, 40);
        assert_eq!(r.phases[1].start_tb, 10);
        assert_eq!(r.phases[1].end_tb, 20);
    }

    #[test]
    fn cores_are_independent_and_unmatched_counted() {
        let s0 = TraceCore::Spe(0);
        let s1 = TraceCore::Spe(1);
        let ppe = TraceCore::Ppe(0);
        let t = trace(vec![
            user(0, s0, 1, PHASE_BEGIN),
            user(5, ppe, 1, PHASE_BEGIN),
            user(10, s1, 1, PHASE_END), // no begin on SPE1
            user(30, ppe, 1, PHASE_END),
        ]);
        let r = user_phases(&t);
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].core, ppe);
        assert_eq!(r.unmatched_begins, 1); // SPE0's begin
        assert_eq!(r.unmatched_ends, 1); // SPE1's end
    }

    #[test]
    fn columnar_phases_match_row_phases() {
        let s0 = TraceCore::Spe(0);
        let ppe = TraceCore::Ppe(0);
        let t = trace(vec![
            user(0, s0, 7, PHASE_BEGIN),
            user(5, ppe, 1, PHASE_BEGIN),
            user(10, s0, 7, PHASE_BEGIN),
            user(20, s0, 7, PHASE_END),
            user(30, ppe, 1, PHASE_END),
            user(40, s0, 7, PHASE_END),
            user(50, s0, 9, PHASE_END), // unmatched end
        ]);
        let cols = ColumnarTrace::from_analyzed(&t);
        assert_eq!(user_phases_columns(&cols), user_phases(&t));
    }

    #[test]
    fn plain_user_events_are_not_phases() {
        let s0 = TraceCore::Spe(0);
        let t = trace(vec![user(0, s0, 1, 99), user(10, s0, 1, 0)]);
        let r = user_phases(&t);
        assert!(r.phases.is_empty());
        assert_eq!(r.unmatched_ends, 0);
    }
}
