//! Activity-interval reconstruction.
//!
//! The PDT records paired begin/end events around every potentially
//! blocking operation. The analyzer turns those pairs into *intervals*
//! — the colored segments of the Trace Analyzer's timeline view — and
//! classifies the gaps between them as compute.
//!
//! A known limitation inherited from the instrumentation points: an
//! SPU blocking on a *full outbound mailbox* records a single
//! `SpeMboxWrite` event (the write call), so that block is attributed
//! to compute. The paper's TA had the same blind spot; the machine's
//! ground-truth report exposes the residual as `mbox_wait` that the TA
//! does not see.

use pdt::{EventCode, TraceCore};

use crate::analyze::AnalyzedTrace;
use crate::columns::ColumnarTrace;

/// What an SPE was doing during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityKind {
    /// Executing program work (including instrumentation overhead,
    /// which the trace cannot separate from user cycles).
    Compute,
    /// Blocked in a tag-group wait.
    DmaWait,
    /// Blocked reading the inbound mailbox.
    MboxWait,
    /// Blocked reading a signal register.
    SignalWait,
}

impl ActivityKind {
    /// Every kind, in a stable order (the index into
    /// [`ActivityKind::index`]-keyed tables).
    pub const ALL: [ActivityKind; 4] = [
        ActivityKind::Compute,
        ActivityKind::DmaWait,
        ActivityKind::MboxWait,
        ActivityKind::SignalWait,
    ];

    /// Position of this kind in [`ActivityKind::ALL`]; a stable small
    /// index for per-kind accumulator tables.
    pub fn index(self) -> usize {
        match self {
            ActivityKind::Compute => 0,
            ActivityKind::DmaWait => 1,
            ActivityKind::MboxWait => 2,
            ActivityKind::SignalWait => 3,
        }
    }

    /// Stable short label.
    pub fn label(self) -> &'static str {
        match self {
            ActivityKind::Compute => "compute",
            ActivityKind::DmaWait => "dma-wait",
            ActivityKind::MboxWait => "mbox-wait",
            ActivityKind::SignalWait => "sig-wait",
        }
    }
}

/// A half-open interval `[start_tb, end_tb)` on one SPE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Start, in timebase ticks.
    pub start_tb: u64,
    /// End, in timebase ticks.
    pub end_tb: u64,
    /// Activity classification.
    pub kind: ActivityKind,
}

impl Interval {
    /// Interval length in ticks.
    pub fn ticks(&self) -> u64 {
        self.end_tb - self.start_tb
    }
}

/// All intervals reconstructed for one SPE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeIntervals {
    /// The SPE index.
    pub spe: u8,
    /// Context start time.
    pub start_tb: u64,
    /// Context stop time.
    pub stop_tb: u64,
    /// Intervals covering `[start_tb, stop_tb)` without gaps.
    pub intervals: Vec<Interval>,
}

impl SpeIntervals {
    /// Clips the interval set to the window `[start_tb, end_tb)` —
    /// the analyzer's zoom operation. Intervals partially inside the
    /// window are trimmed; the result tiles the intersection of the
    /// window with the SPE's active span.
    pub fn clip(&self, start_tb: u64, end_tb: u64) -> SpeIntervals {
        let s = start_tb.max(self.start_tb);
        let e = end_tb.min(self.stop_tb).max(s);
        SpeIntervals {
            spe: self.spe,
            start_tb: s,
            stop_tb: e,
            intervals: self
                .intervals
                .iter()
                .filter(|i| i.end_tb > s && i.start_tb < e)
                .map(|i| Interval {
                    start_tb: i.start_tb.max(s),
                    end_tb: i.end_tb.min(e),
                    kind: i.kind,
                })
                .collect(),
        }
    }

    /// Total ticks attributed to `kind`.
    pub fn total(&self, kind: ActivityKind) -> u64 {
        self.intervals
            .iter()
            .filter(|i| i.kind == kind)
            .map(Interval::ticks)
            .sum()
    }

    /// Active ticks (start to stop).
    pub fn active(&self) -> u64 {
        self.stop_tb - self.start_tb
    }

    /// Compute fraction of active time (0..=1).
    pub fn utilization(&self) -> f64 {
        if self.active() == 0 {
            return 0.0;
        }
        self.total(ActivityKind::Compute) as f64 / self.active() as f64
    }
}

fn wait_kind(code: EventCode) -> Option<ActivityKind> {
    match code {
        EventCode::SpeTagWaitBegin => Some(ActivityKind::DmaWait),
        EventCode::SpeMboxReadBegin => Some(ActivityKind::MboxWait),
        EventCode::SpeSignalReadBegin => Some(ActivityKind::SignalWait),
        _ => None,
    }
}

fn wait_end(code: EventCode) -> bool {
    matches!(
        code,
        EventCode::SpeTagWaitEnd | EventCode::SpeMboxReadEnd | EventCode::SpeSignalReadEnd
    )
}

/// Reconstructs intervals for every SPE in the trace.
///
/// SPEs whose stream lacks a `SpeCtxStart` or `SpeStop` are skipped
/// (truncated traces); waits left open at stop are closed at the stop
/// timestamp.
pub fn build_intervals(trace: &AnalyzedTrace) -> Vec<SpeIntervals> {
    let mut out = Vec::new();
    for spe in trace.spes() {
        let events: Vec<_> = trace.core_events(TraceCore::Spe(spe)).collect();
        let Some(start) = events
            .iter()
            .find(|e| e.code == EventCode::SpeCtxStart)
            .map(|e| e.time_tb)
        else {
            continue;
        };
        let Some(stop) = events
            .iter()
            .find(|e| e.code == EventCode::SpeStop)
            .map(|e| e.time_tb)
        else {
            continue;
        };
        let mut intervals = Vec::new();
        let mut cursor = start;
        let mut open: Option<(u64, ActivityKind)> = None;
        for e in &events {
            if let Some(kind) = wait_kind(e.code) {
                if open.is_none() {
                    // Close the compute gap before the wait begins.
                    if e.time_tb > cursor {
                        intervals.push(Interval {
                            start_tb: cursor,
                            end_tb: e.time_tb,
                            kind: ActivityKind::Compute,
                        });
                    }
                    open = Some((e.time_tb, kind));
                }
            } else if wait_end(e.code) {
                if let Some((begin, kind)) = open.take() {
                    if e.time_tb > begin {
                        intervals.push(Interval {
                            start_tb: begin,
                            end_tb: e.time_tb,
                            kind,
                        });
                    }
                    cursor = e.time_tb.max(begin);
                }
            }
        }
        // A wait left open at stop (e.g. trace truncated by drops).
        if let Some((begin, kind)) = open.take() {
            if stop > begin {
                intervals.push(Interval {
                    start_tb: begin,
                    end_tb: stop,
                    kind,
                });
            }
            cursor = stop;
        }
        if stop > cursor {
            intervals.push(Interval {
                start_tb: cursor,
                end_tb: stop,
                kind: ActivityKind::Compute,
            });
        }
        out.push(SpeIntervals {
            spe,
            start_tb: start,
            stop_tb: stop,
            intervals,
        });
    }
    out
}

/// [`build_intervals`] over the columnar store: identical state
/// machine, walking each SPE's memoized offset slice instead of
/// filtering the whole event vector per SPE. The session uses this
/// path; the row function remains the differential oracle.
pub fn build_intervals_columns(trace: &ColumnarTrace) -> Vec<SpeIntervals> {
    trace
        .spes()
        .into_iter()
        .filter_map(|spe| build_spe_intervals_columns(trace, spe))
        .collect()
}

/// One SPE's lane of [`build_intervals_columns`]: the independent
/// shard unit the parallel product scheduler fans out per SPE. `None`
/// when the SPE lacks the `SpeCtxStart`/`SpeStop` lifecycle pair.
pub(crate) fn build_spe_intervals_columns(trace: &ColumnarTrace, spe: u8) -> Option<SpeIntervals> {
    let core = TraceCore::Spe(spe);
    let start = trace
        .core_events(core)
        .find(|v| v.code == EventCode::SpeCtxStart)
        .map(|v| v.time_tb)?;
    let stop = trace
        .core_events(core)
        .find(|v| v.code == EventCode::SpeStop)
        .map(|v| v.time_tb)?;
    let mut intervals = Vec::new();
    let mut cursor = start;
    let mut open: Option<(u64, ActivityKind)> = None;
    for v in trace.core_events(core) {
        if let Some(kind) = wait_kind(v.code) {
            if open.is_none() {
                if v.time_tb > cursor {
                    intervals.push(Interval {
                        start_tb: cursor,
                        end_tb: v.time_tb,
                        kind: ActivityKind::Compute,
                    });
                }
                open = Some((v.time_tb, kind));
            }
        } else if wait_end(v.code) {
            if let Some((begin, kind)) = open.take() {
                if v.time_tb > begin {
                    intervals.push(Interval {
                        start_tb: begin,
                        end_tb: v.time_tb,
                        kind,
                    });
                }
                cursor = v.time_tb.max(begin);
            }
        }
    }
    if let Some((begin, kind)) = open.take() {
        if stop > begin {
            intervals.push(Interval {
                start_tb: begin,
                end_tb: stop,
                kind,
            });
        }
        cursor = stop;
    }
    if stop > cursor {
        intervals.push(Interval {
            start_tb: cursor,
            end_tb: stop,
            kind: ActivityKind::Compute,
        });
    }
    Some(SpeIntervals {
        spe,
        start_tb: start,
        stop_tb: stop,
        intervals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::GlobalEvent;
    use pdt::{TraceHeader, VERSION};

    fn trace_of(events: Vec<(u64, EventCode)>) -> AnalyzedTrace {
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events: events
                .into_iter()
                .enumerate()
                .map(|(i, (t, code))| GlobalEvent {
                    time_tb: t,
                    core: TraceCore::Spe(0),
                    code,
                    params: vec![0; 4],
                    stream_seq: i as u64,
                })
                .collect(),
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        }
    }

    #[test]
    fn waits_and_compute_partition_active_time() {
        use EventCode::*;
        let t = trace_of(vec![
            (100, SpeCtxStart),
            (100, SpeDmaGet),
            (110, SpeTagWaitBegin),
            (150, SpeTagWaitEnd),
            (180, SpeMboxReadBegin),
            (200, SpeMboxReadEnd),
            (300, SpeStop),
        ]);
        let iv = build_intervals(&t);
        assert_eq!(iv.len(), 1);
        let s = &iv[0];
        assert_eq!(s.active(), 200);
        assert_eq!(s.total(ActivityKind::DmaWait), 40);
        assert_eq!(s.total(ActivityKind::MboxWait), 20);
        assert_eq!(s.total(ActivityKind::Compute), 140);
        // Intervals tile [start, stop) without gaps or overlaps.
        let mut cursor = s.start_tb;
        for i in &s.intervals {
            assert_eq!(i.start_tb, cursor);
            cursor = i.end_tb;
        }
        assert_eq!(cursor, s.stop_tb);
        let u = s.utilization();
        assert!((u - 0.7).abs() < 1e-12, "utilization {u}");
    }

    #[test]
    fn zero_length_waits_vanish() {
        use EventCode::*;
        let t = trace_of(vec![
            (10, SpeCtxStart),
            (20, SpeTagWaitBegin),
            (20, SpeTagWaitEnd),
            (50, SpeStop),
        ]);
        let s = &build_intervals(&t)[0];
        assert_eq!(s.total(ActivityKind::DmaWait), 0);
        assert_eq!(s.total(ActivityKind::Compute), 40);
    }

    #[test]
    fn open_wait_is_closed_at_stop() {
        use EventCode::*;
        let t = trace_of(vec![
            (0, SpeCtxStart),
            (10, SpeSignalReadBegin),
            (90, SpeStop),
        ]);
        let s = &build_intervals(&t)[0];
        assert_eq!(s.total(ActivityKind::SignalWait), 80);
        assert_eq!(s.total(ActivityKind::Compute), 10);
    }

    #[test]
    fn stream_without_lifecycle_is_skipped() {
        use EventCode::*;
        let t = trace_of(vec![(10, SpeUser)]);
        assert!(build_intervals(&t).is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ActivityKind::DmaWait.label(), "dma-wait");
        assert_eq!(ActivityKind::Compute.label(), "compute");
    }

    #[test]
    fn columnar_intervals_match_row_intervals() {
        use EventCode::*;
        for events in [
            vec![
                (100, SpeCtxStart),
                (110, SpeTagWaitBegin),
                (150, SpeTagWaitEnd),
                (180, SpeMboxReadBegin),
                (200, SpeMboxReadEnd),
                (300, SpeStop),
            ],
            vec![(0, SpeCtxStart), (10, SpeSignalReadBegin), (90, SpeStop)],
            vec![(10, SpeUser)],
            vec![],
        ] {
            let t = trace_of(events);
            let cols = crate::columns::ColumnarTrace::from_analyzed(&t);
            assert_eq!(build_intervals_columns(&cols), build_intervals(&t));
        }
    }

    #[test]
    fn clip_trims_and_tiles() {
        use EventCode::*;
        let t = trace_of(vec![
            (100, SpeCtxStart),
            (110, SpeTagWaitBegin),
            (150, SpeTagWaitEnd),
            (300, SpeStop),
        ]);
        let s = &build_intervals(&t)[0];
        // Window straddling the wait and part of the compute tail.
        let c = s.clip(120, 200);
        assert_eq!(c.start_tb, 120);
        assert_eq!(c.stop_tb, 200);
        assert_eq!(c.total(ActivityKind::DmaWait), 30);
        assert_eq!(c.total(ActivityKind::Compute), 50);
        let mut cursor = c.start_tb;
        for i in &c.intervals {
            assert_eq!(i.start_tb, cursor);
            cursor = i.end_tb;
        }
        assert_eq!(cursor, c.stop_tb);
        // Window entirely outside the active span is empty.
        let empty = s.clip(400, 500);
        assert_eq!(empty.active(), 0);
        assert!(empty.intervals.is_empty());
    }
}
