//! The indexed query engine: binary-searchable event offsets, an
//! interval tree over activity segments, and a zoom pyramid of
//! pre-aggregated time buckets.
//!
//! The Trace Analyzer's views are zoom-and-filter operations, and the
//! paper's tool answered them interactively. A linear rescan of the
//! merged event vector per view makes every interaction O(trace), so
//! [`TraceIndex`] is built once per [`Analysis`](crate::session::Analysis)
//! (in parallel, partitioned per stream/core) and answers the three
//! recurring query shapes sub-linearly:
//!
//! 1. **Window extraction** — per-core ascending offset lists into the
//!    globally sorted event vector. A half-open time window maps to an
//!    offset range by binary search (`partition_point`), so filtered
//!    event listings cost O(log n + matches).
//! 2. **Segment stabbing/range** — an augmented interval tree per SPE
//!    over the reconstructed [`ActivityKind`] segments, answering
//!    "what was SPE k doing at tick t / during `[t0,t1)`" in
//!    O(log n + k).
//! 3. **Window aggregation** — a zoom pyramid of power-of-two time
//!    buckets holding per-core event counts and per-SPE activity
//!    occupancy. Any `[t0,t1)` summary resolves from ~O(levels) bucket
//!    reads plus two exactly-computed partial edge buckets, so the
//!    result is *identical* to a full rescan, not an approximation.
//!
//! ## Gap suspicion
//!
//! Decode gaps destroy events, not time: the SPE decrementer keeps
//! counting through lost records, so reconstruction after a gap is not
//! skewed — but anything *derived* from the window bracketing a gap
//! (counts, occupancy) silently under-reports. The index therefore
//! maps every [`pdt::DecodeGap`] to the time range between the last
//! surviving record before it and the first after it
//! ([`DecodeGap::records_before`](pdt::DecodeGap::records_before)),
//! and every pyramid bucket overlapping such a range inherits a
//! suspect flag. Window summaries report suspicion from the exact
//! ranges, so a lossy trace never reports a clean aggregate over
//! damaged time.
//!
//! The pre-index scan paths survive behind the `scan-oracle` cargo
//! feature (enabled by default) as the differential oracles the golden
//! and property suites compare against.

use pdt::TraceCore;

use crate::analyze::{AnalyzedTrace, GlobalEvent};
use crate::columns::ColumnarTrace;
use crate::exec::{self, Parallelism};
use crate::intervals::{ActivityKind, Interval, SpeIntervals};
use crate::loss::LossReport;
use crate::query::EventFilter;

/// Upper bound on base-level pyramid buckets. The base bucket width is
/// the smallest power of two keeping the bucket count at or under this
/// cap, so index memory stays bounded for arbitrarily long traces.
pub const MAX_BASE_BUCKETS: usize = 1 << 14;

/// A time range whose derived aggregates are untrustworthy, mapped
/// from stream-level loss (decode gaps, tracer drops, discarded
/// streams). Half-open `[start_tb, end_tb)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspectRange {
    /// First suspect tick.
    pub start_tb: u64,
    /// One past the last suspect tick.
    pub end_tb: u64,
    /// The stream whose loss produced the range. A PPE stream's loss
    /// taints every core (anchors and lifecycle events ride on it).
    pub stream: TraceCore,
}

impl SuspectRange {
    /// Whether the range overlaps the half-open window `[t0, t1)`.
    pub fn overlaps(&self, t0: u64, t1: u64) -> bool {
        self.start_tb < t1 && t0 < self.end_tb
    }
}

/// Maps stream-level loss accounting to time ranges on the global
/// timeline. Each decode gap is bracketed by the surviving records
/// around it (trace start/end when it has no survivor on a side);
/// tracer drops and discarded unanchored streams — whose position in
/// time is unknowable — conservatively taint the whole trace span.
///
/// Shared by [`TraceIndex`] construction and the scan oracles, so the
/// suspicion *rule* has exactly one definition.
pub fn compute_suspect_ranges(trace: &AnalyzedTrace, loss: &LossReport) -> Vec<SuspectRange> {
    let (start, end) = (trace.start_tb(), trace.end_tb());
    let whole = |stream| SuspectRange {
        start_tb: start,
        end_tb: end.saturating_add(1),
        stream,
    };
    let mut out = Vec::new();
    for s in &loss.streams {
        // Events that came from this stream: exact core match for SPE
        // streams; the PPE stream multiplexes hardware threads, so any
        // non-SPE event belongs to it.
        let from_stream = |e: &&GlobalEvent| match s.core {
            TraceCore::Spe(_) => e.core == s.core,
            TraceCore::Ppe(_) => !e.core.is_spe(),
        };
        for g in &s.gaps {
            let before = g
                .records_before
                .checked_sub(1)
                .and_then(|seq| {
                    trace
                        .events
                        .iter()
                        .filter(from_stream)
                        .find(|e| e.stream_seq == seq)
                })
                .map_or(start, |e| e.time_tb);
            let after = trace
                .events
                .iter()
                .filter(from_stream)
                .find(|e| e.stream_seq == g.records_before)
                .map_or(end, |e| e.time_tb);
            out.push(SuspectRange {
                start_tb: before,
                end_tb: after.max(before).saturating_add(1),
                stream: s.core,
            });
        }
        if s.unanchored || s.tracer_dropped > 0 {
            out.push(whole(s.core));
        }
    }
    out
}

/// [`compute_suspect_ranges`] over the columnar store: the same
/// bracketing rule, reading the core/seq/time columns directly. The
/// session's columnar index build uses this path; the row function
/// remains the differential oracle.
pub fn compute_suspect_ranges_columns(
    trace: &ColumnarTrace,
    loss: &LossReport,
) -> Vec<SuspectRange> {
    let (start, end) = (trace.start_tb(), trace.end_tb());
    let tags = trace.events.tags();
    let times = trace.events.times();
    let whole = |stream| SuspectRange {
        start_tb: start,
        end_tb: end.saturating_add(1),
        stream,
    };
    let mut out = Vec::new();
    for s in &loss.streams {
        let from_stream = |i: &usize| match s.core {
            TraceCore::Spe(_) => tags[*i] == s.core.tag(),
            TraceCore::Ppe(_) => !TraceCore::from_tag(tags[*i]).is_spe(),
        };
        for g in &s.gaps {
            let before = g
                .records_before
                .checked_sub(1)
                .and_then(|seq| {
                    (0..tags.len())
                        .filter(from_stream)
                        .find(|&i| trace.events.seq(i) == seq)
                })
                .map_or(start, |i| times[i]);
            let after = (0..tags.len())
                .filter(from_stream)
                .find(|&i| trace.events.seq(i) == g.records_before)
                .map_or(end, |i| times[i]);
            out.push(SuspectRange {
                start_tb: before,
                end_tb: after.max(before).saturating_add(1),
                stream: s.core,
            });
        }
        if s.unanchored || s.tracer_dropped > 0 {
            out.push(whole(s.core));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Interval tree
// ---------------------------------------------------------------------------

/// Anything with a half-open `[start_tb, end_tb)` extent on the
/// timebase axis. Lets [`IntervalTree`] index activity segments here
/// and DMA transfer lifetimes in `ta::lint` with one implementation.
pub(crate) trait Span: Copy {
    /// The half-open `(start_tb, end_tb)` extent.
    fn span(&self) -> (u64, u64);
}

impl Span for Interval {
    fn span(&self) -> (u64, u64) {
        (self.start_tb, self.end_tb)
    }
}

/// A static augmented interval tree over any [`Span`] payload: spans
/// sorted by start, with an implicit balanced-BST layout over the
/// sorted array and a subtree-max-end augmentation per node. Stabbing
/// and range queries are O(log n + k); the structure is immutable
/// after construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct IntervalTree<T: Span> {
    /// Sorted by `(start, end)`.
    nodes: Vec<T>,
    /// `max_end[i]` = max span end in the subtree rooted at `i` (the
    /// midpoint of its implicit `[lo, hi)` slice).
    max_end: Vec<u64>,
}

impl<T: Span> IntervalTree<T> {
    pub(crate) fn new(mut spans: Vec<T>) -> Self {
        spans.sort_by_key(|i| i.span());
        let mut max_end = vec![0u64; spans.len()];
        fn augment<T: Span>(nodes: &[T], max_end: &mut [u64], lo: usize, hi: usize) -> u64 {
            if lo >= hi {
                return 0;
            }
            let mid = lo + (hi - lo) / 2;
            let mut m = nodes[mid].span().1;
            m = m.max(augment(nodes, max_end, lo, mid));
            m = m.max(augment(nodes, max_end, mid + 1, hi));
            max_end[mid] = m;
            m
        }
        let n = spans.len();
        augment(&spans, &mut max_end, 0, n);
        IntervalTree {
            nodes: spans,
            max_end,
        }
    }

    /// Spans `i` with `i.end > t0 && i.start < t1`, in start order —
    /// the same overlap predicate as [`SpeIntervals::clip`].
    pub(crate) fn range(&self, t0: u64, t1: u64) -> Vec<T> {
        let mut out = Vec::new();
        self.visit(0, self.nodes.len(), t0, t1, &mut out);
        out
    }

    fn visit(&self, lo: usize, hi: usize, t0: u64, t1: u64, out: &mut Vec<T>) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        // Nothing in this subtree ends after t0: prune it whole.
        if self.max_end[mid] <= t0 {
            return;
        }
        self.visit(lo, mid, t0, t1, out);
        let node = self.nodes[mid];
        let (start, end) = node.span();
        if start < t1 {
            if end > t0 {
                out.push(node);
            }
            self.visit(mid + 1, hi, t0, t1, out);
        }
        // start >= t1: every right-subtree start is >= too.
    }
}

// ---------------------------------------------------------------------------
// Zoom pyramid
// ---------------------------------------------------------------------------

/// One resolution level: `buckets` buckets of `1 << width_shift` ticks
/// each, flat-packed accumulators.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PyramidLevel {
    buckets: usize,
    /// `buckets * n_cores` event counts.
    counts: Vec<u64>,
    /// `buckets * n_lanes * 4` activity ticks (kind-major inner).
    activity: Vec<u64>,
    /// Per-bucket gap-suspicion flag.
    suspect: Vec<bool>,
}

/// The multi-resolution bucket stack. Level 0 has the base bucket
/// width; each level above merges bucket pairs, doubling the width,
/// until one bucket covers the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ZoomPyramid {
    base_tb: u64,
    shift: u32,
    n_cores: usize,
    n_lanes: usize,
    levels: Vec<PyramidLevel>,
}

impl ZoomPyramid {
    fn bucket_width(&self) -> u64 {
        1u64 << self.shift
    }

    fn n_base(&self) -> usize {
        self.levels.first().map_or(0, |l| l.buckets)
    }
}

// ---------------------------------------------------------------------------
// The index
// ---------------------------------------------------------------------------

/// Per-core ascending offsets into the globally sorted event vector.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CoreOffsets {
    core: TraceCore,
    offsets: Vec<u32>,
}

/// One SPE's indexed activity lane.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SpeLane {
    spe: u8,
    start_tb: u64,
    stop_tb: u64,
    tree: IntervalTree<Interval>,
}

/// Exact aggregate of a half-open window, resolved from the zoom
/// pyramid plus exactly-computed partial edge buckets. Equal to a full
/// rescan of the same window (the `scan-oracle` suites assert it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSummary {
    /// The queried window start.
    pub start_tb: u64,
    /// The queried window end (exclusive).
    pub end_tb: u64,
    /// Event counts per core, in index core order (tag-sorted);
    /// includes zero-count cores.
    pub events: Vec<(TraceCore, u64)>,
    /// Activity occupancy per SPE lane, in SPE order.
    pub activity: Vec<WindowActivity>,
    /// True when the window overlaps a [`SuspectRange`]: some of what
    /// this summary aggregates was lost to decode gaps or drops.
    pub suspect: bool,
}

impl WindowSummary {
    /// Total events over every core.
    pub fn total_events(&self) -> u64 {
        self.events.iter().map(|(_, n)| n).sum()
    }
}

/// One SPE's activity ticks within a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowActivity {
    /// The SPE.
    pub spe: u8,
    /// Ticks per [`ActivityKind`], indexed by [`ActivityKind::index`].
    pub ticks: [u64; 4],
}

impl WindowActivity {
    /// Ticks attributed to `kind`.
    pub fn ticks_of(&self, kind: ActivityKind) -> u64 {
        self.ticks[kind.index()]
    }
}

/// The immutable query index over one analyzed trace. Built once per
/// [`Analysis`](crate::session::Analysis) (memoized like the other
/// products); all queries take the owning trace's event slice, which
/// must be the one the index was built from.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceIndex {
    start_tb: u64,
    end_tb: u64,
    n_events: usize,
    per_core: Vec<CoreOffsets>,
    lanes: Vec<SpeLane>,
    pyramid: ZoomPyramid,
    suspects: Vec<SuspectRange>,
}

impl TraceIndex {
    /// Builds the index on the calling thread. Equivalent to
    /// [`build_parallel`](Self::build_parallel) with one worker.
    pub fn build(trace: &AnalyzedTrace, intervals: &[SpeIntervals], loss: &LossReport) -> Self {
        Self::build_parallel(trace, intervals, loss, 1)
    }

    /// Builds the index with up to `threads` workers: the event vector
    /// is partitioned into contiguous chunks for offset extraction,
    /// then cores (bucket counting) and SPE lanes (interval tree +
    /// occupancy distribution) are distributed round-robin. Output is
    /// identical for every worker count.
    pub fn build_parallel(
        trace: &AnalyzedTrace,
        intervals: &[SpeIntervals],
        loss: &LossReport,
        threads: usize,
    ) -> Self {
        assert!(
            trace.events.len() <= u32::MAX as usize,
            "trace exceeds u32 offset space"
        );
        let start_tb = trace.start_tb();
        let end_tb = trace.end_tb();
        let suspects = compute_suspect_ranges(trace, loss);

        // Stable core order: sorted by tag (PPE threads, then SPEs).
        let mut cores: Vec<TraceCore> = trace.events.iter().map(|e| e.core).collect();
        cores.sort_by_key(|c| c.tag());
        cores.dedup();
        let mut slot_of = [usize::MAX; 256];
        for (i, c) in cores.iter().enumerate() {
            slot_of[c.tag() as usize] = i;
        }

        let workers = threads.max(1);
        let per_core_offsets = extract_offsets(&trace.events, &cores, &slot_of, workers);
        let events = &trace.events;
        Self::finish_build(
            start_tb,
            end_tb,
            events.len(),
            cores,
            per_core_offsets,
            &|o| events[o as usize].time_tb,
            intervals,
            suspects,
            workers,
        )
    }

    /// Builds the index over the columnar store: per-core offsets come
    /// from the store's memoized shared pass and bucket counting reads
    /// the time column directly. Output is identical to
    /// [`build_parallel`](Self::build_parallel) on the materialized
    /// row trace (the differential suites assert it).
    pub fn build_columns(
        trace: &ColumnarTrace,
        intervals: &[SpeIntervals],
        loss: &LossReport,
        threads: usize,
    ) -> Self {
        assert!(
            trace.events.len() <= u32::MAX as usize,
            "trace exceeds u32 offset space"
        );
        let start_tb = trace.start_tb();
        let end_tb = trace.end_tb();
        let suspects = compute_suspect_ranges_columns(trace, loss);
        let workers = threads.max(1);
        let (cores, per_core_offsets): (Vec<TraceCore>, Vec<Vec<u32>>) = trace
            .core_offsets()
            .iter()
            .map(|(c, offs)| (*c, offs.to_vec()))
            .unzip();
        let times = trace.events.times();
        Self::finish_build(
            start_tb,
            end_tb,
            trace.events.len(),
            cores,
            per_core_offsets,
            &|o| times[o as usize],
            intervals,
            suspects,
            workers,
        )
    }

    /// The shared back half of index construction: pyramid geometry,
    /// bucket counting, lane building and level merging. `time_of`
    /// resolves a global offset to its timestamp, abstracting the row
    /// vector and the time column behind one lookup.
    #[allow(clippy::too_many_arguments)]
    fn finish_build(
        start_tb: u64,
        end_tb: u64,
        n_events: usize,
        cores: Vec<TraceCore>,
        per_core_offsets: Vec<Vec<u32>>,
        time_of: &(dyn Fn(u32) -> u64 + Sync),
        intervals: &[SpeIntervals],
        suspects: Vec<SuspectRange>,
        workers: usize,
    ) -> Self {
        // Pyramid geometry: smallest power-of-two bucket width keeping
        // the base level at or under the cap. Span covers the last
        // event inclusively.
        let span = end_tb.saturating_sub(start_tb).saturating_add(1);
        let mut shift = 0u32;
        while (span >> shift) as u128 + u128::from(span & ((1u64 << shift) - 1) != 0)
            > MAX_BASE_BUCKETS as u128
        {
            shift += 1;
        }
        let width = 1u64 << shift;
        let n_base = span.div_ceil(width).max(1) as usize;

        // Level-0 event counts: one pass per core, cores distributed
        // round-robin over the workers.
        let counts0 = count_buckets(
            time_of,
            &per_core_offsets,
            start_tb,
            shift,
            n_base,
            cores.len(),
            workers,
        );

        // Lanes: interval tree + level-0 activity distribution, lanes
        // distributed round-robin.
        let (lanes, activity0) = build_lanes(intervals, start_tb, shift, n_base, workers);

        // Level-0 suspicion: buckets overlapping any suspect range.
        let mut suspect0 = vec![false; n_base];
        for r in &suspects {
            if r.end_tb <= start_tb || r.start_tb >= start_tb + width * n_base as u64 {
                continue;
            }
            let lo = (r.start_tb.max(start_tb) - start_tb) >> shift;
            let hi = (r.end_tb.saturating_sub(1).max(r.start_tb.max(start_tb)) - start_tb) >> shift;
            for b in lo..=hi.min(n_base as u64 - 1) {
                suspect0[b as usize] = true;
            }
        }

        // Merge pairs upward until one bucket covers the span.
        let n_cores = cores.len();
        let n_lanes = intervals.len();
        let mut levels = vec![PyramidLevel {
            buckets: n_base,
            counts: counts0,
            activity: activity0,
            suspect: suspect0,
        }];
        while levels.last().unwrap().buckets > 1 {
            let prev = levels.last().unwrap();
            let nb = prev.buckets.div_ceil(2);
            let mut counts = vec![0u64; nb * n_cores];
            let mut activity = vec![0u64; nb * n_lanes * 4];
            let mut suspect = vec![false; nb];
            for b in 0..prev.buckets {
                let parent = b / 2;
                for c in 0..n_cores {
                    counts[parent * n_cores + c] += prev.counts[b * n_cores + c];
                }
                for k in 0..n_lanes * 4 {
                    activity[parent * n_lanes * 4 + k] += prev.activity[b * n_lanes * 4 + k];
                }
                suspect[parent] |= prev.suspect[b];
            }
            levels.push(PyramidLevel {
                buckets: nb,
                counts,
                activity,
                suspect,
            });
        }

        TraceIndex {
            start_tb,
            end_tb,
            n_events,
            per_core: cores
                .into_iter()
                .zip(per_core_offsets)
                .map(|(core, offsets)| CoreOffsets { core, offsets })
                .collect(),
            lanes,
            pyramid: ZoomPyramid {
                base_tb: start_tb,
                shift,
                n_cores,
                n_lanes,
                levels,
            },
            suspects,
        }
    }

    /// First indexed tick.
    pub fn start_tb(&self) -> u64 {
        self.start_tb
    }

    /// Last indexed tick.
    pub fn end_tb(&self) -> u64 {
        self.end_tb
    }

    /// The indexed cores, tag-sorted.
    pub fn cores(&self) -> impl Iterator<Item = TraceCore> + '_ {
        self.per_core.iter().map(|c| c.core)
    }

    /// The indexed SPE lanes (SPEs with reconstructed intervals).
    pub fn spes(&self) -> impl Iterator<Item = u8> + '_ {
        self.lanes.iter().map(|l| l.spe)
    }

    /// The suspect time ranges derived from the trace's loss
    /// accounting, in stream order.
    pub fn suspect_ranges(&self) -> &[SuspectRange] {
        &self.suspects
    }

    /// Whether the half-open window `[t0, t1)` overlaps any suspect
    /// range — the window-level form of the bucket suspicion rule.
    pub fn window_suspect(&self, t0: u64, t1: u64) -> bool {
        self.suspects.iter().any(|r| r.overlaps(t0, t1))
    }

    fn check(&self, events: &[GlobalEvent]) {
        debug_assert_eq!(
            events.len(),
            self.n_events,
            "index queried with a different trace than it was built from"
        );
    }

    /// `core`'s events within `[t0, t1)`, in global order, by binary
    /// search over the core's offset list.
    pub fn core_events_in<'a>(
        &'a self,
        events: &'a [GlobalEvent],
        core: TraceCore,
        t0: u64,
        t1: u64,
    ) -> impl Iterator<Item = &'a GlobalEvent> + 'a {
        self.check(events);
        let range = self
            .per_core
            .iter()
            .find(|c| c.core == core)
            .map(|c| {
                let lo = c
                    .offsets
                    .partition_point(|&o| events[o as usize].time_tb < t0);
                let hi = c
                    .offsets
                    .partition_point(|&o| events[o as usize].time_tb < t1);
                &c.offsets[lo..hi.max(lo)]
            })
            .unwrap_or(&[]);
        range.iter().map(move |&o| &events[o as usize])
    }

    /// The global offset range of events with `t0 <= time_tb < t1`
    /// (the event vector is time-sorted).
    pub fn global_range(&self, events: &[GlobalEvent], t0: u64, t1: u64) -> std::ops::Range<usize> {
        self.check(events);
        let lo = events.partition_point(|e| e.time_tb < t0);
        let hi = events.partition_point(|e| e.time_tb < t1);
        lo..hi.max(lo)
    }

    /// Applies `filter`, returning matches in global order — the
    /// index-backed engine behind [`EventFilter::apply`]. Window
    /// bounds resolve by binary search; core restrictions iterate only
    /// the named cores' offset lists.
    pub fn query<'a>(
        &self,
        trace: &'a AnalyzedTrace,
        filter: &EventFilter,
    ) -> Vec<&'a GlobalEvent> {
        let events = &trace.events;
        self.check(events);
        let (t0, t1) = filter.window().unwrap_or((0, u64::MAX));
        match filter.cores() {
            Some(cores) => {
                // Walk only the selected cores' windows; merging the
                // ascending offset runs by offset value reproduces the
                // exact global scan order.
                let mut offs: Vec<u32> = Vec::new();
                for c in &self.per_core {
                    if !cores.contains(&c.core) {
                        continue;
                    }
                    let lo = c
                        .offsets
                        .partition_point(|&o| events[o as usize].time_tb < t0);
                    let hi = c
                        .offsets
                        .partition_point(|&o| events[o as usize].time_tb < t1);
                    offs.extend(
                        c.offsets[lo..hi.max(lo)]
                            .iter()
                            .copied()
                            .filter(|&o| filter.matches(&events[o as usize])),
                    );
                }
                offs.sort_unstable();
                offs.into_iter().map(|o| &events[o as usize]).collect()
            }
            None => self
                .global_range(events, t0, t1)
                .filter_map(|i| {
                    let e = &events[i];
                    filter.matches(e).then_some(e)
                })
                .collect(),
        }
    }

    /// The activity interval containing tick `t` on `spe`, if any —
    /// the interval tree's stabbing query.
    pub fn stab(&self, spe: u8, t: u64) -> Option<Interval> {
        let lane = self.lanes.iter().find(|l| l.spe == spe)?;
        lane.tree
            .range(t, t.saturating_add(1))
            .into_iter()
            .find(|i| i.start_tb <= t && t < i.end_tb)
    }

    /// Clips one SPE's interval set to `[t0, t1)` via the interval
    /// tree — identical to [`SpeIntervals::clip`] on the full set, in
    /// O(log n + k) instead of O(n).
    pub fn clip(&self, spe: u8, t0: u64, t1: u64) -> Option<SpeIntervals> {
        let lane = self.lanes.iter().find(|l| l.spe == spe)?;
        Some(Self::clip_lane(lane, t0, t1))
    }

    /// Clips every SPE lane to `[t0, t1)`, in SPE order.
    pub fn clip_all(&self, t0: u64, t1: u64) -> Vec<SpeIntervals> {
        self.lanes
            .iter()
            .map(|l| Self::clip_lane(l, t0, t1))
            .collect()
    }

    fn clip_lane(lane: &SpeLane, t0: u64, t1: u64) -> SpeIntervals {
        let s = t0.max(lane.start_tb);
        let e = t1.min(lane.stop_tb).max(s);
        SpeIntervals {
            spe: lane.spe,
            start_tb: s,
            stop_tb: e,
            intervals: lane
                .tree
                .range(s, e)
                .into_iter()
                .map(|i| Interval {
                    start_tb: i.start_tb.max(s),
                    end_tb: i.end_tb.min(e),
                    kind: i.kind,
                })
                .collect(),
        }
    }

    /// Exact aggregate of `[t0, t1)`: per-core event counts, per-SPE
    /// activity occupancy and the gap-suspicion flag. Interior base
    /// buckets resolve from ~O(levels) pyramid reads; the two partial
    /// edge buckets are computed exactly (binary-searched counts,
    /// tree-clipped activity), so the summary equals a full rescan.
    pub fn summarize(&self, trace: &AnalyzedTrace, t0: u64, t1: u64) -> WindowSummary {
        let events = &trace.events;
        self.check(events);
        let p = &self.pyramid;
        let mut counts = vec![0u64; p.n_cores];
        let mut activity = vec![[0u64; 4]; p.n_lanes];

        // Clamp to the indexed span; nothing exists outside it.
        let c0 = t0.max(self.start_tb);
        let c1 = t1.min(self.end_tb.saturating_add(1));
        if c1 > c0 {
            let width = p.bucket_width();
            let b0 = ((c0 - p.base_tb) >> p.shift) as usize;
            let b1 = (((c1 - 1) - p.base_tb) >> p.shift) as usize;
            if b0 == b1 {
                self.add_exact(events, c0, c1, &mut counts, &mut activity);
            } else {
                let b0_end = p.base_tb + (b0 as u64 + 1) * width;
                let b1_start = p.base_tb + b1 as u64 * width;
                self.add_exact(events, c0, b0_end, &mut counts, &mut activity);
                self.add_exact(events, b1_start, c1, &mut counts, &mut activity);
                self.add_pyramid(b0 + 1, b1, &mut counts, &mut activity);
            }
        }

        WindowSummary {
            start_tb: t0,
            end_tb: t1,
            events: self
                .per_core
                .iter()
                .zip(&counts)
                .map(|(c, &n)| (c.core, n))
                .collect(),
            activity: self
                .lanes
                .iter()
                .zip(activity)
                .map(|(l, ticks)| WindowActivity { spe: l.spe, ticks })
                .collect(),
            suspect: self.window_suspect(t0, t1),
        }
    }

    /// Exact accumulation over a sub-bucket range.
    fn add_exact(
        &self,
        events: &[GlobalEvent],
        a: u64,
        b: u64,
        counts: &mut [u64],
        activity: &mut [[u64; 4]],
    ) {
        for (ci, c) in self.per_core.iter().enumerate() {
            let lo = c
                .offsets
                .partition_point(|&o| events[o as usize].time_tb < a);
            let hi = c
                .offsets
                .partition_point(|&o| events[o as usize].time_tb < b);
            counts[ci] += (hi - lo) as u64;
        }
        for (li, lane) in self.lanes.iter().enumerate() {
            for iv in lane.tree.range(a, b) {
                let overlap = iv.end_tb.min(b).saturating_sub(iv.start_tb.max(a));
                activity[li][iv.kind.index()] += overlap;
            }
        }
    }

    /// Segment-tree-style aligned decomposition of whole base buckets
    /// `[lo, hi)` across the pyramid levels: O(levels) bucket reads.
    fn add_pyramid(&self, lo: usize, hi: usize, counts: &mut [u64], activity: &mut [[u64; 4]]) {
        let p = &self.pyramid;
        let (mut lo, mut hi, mut level) = (lo, hi, 0usize);
        while lo < hi {
            let l = &p.levels[level];
            let mut take = |b: usize| {
                for (c, count) in counts.iter_mut().enumerate().take(p.n_cores) {
                    *count += l.counts[b * p.n_cores + c];
                }
                for (li, lane) in activity.iter_mut().enumerate().take(p.n_lanes) {
                    for (k, ticks) in lane.iter_mut().enumerate() {
                        *ticks += l.activity[(b * p.n_lanes + li) * 4 + k];
                    }
                }
            };
            if lo & 1 == 1 {
                take(lo);
                lo += 1;
            }
            if hi & 1 == 1 {
                hi -= 1;
                take(hi);
            }
            lo >>= 1;
            hi >>= 1;
            level += 1;
        }
    }

    /// Whether base-level bucket `b` inherited the suspect flag — the
    /// bucket-granular suspicion the renderers consult.
    pub fn bucket_suspect(&self, b: usize) -> bool {
        self.pyramid.levels[0]
            .suspect
            .get(b)
            .copied()
            .unwrap_or(false)
    }

    /// Base-level bucket count and width in ticks, for callers mapping
    /// window positions to buckets.
    pub fn bucket_geometry(&self) -> (usize, u64) {
        (self.pyramid.n_base(), self.pyramid.bucket_width())
    }

    /// Total pyramid buckets across every level — the block count
    /// incremental updates are measured against.
    pub fn total_blocks(&self) -> usize {
        self.pyramid.levels.iter().map(|l| l.buckets).sum()
    }

    /// Grows the index in place to cover `trace`, which must extend the
    /// indexed event prefix by appending events at the tail (the
    /// streaming-ingestion contract). The result is identical to a
    /// fresh [`build_columns`](Self::build_columns) over the grown
    /// trace; only the work is incremental:
    ///
    /// - per-core offset lists get the appended offsets pushed,
    /// - appended events *add* into their base buckets (bucket counts
    ///   are sums, so the boundary bucket needs no recount),
    /// - upper pyramid levels recompute only the suffix reachable from
    ///   touched base buckets,
    /// - a span that outgrows [`MAX_BASE_BUCKETS`] coarsens by
    ///   *dropping* base levels (level `k` of the old pyramid is
    ///   exactly the base of the pyramid with `shift + k`), rewriting
    ///   nothing,
    /// - an SPE lane whose interval set is unchanged keeps its tree and
    ///   activity cells; a changed lane is rebuilt.
    ///
    /// Suspect ranges and flags are recomputed wholesale (loss
    /// bracketing can move *interior* ranges when a gap's "after"
    /// record arrives); they are cheap booleans and do not count as
    /// rebuilt blocks. Falls back to a full rebuild — reported in the
    /// returned [`IndexDelta`] — when the update is not a pure tail
    /// append (new first event, new core, or a changed lane set).
    pub fn extend_columns(
        &mut self,
        trace: &ColumnarTrace,
        intervals: &[SpeIntervals],
        loss: &LossReport,
        threads: usize,
    ) -> IndexDelta {
        assert!(
            trace.events.len() <= u32::MAX as usize,
            "trace exceeds u32 offset space"
        );
        let n_new = trace.events.len();
        let from_ev = self.n_events;
        assert!(n_new >= from_ev, "extend_columns requires an appended tail");
        let appended_events = n_new - from_ev;

        let full_rebuild = |slf: &mut Self| {
            *slf = Self::build_columns(trace, intervals, loss, threads);
            let blocks = slf.total_blocks();
            IndexDelta {
                appended_events,
                blocks_total: blocks,
                blocks_rebuilt: blocks,
                lanes_total: slf.lanes.len(),
                lanes_rebuilt: slf.lanes.len(),
                coarsened: false,
                full_rebuild: true,
            }
        };

        // A tail append never moves the first event; anything else
        // (first build, out-of-order splice repair) rebuilds.
        if from_ev == 0 || trace.start_tb() != self.start_tb {
            return full_rebuild(self);
        }
        // Appends can surface a brand-new core or SPE lane; both change
        // the flat accumulator strides, so rebuild.
        let same_cores = {
            let offs = trace.core_offsets();
            offs.len() == self.per_core.len()
                && offs
                    .iter()
                    .zip(&self.per_core)
                    .all(|((c, _), pc)| *c == pc.core)
        };
        let same_lanes = intervals.len() == self.lanes.len()
            && intervals
                .iter()
                .zip(&self.lanes)
                .all(|(iv, l)| iv.spe == l.spe);
        if !same_cores || !same_lanes {
            return full_rebuild(self);
        }

        let end_tb = trace.end_tb();
        let span = end_tb.saturating_sub(self.start_tb).saturating_add(1);

        // Coarsen: the span may need a wider base bucket. Level k of
        // the current pyramid *is* the base level of the pyramid with
        // `shift + k` (ceil-division composes), so coarsening is a
        // prefix drop, not a rebuild.
        let mut coarsened = false;
        {
            let p = &mut self.pyramid;
            let mut new_shift = p.shift;
            while (span >> new_shift) as u128 + u128::from(span & ((1u64 << new_shift) - 1) != 0)
                > MAX_BASE_BUCKETS as u128
            {
                new_shift += 1;
            }
            let k = (new_shift - p.shift) as usize;
            if k > 0 {
                if k >= p.levels.len() {
                    return full_rebuild(self);
                }
                p.levels.drain(..k);
                p.shift = new_shift;
                coarsened = true;
            }
        }

        let shift = self.pyramid.shift;
        let width = 1u64 << shift;
        let n_base = (span.div_ceil(width).max(1)) as usize;
        let n_cores = self.pyramid.n_cores;
        let n_lanes = self.pyramid.n_lanes;
        let old_n_base = self.pyramid.levels[0].buckets;

        // Grow the base level with zeroed buckets for the new span.
        {
            let base = &mut self.pyramid.levels[0];
            base.buckets = n_base;
            base.counts.resize(n_base * n_cores, 0);
            base.activity.resize(n_base * n_lanes * 4, 0);
            base.suspect.resize(n_base, false);
        }

        // Append per-core offsets and add the new events into their
        // base buckets.
        let mut slot_of = [usize::MAX; 256];
        for (i, pc) in self.per_core.iter().enumerate() {
            slot_of[pc.core.tag() as usize] = i;
        }
        let times = trace.events.times();
        let tags = trace.events.tags();
        let base_tb = self.pyramid.base_tb;
        {
            let counts = &mut self.pyramid.levels[0].counts;
            for i in from_ev..n_new {
                let slot = slot_of[tags[i] as usize];
                self.per_core[slot].offsets.push(i as u32);
                let b = ((times[i] - base_tb) >> shift) as usize;
                counts[b * n_cores + slot] += 1;
            }
        }

        // Lanes: reuse a lane whose interval set is unchanged (the
        // tree build is deterministic, so equal inputs mean an equal
        // tree); rebuild a changed lane's tree and redistribute its
        // activity cells from scratch.
        let mut lanes_rebuilt = 0usize;
        let mut lane_changed = false;
        for (li, (lane, iv)) in self.lanes.iter_mut().zip(intervals).enumerate() {
            let unchanged = lane.start_tb == iv.start_tb
                && lane.stop_tb == iv.stop_tb
                && lane.tree.nodes == iv.intervals;
            if unchanged {
                continue;
            }
            lane.start_tb = iv.start_tb;
            lane.stop_tb = iv.stop_tb;
            lane.tree = IntervalTree::new(iv.intervals.to_vec());
            let activity = &mut self.pyramid.levels[0].activity;
            for b in 0..n_base {
                for k in 0..4 {
                    activity[(b * n_lanes + li) * 4 + k] = 0;
                }
            }
            for i in &iv.intervals {
                if i.end_tb <= i.start_tb {
                    continue;
                }
                let b_from = ((i.start_tb - base_tb) >> shift) as usize;
                let b_to = ((i.end_tb - 1 - base_tb) >> shift) as usize;
                for b in b_from..=b_to {
                    let bs = base_tb + b as u64 * width;
                    let overlap = i.end_tb.min(bs + width) - i.start_tb.max(bs);
                    activity[(b * n_lanes + li) * 4 + i.kind.index()] += overlap;
                }
            }
            lanes_rebuilt += 1;
            lane_changed = true;
        }

        // Suspicion is recomputed wholesale: bracketing can move
        // interior ranges as a gap's "after" record arrives.
        self.suspects = compute_suspect_ranges_columns(trace, loss);
        {
            let base = &mut self.pyramid.levels[0];
            base.suspect.iter_mut().for_each(|s| *s = false);
            for r in &self.suspects {
                if r.end_tb <= self.start_tb || r.start_tb >= self.start_tb + width * n_base as u64
                {
                    continue;
                }
                let lo = (r.start_tb.max(self.start_tb) - self.start_tb) >> shift;
                let hi = (r
                    .end_tb
                    .saturating_sub(1)
                    .max(r.start_tb.max(self.start_tb))
                    - self.start_tb)
                    >> shift;
                for b in lo..=hi.min(n_base as u64 - 1) {
                    base.suspect[b as usize] = true;
                }
            }
        }

        // Upper levels: recompute only the suffix reachable from
        // touched base buckets (everything, when a lane changed).
        // Including the last *old* bucket covers the parent that gains
        // its first sibling child when the base grows.
        let first_touched = if lane_changed {
            0
        } else if appended_events > 0 {
            (((times[from_ev] - base_tb) >> shift) as usize).min(old_n_base.saturating_sub(1))
        } else {
            old_n_base.saturating_sub(1)
        };
        let mut blocks_rebuilt = n_base - first_touched;
        self.rebuild_upper_levels(first_touched, &mut blocks_rebuilt);

        self.end_tb = end_tb;
        self.n_events = n_new;

        IndexDelta {
            appended_events,
            blocks_total: self.total_blocks(),
            blocks_rebuilt,
            lanes_total: self.lanes.len(),
            lanes_rebuilt,
            coarsened,
            full_rebuild: false,
        }
    }

    /// Recomputes pyramid levels above the base from bucket
    /// `from >> 1` per level upward, resizing levels for a grown base
    /// and adding or dropping top levels as needed. Suspect flags are
    /// recomputed over whole levels (cheap booleans); counts and
    /// activity only over the suffix, whose rebuilt-bucket count is
    /// added to `blocks_rebuilt`.
    fn rebuild_upper_levels(&mut self, first_touched: usize, blocks_rebuilt: &mut usize) {
        let p = &mut self.pyramid;
        let n_cores = p.n_cores;
        let n_lanes = p.n_lanes;
        let mut from = first_touched;
        let mut li = 0usize;
        loop {
            let child_buckets = p.levels[li].buckets;
            if child_buckets <= 1 {
                p.levels.truncate(li + 1);
                break;
            }
            let nb = child_buckets.div_ceil(2);
            let pfrom = from >> 1;
            let mut counts_sfx = vec![0u64; (nb - pfrom) * n_cores];
            let mut act_sfx = vec![0u64; (nb - pfrom) * n_lanes * 4];
            let mut suspect = vec![false; nb];
            {
                let child = &p.levels[li];
                for b in 0..child_buckets {
                    let parent = b / 2;
                    suspect[parent] |= child.suspect[b];
                    if parent < pfrom {
                        continue;
                    }
                    let pp = parent - pfrom;
                    for c in 0..n_cores {
                        counts_sfx[pp * n_cores + c] += child.counts[b * n_cores + c];
                    }
                    for k in 0..n_lanes * 4 {
                        act_sfx[pp * n_lanes * 4 + k] += child.activity[b * n_lanes * 4 + k];
                    }
                }
            }
            if li + 1 >= p.levels.len() {
                p.levels.push(PyramidLevel {
                    buckets: 0,
                    counts: Vec::new(),
                    activity: Vec::new(),
                    suspect: Vec::new(),
                });
            }
            let parent = &mut p.levels[li + 1];
            parent.buckets = nb;
            parent.counts.resize(nb * n_cores, 0);
            parent.activity.resize(nb * n_lanes * 4, 0);
            parent.counts[pfrom * n_cores..].copy_from_slice(&counts_sfx);
            parent.activity[pfrom * n_lanes * 4..].copy_from_slice(&act_sfx);
            parent.suspect = suspect;
            *blocks_rebuilt += nb - pfrom;
            from = pfrom;
            li += 1;
        }
    }
}

/// What [`TraceIndex::extend_columns`] did: how much of the index the
/// update touched, for incremental-cost accounting and the
/// `stream_smoke` bound (appending a small tail must rebuild a
/// proportionally small share of blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexDelta {
    /// Events appended by this update.
    pub appended_events: usize,
    /// Total pyramid buckets across every level, after the update.
    pub blocks_total: usize,
    /// Buckets whose count/activity accumulators were written.
    pub blocks_rebuilt: usize,
    /// SPE lanes in the index.
    pub lanes_total: usize,
    /// Lanes whose interval set changed and were rebuilt.
    pub lanes_rebuilt: usize,
    /// Whether the span outgrew the bucket cap and the base coarsened
    /// (a level drop — no accumulators rewritten).
    pub coarsened: bool,
    /// Whether the update fell back to a full rebuild.
    pub full_rebuild: bool,
}

impl IndexDelta {
    /// Rebuilt share of the pyramid, `0.0..=1.0`.
    pub fn rebuilt_fraction(&self) -> f64 {
        if self.blocks_total == 0 {
            0.0
        } else {
            self.blocks_rebuilt as f64 / self.blocks_total as f64
        }
    }
}

/// Chunked per-core offset extraction: the event vector is split into
/// `workers` contiguous chunks scanned concurrently; concatenating the
/// per-chunk runs in chunk order preserves ascending offsets.
fn extract_offsets(
    events: &[GlobalEvent],
    cores: &[TraceCore],
    slot_of: &[usize; 256],
    workers: usize,
) -> Vec<Vec<u32>> {
    let n_cores = cores.len();
    let scan = |base: usize, chunk: &[GlobalEvent]| {
        let mut per: Vec<Vec<u32>> = vec![Vec::new(); n_cores];
        for (i, e) in chunk.iter().enumerate() {
            per[slot_of[e.core.tag() as usize]].push((base + i) as u32);
        }
        per
    };
    let chunk_runs: Vec<Vec<Vec<u32>>> = if workers <= 1 || events.len() < 4096 {
        vec![scan(0, events)]
    } else {
        let chunk_len = events.len().div_ceil(workers);
        let chunks: Vec<&[GlobalEvent]> = events.chunks(chunk_len).collect();
        exec::map_indexed(Parallelism::from_threads(workers), chunks.len(), |ci| {
            scan(ci * chunk_len, chunks[ci])
        })
    };
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n_cores];
    for run in chunk_runs {
        for (slot, mut offs) in run.into_iter().enumerate() {
            out[slot].append(&mut offs);
        }
    }
    out
}

/// Level-0 event-count buckets, one core per task, round-robin over
/// the workers. `time_of` resolves a global offset to its timestamp
/// (row vector or time column).
fn count_buckets(
    time_of: &(dyn Fn(u32) -> u64 + Sync),
    per_core: &[Vec<u32>],
    base_tb: u64,
    shift: u32,
    n_base: usize,
    n_cores: usize,
    workers: usize,
) -> Vec<u64> {
    let count_one = |offsets: &Vec<u32>| {
        let mut buckets = vec![0u64; n_base];
        for &o in offsets {
            buckets[((time_of(o) - base_tb) >> shift) as usize] += 1;
        }
        buckets
    };
    let per_core_buckets: Vec<Vec<u64>> =
        exec::map_indexed(Parallelism::from_threads(workers), n_cores, |i| {
            count_one(&per_core[i])
        });
    let mut counts = vec![0u64; n_base * n_cores];
    for (ci, buckets) in per_core_buckets.iter().enumerate() {
        for (b, &n) in buckets.iter().enumerate() {
            counts[b * n_cores + ci] = n;
        }
    }
    counts
}

/// Per-lane interval tree construction and level-0 activity
/// distribution, lanes round-robin over the workers.
fn build_lanes(
    intervals: &[SpeIntervals],
    base_tb: u64,
    shift: u32,
    n_base: usize,
    workers: usize,
) -> (Vec<SpeLane>, Vec<u64>) {
    let n_lanes = intervals.len();
    let width = 1u64 << shift;
    let build_one = |iv: &SpeIntervals| {
        let mut buckets = vec![[0u64; 4]; n_base];
        for i in &iv.intervals {
            if i.end_tb <= i.start_tb {
                continue;
            }
            let b_from = ((i.start_tb - base_tb) >> shift) as usize;
            let b_to = ((i.end_tb - 1 - base_tb) >> shift) as usize;
            for (b, bucket) in buckets.iter_mut().enumerate().take(b_to + 1).skip(b_from) {
                let bs = base_tb + b as u64 * width;
                let overlap = i.end_tb.min(bs + width) - i.start_tb.max(bs);
                bucket[i.kind.index()] += overlap;
            }
        }
        (
            SpeLane {
                spe: iv.spe,
                start_tb: iv.start_tb,
                stop_tb: iv.stop_tb,
                tree: IntervalTree::new(iv.intervals.to_vec()),
            },
            buckets,
        )
    };
    let built: Vec<(SpeLane, Vec<[u64; 4]>)> =
        exec::map_indexed(Parallelism::from_threads(workers), n_lanes, |i| {
            build_one(&intervals[i])
        });
    let mut activity = vec![0u64; n_base * n_lanes * 4];
    let mut lanes = Vec::with_capacity(n_lanes);
    for (li, (lane, buckets)) in built.into_iter().enumerate() {
        for (b, ticks) in buckets.iter().enumerate() {
            for (k, &t) in ticks.iter().enumerate() {
                activity[(b * n_lanes + li) * 4 + k] = t;
            }
        }
        lanes.push(lane);
    }
    (lanes, activity)
}

/// Brute-force reference implementations of every index query — the
/// pre-index scan paths, kept alive as differential oracles. Gated
/// behind the (default-on) `scan-oracle` feature so production builds
/// can drop them with `--no-default-features`.
#[cfg(feature = "scan-oracle")]
pub mod oracle {
    use super::*;

    /// Linear-scan filter application: the brute-force reference for
    /// the index-backed [`EventFilter::apply`].
    pub fn filter_events<'a>(
        trace: &'a AnalyzedTrace,
        filter: &EventFilter,
    ) -> Vec<&'a GlobalEvent> {
        trace.events.iter().filter(|e| filter.matches(e)).collect()
    }

    /// Full-rescan window summary over the same core/lane ordering as
    /// [`TraceIndex::summarize`], with suspicion resolved from
    /// `suspects` by linear overlap scan.
    pub fn window_summary(
        trace: &AnalyzedTrace,
        intervals: &[SpeIntervals],
        suspects: &[SuspectRange],
        t0: u64,
        t1: u64,
    ) -> WindowSummary {
        let mut cores: Vec<TraceCore> = trace.events.iter().map(|e| e.core).collect();
        cores.sort_by_key(|c| c.tag());
        cores.dedup();
        let events = cores
            .iter()
            .map(|&core| {
                (
                    core,
                    trace
                        .events
                        .iter()
                        .filter(|e| e.core == core && e.time_tb >= t0 && e.time_tb < t1)
                        .count() as u64,
                )
            })
            .collect();
        let activity = intervals
            .iter()
            .map(|iv| {
                let mut ticks = [0u64; 4];
                for i in &iv.intervals {
                    let overlap = i.end_tb.min(t1).saturating_sub(i.start_tb.max(t0));
                    ticks[i.kind.index()] += overlap;
                }
                WindowActivity { spe: iv.spe, ticks }
            })
            .collect();
        WindowSummary {
            start_tb: t0,
            end_tb: t1,
            events,
            activity,
            suspect: suspects.iter().any(|r| r.overlaps(t0, t1)),
        }
    }

    /// Linear-scan stabbing query over the full interval sets.
    pub fn stab(intervals: &[SpeIntervals], spe: u8, t: u64) -> Option<Interval> {
        intervals
            .iter()
            .find(|iv| iv.spe == spe)?
            .intervals
            .iter()
            .copied()
            .find(|i| i.start_tb <= t && t < i.end_tb)
    }

    /// Full-set clip of every lane — [`SpeIntervals::clip`] per SPE.
    pub fn clip_all(intervals: &[SpeIntervals], t0: u64, t1: u64) -> Vec<SpeIntervals> {
        intervals.iter().map(|iv| iv.clip(t0, t1)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::GlobalEvent;
    use crate::intervals::build_intervals;
    use pdt::{EventCode, TraceHeader, VERSION};

    fn header() -> TraceHeader {
        TraceHeader {
            version: VERSION,
            num_ppe_threads: 1,
            num_spes: 2,
            core_hz: 3_200_000_000,
            timebase_divider: 120,
            dec_start: u32::MAX,
            group_mask: u32::MAX,
            spe_buffer_bytes: 2048,
        }
    }

    fn ev(t: u64, core: TraceCore, code: EventCode, seq: u64) -> GlobalEvent {
        GlobalEvent {
            time_tb: t,
            core,
            code,
            params: vec![0; 4],
            stream_seq: seq,
        }
    }

    /// Two SPEs with waits, one PPE thread, sorted globally.
    fn trace() -> AnalyzedTrace {
        use EventCode::*;
        let mut events = vec![
            ev(0, TraceCore::Ppe(0), PpeCtxRun, 0),
            ev(5, TraceCore::Ppe(0), PpeCtxRun, 1),
            ev(10, TraceCore::Spe(0), SpeCtxStart, 0),
            ev(20, TraceCore::Spe(0), SpeTagWaitBegin, 1),
            ev(30, TraceCore::Spe(1), SpeCtxStart, 0),
            ev(60, TraceCore::Spe(0), SpeTagWaitEnd, 2),
            ev(80, TraceCore::Spe(1), SpeMboxReadBegin, 1),
            ev(90, TraceCore::Spe(1), SpeMboxReadEnd, 2),
            ev(100, TraceCore::Spe(0), SpeStop, 3),
            ev(120, TraceCore::Spe(1), SpeStop, 3),
            ev(130, TraceCore::Ppe(0), PpeUser, 2),
        ];
        events.sort_by_key(|e| (e.time_tb, e.core.tag(), e.stream_seq));
        AnalyzedTrace {
            header: header(),
            events,
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        }
    }

    fn index_of(t: &AnalyzedTrace) -> (TraceIndex, Vec<SpeIntervals>) {
        let iv = build_intervals(t);
        let idx = TraceIndex::build(t, &iv, &LossReport::default());
        (idx, iv)
    }

    #[test]
    fn core_window_extraction_matches_scan() {
        let t = trace();
        let (idx, _) = index_of(&t);
        for core in [TraceCore::Ppe(0), TraceCore::Spe(0), TraceCore::Spe(1)] {
            for (a, b) in [(0, 200), (10, 100), (60, 60), (90, 10), (150, 400)] {
                let got: Vec<u64> = idx
                    .core_events_in(&t.events, core, a, b)
                    .map(|e| e.time_tb)
                    .collect();
                let want: Vec<u64> = t
                    .events
                    .iter()
                    .filter(|e| e.core == core && e.time_tb >= a && e.time_tb < b)
                    .map(|e| e.time_tb)
                    .collect();
                assert_eq!(got, want, "core {core} window [{a},{b})");
            }
        }
    }

    #[test]
    fn query_matches_oracle_across_filters() {
        let t = trace();
        let (idx, _) = index_of(&t);
        let filters = [
            EventFilter::new(),
            EventFilter::new().in_window(20, 90),
            EventFilter::new().on_core(TraceCore::Spe(1)),
            EventFilter::new()
                .in_window(0, 100)
                .on_core(TraceCore::Spe(0))
                .on_core(TraceCore::Ppe(0)),
            EventFilter::new().with_code(EventCode::SpeStop),
            EventFilter::new()
                .in_window(30, 120)
                .in_group(pdt::EventGroup::SpeMbox),
        ];
        for f in filters {
            let fast = idx.query(&t, &f);
            let slow: Vec<&GlobalEvent> = t.events.iter().filter(|e| f.matches(e)).collect();
            assert_eq!(fast, slow, "filter {f:?}");
        }
    }

    #[test]
    fn stab_and_clip_match_full_set() {
        let t = trace();
        let (idx, iv) = index_of(&t);
        for spe in [0u8, 1] {
            let full = iv.iter().find(|i| i.spe == spe).unwrap();
            for tick in [0, 10, 20, 59, 60, 80, 99, 100, 120, 500] {
                let fast = idx.stab(spe, tick);
                let slow = full
                    .intervals
                    .iter()
                    .copied()
                    .find(|i| i.start_tb <= tick && tick < i.end_tb);
                assert_eq!(fast, slow, "spe{spe} stab {tick}");
            }
            for (a, b) in [(0, 200), (15, 70), (60, 60), (90, 10), (100, 100)] {
                assert_eq!(
                    idx.clip(spe, a, b).unwrap(),
                    full.clip(a, b),
                    "spe{spe} clip [{a},{b})"
                );
            }
        }
    }

    #[cfg(feature = "scan-oracle")]
    #[test]
    fn summaries_are_exact_for_every_window() {
        let t = trace();
        let (idx, iv) = index_of(&t);
        let suspects = compute_suspect_ranges(&t, &LossReport::default());
        for a in (0..140).step_by(7) {
            for b in (0..150).step_by(11) {
                let fast = idx.summarize(&t, a, b);
                let slow = oracle::window_summary(&t, &iv, &suspects, a, b);
                assert_eq!(fast, slow, "window [{a},{b})");
            }
        }
        // Degenerate and out-of-range windows.
        for (a, b) in [(0, 0), (50, 50), (200, 100), (1000, 2000), (0, u64::MAX)] {
            assert_eq!(
                idx.summarize(&t, a, b),
                oracle::window_summary(&t, &iv, &suspects, a, b)
            );
        }
    }

    #[test]
    fn parallel_build_is_identical() {
        let t = trace();
        let iv = build_intervals(&t);
        let loss = LossReport::default();
        let one = TraceIndex::build_parallel(&t, &iv, &loss, 1);
        for threads in [2usize, 4, 8] {
            assert_eq!(one, TraceIndex::build_parallel(&t, &iv, &loss, threads));
        }
    }

    #[test]
    fn columnar_build_is_identical_to_row_build() {
        let t = trace();
        let iv = build_intervals(&t);
        let loss = LossReport::default();
        let cols = ColumnarTrace::from_analyzed(&t);
        let row = TraceIndex::build_parallel(&t, &iv, &loss, 1);
        for threads in [1usize, 2, 4] {
            assert_eq!(row, TraceIndex::build_columns(&cols, &iv, &loss, threads));
        }
    }

    #[test]
    fn columnar_suspect_ranges_match_row_ranges() {
        use pdt::{DecodeGap, RecordError};
        let t = trace();
        let cols = ColumnarTrace::from_analyzed(&t);
        let loss = LossReport {
            streams: vec![
                crate::loss::StreamLoss {
                    core: TraceCore::Spe(0),
                    decoded_records: 4,
                    tracer_dropped: 1,
                    gaps: vec![DecodeGap {
                        offset: 32,
                        len: 16,
                        est_records: 1,
                        records_before: 2,
                        cause: RecordError::ZeroLength,
                    }],
                    unanchored: false,
                },
                crate::loss::StreamLoss {
                    core: TraceCore::Ppe(0),
                    decoded_records: 3,
                    tracer_dropped: 0,
                    gaps: vec![DecodeGap {
                        offset: 0,
                        len: 8,
                        est_records: 1,
                        records_before: 1,
                        cause: RecordError::Truncated { have: 4, need: 8 },
                    }],
                    unanchored: true,
                },
            ],
        };
        assert_eq!(
            compute_suspect_ranges_columns(&cols, &loss),
            compute_suspect_ranges(&t, &loss)
        );
    }

    #[test]
    fn gap_brackets_become_suspect_ranges_and_buckets() {
        use pdt::{DecodeGap, RecordError};
        let t = trace();
        let iv = build_intervals(&t);
        // A gap on SPE0 between its records 1 (t=20) and 2 (t=60).
        let loss = LossReport {
            streams: vec![crate::loss::StreamLoss {
                core: TraceCore::Spe(0),
                decoded_records: 4,
                tracer_dropped: 0,
                gaps: vec![DecodeGap {
                    offset: 32,
                    len: 16,
                    est_records: 1,
                    records_before: 2,
                    cause: RecordError::ZeroLength,
                }],
                unanchored: false,
            }],
        };
        let ranges = compute_suspect_ranges(&t, &loss);
        assert_eq!(ranges.len(), 1);
        assert_eq!((ranges[0].start_tb, ranges[0].end_tb), (20, 61));

        let idx = TraceIndex::build(&t, &iv, &loss);
        assert!(idx.window_suspect(0, 200));
        assert!(idx.window_suspect(25, 30), "inside the bracket");
        assert!(!idx.window_suspect(61, 200), "after the bracket");
        assert!(!idx.window_suspect(0, 20), "before the bracket");
        // Buckets covering the bracket inherit the flag; the span here
        // is small enough that bucket width is 1 tick.
        let (n, w) = idx.bucket_geometry();
        assert_eq!(w, 1);
        assert!(n >= 131);
        assert!(idx.bucket_suspect(25));
        assert!(!idx.bucket_suspect(100));
        // Summaries over the bracket are flagged, clean windows not.
        assert!(idx.summarize(&t, 0, 200).suspect);
        assert!(!idx.summarize(&t, 70, 200).suspect);
    }

    #[test]
    fn interval_tree_handles_adversarial_sets() {
        // Overlapping and nested intervals (future-proofing: today's
        // lanes are disjoint, the tree does not assume it).
        let ivs = vec![
            Interval {
                start_tb: 0,
                end_tb: 100,
                kind: ActivityKind::Compute,
            },
            Interval {
                start_tb: 10,
                end_tb: 20,
                kind: ActivityKind::DmaWait,
            },
            Interval {
                start_tb: 15,
                end_tb: 95,
                kind: ActivityKind::MboxWait,
            },
            Interval {
                start_tb: 50,
                end_tb: 55,
                kind: ActivityKind::SignalWait,
            },
            Interval {
                start_tb: 90,
                end_tb: 130,
                kind: ActivityKind::Compute,
            },
        ];
        let tree = IntervalTree::new(ivs.clone());
        for (a, b) in [
            (0u64, 5),
            (12, 13),
            (55, 90),
            (0, 200),
            (129, 130),
            (130, 200),
        ] {
            let mut want: Vec<Interval> = ivs
                .iter()
                .copied()
                .filter(|i| i.end_tb > a && i.start_tb < b)
                .collect();
            want.sort_by_key(|i| (i.start_tb, i.end_tb));
            assert_eq!(tree.range(a, b), want, "range [{a},{b})");
        }
    }

    #[test]
    fn empty_trace_indexes_cleanly() {
        let t = AnalyzedTrace {
            header: header(),
            events: vec![],
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        };
        let (idx, _) = index_of(&t);
        assert_eq!(idx.cores().count(), 0);
        assert_eq!(
            idx.query(&t, &EventFilter::new()),
            Vec::<&GlobalEvent>::new()
        );
        let s = idx.summarize(&t, 0, 100);
        assert!(s.events.is_empty() && s.activity.is_empty() && !s.suspect);
    }
}
