//! Simple histograms for DMA sizes and latencies.

/// A power-of-two bucketed histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Log2Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Folds another histogram into this one. Every field is a
    /// commutative reduction (bucket-wise sums, min/max), so merging
    /// per-shard histograms yields exactly the histogram a single
    /// sequential pass over all samples would have built.
    pub fn merge(&mut self, other: &Log2Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (b, c) in other.counts.iter().enumerate() {
            self.counts[b] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)`.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(b, c)| {
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                let hi = if b == 0 { 0 } else { (1u64 << b) - 1 };
                (lo, hi, *c)
            })
            .collect()
    }

    /// Renders a compact text view ("[lo..hi] ### count" rows).
    pub fn render(&self, label: &str) -> String {
        let mut out = format!(
            "{label}: n={} mean={:.1} min={} max={}\n",
            self.total,
            self.mean(),
            self.min.unwrap_or(0),
            self.max.unwrap_or(0)
        );
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (lo, hi, c) in self.buckets() {
            let bar = "#".repeat(((c * 40) / peak).max(1) as usize);
            out.push_str(&format!("  [{lo:>10}..{hi:>10}] {bar} {c}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.add(v);
        }
        let b = h.buckets();
        // 0 → [0,0]; 1 → [1,1]; 2,3 → [2,3]; 4,7 → [4,7]; 8 → [8,15]; 1024 → [1024,2047]
        assert_eq!(
            b,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (1024, 2047, 1)
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
    }

    #[test]
    fn mean_and_sum() {
        let mut h = Log2Histogram::new();
        h.add(10);
        h.add(30);
        assert_eq!(h.sum(), 40);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(Log2Histogram::new().mean(), 0.0);
    }

    #[test]
    fn render_contains_rows() {
        let mut h = Log2Histogram::new();
        h.add(100);
        h.add(120);
        let s = h.render("latency");
        assert!(s.contains("latency: n=2"));
        assert!(s.contains('#'));
    }
}
