//! MFC queue-occupancy analysis: how many DMA commands each SPE keeps
//! in flight over time, reconstructed from trace events alone.
//!
//! A command becomes outstanding at its issue record and is retired at
//! the first `SpeTagWaitEnd` whose mask covers its tag (the analyzer
//! cannot see individual completions — neither could the original TA —
//! so this is the *observable* outstanding count, an upper bound).
//! Deep sustained occupancy is how effective double buffering looks in
//! a trace; an occupancy stuck at 0/1 is the single-buffered
//! anti-pattern the paper's use case fixes.

use pdt::{EventCode, TraceCore};

use crate::analyze::AnalyzedTrace;
use crate::columns::ColumnarTrace;

/// A step in an occupancy time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyStep {
    /// When the outstanding count changed (ticks).
    pub time_tb: u64,
    /// The outstanding command count from this time on.
    pub outstanding: u32,
}

/// One SPE's occupancy series and summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeOccupancy {
    /// The SPE.
    pub spe: u8,
    /// The step series, in time order.
    pub steps: Vec<OccupancyStep>,
    /// Maximum observed outstanding count.
    pub peak: u32,
    /// Time-weighted mean outstanding count over the series' span.
    pub mean: f64,
}

impl SpeOccupancy {
    /// Builds the summary (peak, time-weighted mean) from a step
    /// series. The mean weights each step by the time to the next
    /// step, so it covers the span from the first to the last step.
    pub fn from_steps(spe: u8, steps: Vec<OccupancyStep>) -> SpeOccupancy {
        let peak = steps.iter().map(|s| s.outstanding).max().unwrap_or(0);
        let (mut area, mut span) = (0f64, 0u64);
        for w in steps.windows(2) {
            let dt = w[1].time_tb - w[0].time_tb;
            area += w[0].outstanding as f64 * dt as f64;
            span += dt;
        }
        let mean = if span == 0 { 0.0 } else { area / span as f64 };
        SpeOccupancy {
            spe,
            steps,
            peak,
            mean,
        }
    }

    /// Restricts the series to the half-open window `[t0, t1)` by
    /// binary search, with a carry-in step at `t0` holding the
    /// outstanding count in force when the window opens. Peak and mean
    /// are recomputed over the windowed series.
    pub fn window(&self, t0: u64, t1: u64) -> SpeOccupancy {
        let t1 = t1.max(t0);
        let lo = self.steps.partition_point(|s| s.time_tb < t0);
        let hi = self.steps.partition_point(|s| s.time_tb < t1);
        let mut steps = Vec::with_capacity(hi - lo + 1);
        let opens_mid_series = lo > 0 && t1 > t0;
        let first_is_at_t0 = self.steps.get(lo).is_some_and(|s| s.time_tb == t0) && lo < hi;
        if opens_mid_series && !first_is_at_t0 {
            steps.push(OccupancyStep {
                time_tb: t0,
                outstanding: self.steps[lo - 1].outstanding,
            });
        }
        steps.extend_from_slice(&self.steps[lo..hi]);
        Self::from_steps(self.spe, steps)
    }

    /// Fraction of the observed span with at least `k` commands
    /// outstanding.
    pub fn fraction_at_least(&self, k: u32) -> f64 {
        let (mut covered, mut total) = (0u64, 0u64);
        for w in self.steps.windows(2) {
            let dt = w[1].time_tb - w[0].time_tb;
            total += dt;
            if w[0].outstanding >= k {
                covered += dt;
            }
        }
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    }
}

/// Builds the occupancy series for every SPE in the trace.
pub fn dma_occupancy(trace: &AnalyzedTrace) -> Vec<SpeOccupancy> {
    let mut out = Vec::new();
    for spe in trace.spes() {
        let mut per_tag = [0u32; 32];
        let mut outstanding = 0u32;
        let mut steps = Vec::new();
        let mut peak = 0u32;
        for e in trace.core_events(TraceCore::Spe(spe)) {
            match e.code {
                EventCode::SpeDmaGet | EventCode::SpeDmaPut => {
                    let tag = (e.params[3] & 0xff) as usize % 32;
                    per_tag[tag] += 1;
                    outstanding += 1;
                }
                EventCode::SpeTagWaitEnd => {
                    let mask = e.params[0] as u32;
                    for (t, count) in per_tag.iter_mut().enumerate() {
                        if mask & (1 << t) != 0 {
                            outstanding -= *count;
                            *count = 0;
                        }
                    }
                }
                _ => continue,
            }
            peak = peak.max(outstanding);
            steps.push(OccupancyStep {
                time_tb: e.time_tb,
                outstanding,
            });
        }
        if steps.is_empty() {
            continue;
        }
        debug_assert_eq!(peak, steps.iter().map(|s| s.outstanding).max().unwrap_or(0));
        out.push(SpeOccupancy::from_steps(spe, steps));
    }
    out
}

/// [`dma_occupancy`] over the columnar store: the same issue/retire
/// state machine, walking each SPE's memoized offset slice. The
/// session uses this path; the row function remains the differential
/// oracle.
pub fn dma_occupancy_columns(trace: &ColumnarTrace) -> Vec<SpeOccupancy> {
    dma_occupancy_columns_par(trace, crate::exec::Parallelism::Serial)
}

/// [`dma_occupancy_columns`] with the per-SPE lanes fanned out on the
/// shared pool; lanes assemble in SPE order, so the result equals the
/// sequential build.
pub(crate) fn dma_occupancy_columns_par(
    trace: &ColumnarTrace,
    par: crate::exec::Parallelism,
) -> Vec<SpeOccupancy> {
    let spes = trace.spes();
    crate::exec::map_indexed(par, spes.len(), |i| {
        spe_dma_occupancy_columns(trace, spes[i])
    })
    .into_iter()
    .flatten()
    .collect()
}

/// One SPE's lane of [`dma_occupancy_columns`]: the independent shard
/// unit the parallel product scheduler fans out per SPE. `None` when
/// the SPE issued no DMA or tag-wait events.
pub(crate) fn spe_dma_occupancy_columns(trace: &ColumnarTrace, spe: u8) -> Option<SpeOccupancy> {
    let mut per_tag = [0u32; 32];
    let mut outstanding = 0u32;
    let mut steps = Vec::new();
    for v in trace.core_events(TraceCore::Spe(spe)) {
        match v.code {
            EventCode::SpeDmaGet | EventCode::SpeDmaPut => {
                let tag = (v.params[3] & 0xff) as usize % 32;
                per_tag[tag] += 1;
                outstanding += 1;
            }
            EventCode::SpeTagWaitEnd => {
                let mask = v.params[0] as u32;
                for (t, count) in per_tag.iter_mut().enumerate() {
                    if mask & (1 << t) != 0 {
                        outstanding -= *count;
                        *count = 0;
                    }
                }
            }
            _ => continue,
        }
        steps.push(OccupancyStep {
            time_tb: v.time_tb,
            outstanding,
        });
    }
    if steps.is_empty() {
        return None;
    }
    Some(SpeOccupancy::from_steps(spe, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::GlobalEvent;
    use pdt::{TraceHeader, VERSION};

    fn ev(t: u64, code: EventCode, params: Vec<u64>) -> GlobalEvent {
        GlobalEvent {
            time_tb: t,
            core: TraceCore::Spe(0),
            code,
            params,
            stream_seq: t,
        }
    }

    fn trace(events: Vec<GlobalEvent>) -> AnalyzedTrace {
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events,
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        }
    }

    #[test]
    fn occupancy_tracks_issue_and_retire() {
        use EventCode::*;
        let t = trace(vec![
            ev(0, SpeDmaGet, vec![0, 0, 4096, 0]),
            ev(10, SpeDmaGet, vec![0, 0, 4096, 1]),
            ev(20, SpeTagWaitEnd, vec![0b01]), // retires tag 0
            ev(30, SpeDmaPut, vec![0, 0, 4096, 1]),
            ev(40, SpeTagWaitEnd, vec![0b10]), // retires both tag-1 cmds
        ]);
        let occ = dma_occupancy(&t);
        assert_eq!(occ.len(), 1);
        let s = &occ[0];
        let series: Vec<(u64, u32)> = s.steps.iter().map(|x| (x.time_tb, x.outstanding)).collect();
        assert_eq!(series, vec![(0, 1), (10, 2), (20, 1), (30, 2), (40, 0)]);
        assert_eq!(s.peak, 2);
        // Mean over [0,40): (1*10 + 2*10 + 1*10 + 2*10)/40 = 1.5
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert!((s.fraction_at_least(2) - 0.5).abs() < 1e-12);
        assert!((s.fraction_at_least(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_carries_in_the_outstanding_count() {
        use EventCode::*;
        let t = trace(vec![
            ev(0, SpeDmaGet, vec![0, 0, 4096, 0]),
            ev(10, SpeDmaGet, vec![0, 0, 4096, 1]),
            ev(20, SpeTagWaitEnd, vec![0b01]),
            ev(30, SpeDmaPut, vec![0, 0, 4096, 1]),
            ev(40, SpeTagWaitEnd, vec![0b10]),
        ]);
        let full = &dma_occupancy(&t)[0];
        // Window opening mid-series: carry-in step at t0 with the
        // count in force (2 from the step at t=10).
        let w = full.window(15, 40);
        let series: Vec<(u64, u32)> = w.steps.iter().map(|x| (x.time_tb, x.outstanding)).collect();
        assert_eq!(series, vec![(15, 2), (20, 1), (30, 2)]);
        assert_eq!(w.peak, 2);
        // Window starting exactly on a step: no duplicate carry-in.
        let exact = full.window(10, 40);
        assert_eq!(
            exact.steps[0],
            OccupancyStep {
                time_tb: 10,
                outstanding: 2
            }
        );
        assert_eq!(exact.steps.len(), 3);
        // Degenerate windows are empty.
        assert!(full.window(15, 15).steps.is_empty());
        assert!(full.window(30, 20).steps.is_empty());
        // Past the series end the last count (0 here) carries forward.
        let past = full.window(100, 200);
        assert_eq!(
            past.steps,
            vec![OccupancyStep {
                time_tb: 100,
                outstanding: 0
            }]
        );
        assert_eq!(past.peak, 0);
        // Full-span window reproduces the series.
        assert_eq!(full.window(0, u64::MAX), *full);
    }

    #[test]
    fn columnar_occupancy_matches_row_occupancy() {
        use EventCode::*;
        let t = trace(vec![
            ev(0, SpeDmaGet, vec![0, 0, 4096, 0]),
            ev(10, SpeDmaGet, vec![0, 0, 4096, 1]),
            ev(20, SpeTagWaitEnd, vec![0b01]),
            ev(30, SpeDmaPut, vec![0, 0, 4096, 1]),
            ev(40, SpeTagWaitEnd, vec![0b10]),
        ]);
        let cols = ColumnarTrace::from_analyzed(&t);
        assert_eq!(dma_occupancy_columns(&cols), dma_occupancy(&t));
        let empty = ColumnarTrace::from_analyzed(&trace(vec![]));
        assert!(dma_occupancy_columns(&empty).is_empty());
    }

    #[test]
    fn empty_or_dma_free_trace_yields_nothing() {
        use EventCode::*;
        assert!(dma_occupancy(&trace(vec![])).is_empty());
        let t = trace(vec![ev(0, SpeUser, vec![1, 0, 0])]);
        assert!(dma_occupancy(&t).is_empty());
    }

    #[test]
    fn double_buffering_shows_deeper_occupancy_than_single() {
        use EventCode::*;
        // Single-buffered: issue, wait, issue, wait.
        let single = trace(vec![
            ev(0, SpeDmaGet, vec![0, 0, 4096, 0]),
            ev(10, SpeTagWaitEnd, vec![1]),
            ev(20, SpeDmaGet, vec![0, 0, 4096, 0]),
            ev(30, SpeTagWaitEnd, vec![1]),
        ]);
        // Double-buffered: two outstanding most of the time.
        let double = trace(vec![
            ev(0, SpeDmaGet, vec![0, 0, 4096, 0]),
            ev(1, SpeDmaGet, vec![0, 0, 4096, 1]),
            ev(10, SpeTagWaitEnd, vec![0b01]),
            ev(11, SpeDmaGet, vec![0, 0, 4096, 0]),
            ev(20, SpeTagWaitEnd, vec![0b10]),
            ev(21, SpeDmaGet, vec![0, 0, 4096, 1]),
            ev(30, SpeTagWaitEnd, vec![0b11]),
        ]);
        let s = &dma_occupancy(&single)[0];
        let d = &dma_occupancy(&double)[0];
        assert!(d.mean > s.mean, "double {} vs single {}", d.mean, s.mean);
        assert!(d.peak >= 2 && s.peak == 1);
    }
}
