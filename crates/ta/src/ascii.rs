//! ASCII rendering of timelines, for terminals and test assertions.
//!
//! Each lane is one row; each column covers `span / width` ticks and
//! shows the activity that dominates it:
//!
//! ```text
//! =  compute      d  DMA wait      m  mailbox wait      s  signal wait
//! .  idle (outside the context's lifetime)
//! ```

use crate::intervals::ActivityKind;
use crate::timeline::Timeline;

fn glyph(kind: ActivityKind) -> char {
    match kind {
        ActivityKind::Compute => '=',
        ActivityKind::DmaWait => 'd',
        ActivityKind::MboxWait => 'm',
        ActivityKind::SignalWait => 's',
    }
}

/// Renders a timeline as fixed-width text, `width` columns of chart per
/// lane. Front door:
/// [`Analysis::render`](crate::session::Analysis::render) with
/// [`ReportKind::Ascii`](crate::report::ReportKind::Ascii).
pub(crate) fn render_ascii_impl(timeline: &Timeline, width: usize) -> String {
    let width = width.max(10);
    let label_w = timeline
        .lanes
        .iter()
        .map(|l| l.label.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let span = timeline.span() as f64;
    let mut out = String::new();
    out.push_str(&format!(
        "timeline {}..{} ticks ({} per column)\n",
        timeline.start_tb,
        timeline.end_tb,
        (span / width as f64).ceil() as u64
    ));
    for lane in &timeline.lanes {
        let mut row = vec!['.'; width];
        for seg in &lane.segments {
            // Midpoint-dominance sampling: a column takes the kind of
            // the segment covering its midpoint.
            let c0 = ((seg.start_tb - timeline.start_tb) as f64 / span * width as f64) as usize;
            let c1 = (((seg.end_tb - timeline.start_tb) as f64 / span * width as f64).ceil()
                as usize)
                .min(width);
            for cell in row.iter_mut().take(c1).skip(c0.min(width)) {
                *cell = glyph(seg.kind);
            }
        }
        for m in &lane.markers {
            let c = (((m.time_tb - timeline.start_tb) as f64 / span) * width as f64) as usize;
            if c < width {
                row[c] = '|';
            }
        }
        out.push_str(&format!(
            "{:<label_w$} {}\n",
            lane.label,
            row.iter().collect::<String>()
        ));
    }
    out.push_str(&format!(
        "{:<label_w$} {}\n",
        "", "legend: = compute, d dma-wait, m mbox-wait, s sig-wait, | event, . idle"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Lane, Marker, Segment};
    use pdt::{EventCode, TraceCore};

    fn timeline() -> Timeline {
        Timeline {
            start_tb: 0,
            end_tb: 100,
            lanes: vec![
                Lane {
                    label: "PPE.0".into(),
                    core: TraceCore::Ppe(0),
                    segments: vec![],
                    markers: vec![Marker {
                        time_tb: 0,
                        code: EventCode::PpeCtxRun,
                    }],
                },
                Lane {
                    label: "SPE0".into(),
                    core: TraceCore::Spe(0),
                    segments: vec![
                        Segment {
                            start_tb: 0,
                            end_tb: 50,
                            kind: ActivityKind::Compute,
                        },
                        Segment {
                            start_tb: 50,
                            end_tb: 100,
                            kind: ActivityKind::DmaWait,
                        },
                    ],
                    markers: vec![],
                },
            ],
        }
    }

    #[test]
    fn rows_show_expected_glyphs() {
        let s = render_ascii_impl(&timeline(), 20);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("timeline 0..100"));
        assert!(lines[1].starts_with("PPE.0"));
        assert!(lines[1].contains('|'));
        let spe = lines[2];
        assert!(spe.starts_with("SPE0"));
        let chart: String = spe.split_whitespace().last().unwrap().to_string();
        assert_eq!(chart.len(), 20);
        assert_eq!(&chart[..10], "==========");
        assert_eq!(&chart[10..], "dddddddddd");
    }

    #[test]
    fn legend_is_present() {
        let s = render_ascii_impl(&timeline(), 30);
        assert!(s.contains("legend:"));
    }

    #[test]
    fn narrow_width_is_clamped() {
        let s = render_ascii_impl(&timeline(), 1);
        assert!(s.lines().count() >= 3);
    }
}
