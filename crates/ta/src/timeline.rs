//! The timeline model behind the SVG and ASCII renderers.
//!
//! A [`Timeline`] is what the Trace Analyzer's main view shows: one
//! lane per core, activity segments on SPE lanes, and point markers for
//! discrete events (PPE calls, user events).

use pdt::{EventCode, TraceCore};

use crate::analyze::AnalyzedTrace;
use crate::columns::ColumnarTrace;
use crate::index::TraceIndex;
use crate::intervals::{build_intervals, ActivityKind, SpeIntervals};

/// A colored activity segment on a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Start, timebase ticks.
    pub start_tb: u64,
    /// End, timebase ticks.
    pub end_tb: u64,
    /// Activity classification.
    pub kind: ActivityKind,
}

/// A point event on a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Marker {
    /// Event time, timebase ticks.
    pub time_tb: u64,
    /// The event.
    pub code: EventCode,
}

/// One core's lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lane {
    /// Display label.
    pub label: String,
    /// The core.
    pub core: TraceCore,
    /// Activity segments (SPE lanes only).
    pub segments: Vec<Segment>,
    /// Point markers.
    pub markers: Vec<Marker>,
}

/// The complete timeline model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Earliest tick shown.
    pub start_tb: u64,
    /// Latest tick shown.
    pub end_tb: u64,
    /// Lanes, PPE first then SPEs in index order.
    pub lanes: Vec<Lane>,
}

impl Timeline {
    /// Timeline span in ticks (at least 1 to keep renderers sane).
    pub fn span(&self) -> u64 {
        (self.end_tb - self.start_tb).max(1)
    }
}

/// Which point events become markers.
pub(crate) fn is_marker(core: TraceCore, code: EventCode) -> bool {
    match core {
        TraceCore::Ppe(_) => true, // every PPE call is a marker
        TraceCore::Spe(_) => matches!(
            code,
            EventCode::SpeUser | EventCode::SpeCtxStart | EventCode::SpeStop
        ),
    }
}

/// Builds the timeline model from an analyzed trace.
///
/// New code should prefer [`Analysis::timeline`](crate::session::Analysis::timeline),
/// which shares one interval pass with the statistics and memoizes the
/// result; this function remains for compatibility.
pub fn build_timeline(trace: &AnalyzedTrace) -> Timeline {
    build_timeline_with(trace, &build_intervals(trace))
}

/// Builds the timeline model from already-built intervals, so a caller
/// deriving several products from one trace pays the interval pass
/// once. [`build_timeline`] is this with a fresh interval build.
pub fn build_timeline_with(trace: &AnalyzedTrace, intervals: &[SpeIntervals]) -> Timeline {
    let start_tb = trace.start_tb();
    let end_tb = trace.end_tb();
    let mut lanes = Vec::new();

    // PPE lanes (one per hardware thread that produced events).
    let mut ppe_threads: Vec<u8> = trace
        .events
        .iter()
        .filter_map(|e| match e.core {
            TraceCore::Ppe(t) => Some(t),
            TraceCore::Spe(_) => None,
        })
        .collect();
    ppe_threads.sort_unstable();
    ppe_threads.dedup();
    for t in ppe_threads {
        let core = TraceCore::Ppe(t);
        lanes.push(Lane {
            label: format!("PPE.{t}"),
            core,
            segments: Vec::new(),
            markers: trace
                .core_events(core)
                .map(|e| Marker {
                    time_tb: e.time_tb,
                    code: e.code,
                })
                .collect(),
        });
    }

    // SPE lanes from intervals.
    for iv in intervals {
        let core = TraceCore::Spe(iv.spe);
        let ctx = trace
            .anchors
            .iter()
            .find(|a| a.spe == iv.spe)
            .map(|a| a.ctx);
        let label = match ctx.and_then(|c| trace.ctx_name(c)) {
            Some(name) => format!("SPE{} ({name})", iv.spe),
            None => format!("SPE{}", iv.spe),
        };
        lanes.push(Lane {
            label,
            core,
            segments: iv
                .intervals
                .iter()
                .map(|i| Segment {
                    start_tb: i.start_tb,
                    end_tb: i.end_tb,
                    kind: i.kind,
                })
                .collect(),
            markers: trace
                .core_events(core)
                .filter(|e| is_marker(core, e.code))
                .map(|e| Marker {
                    time_tb: e.time_tb,
                    code: e.code,
                })
                .collect(),
        });
    }

    Timeline {
        start_tb,
        end_tb,
        lanes,
    }
}

/// [`build_timeline_with`] over the columnar store: lane discovery
/// reads the memoized per-core offsets, markers come from per-core
/// offset slices, and SPE labels resolve through the string interner.
/// The session uses this path; the row function remains the
/// differential oracle.
pub fn build_timeline_columns(trace: &ColumnarTrace, intervals: &[SpeIntervals]) -> Timeline {
    let start_tb = trace.start_tb();
    let end_tb = trace.end_tb();
    let mut lanes = Vec::new();

    // Markers need only the time and code columns; reading them
    // directly skips the per-event view construction (params lookup,
    // sequence decode) on this hot path.
    let times = trace.events.times();
    let codes = trace.events.codes();
    let markers_of = |core: TraceCore, all: bool| -> Vec<Marker> {
        trace
            .core_slice(core)
            .iter()
            .map(|&o| o as usize)
            .filter(|&o| all || is_marker(core, codes[o]))
            .map(|o| Marker {
                time_tb: times[o],
                code: codes[o],
            })
            .collect()
    };

    // PPE lanes: the memoized core offsets are tag-sorted, so PPE
    // threads come out ascending without a scan over the events.
    for (core, _) in trace.core_offsets() {
        let TraceCore::Ppe(t) = *core else { continue };
        lanes.push(Lane {
            label: format!("PPE.{t}"),
            core: *core,
            segments: Vec::new(),
            markers: markers_of(*core, true),
        });
    }

    // SPE lanes from intervals, labels resolved through the interner.
    for iv in intervals {
        let core = TraceCore::Spe(iv.spe);
        let ctx = trace
            .anchors
            .iter()
            .find(|a| a.spe == iv.spe)
            .map(|a| a.ctx);
        let label = match ctx.and_then(|c| trace.ctx_name(c)) {
            Some(name) => format!("SPE{} ({name})", iv.spe),
            None => format!("SPE{}", iv.spe),
        };
        lanes.push(Lane {
            label,
            core,
            segments: iv
                .intervals
                .iter()
                .map(|i| Segment {
                    start_tb: i.start_tb,
                    end_tb: i.end_tb,
                    kind: i.kind,
                })
                .collect(),
            markers: markers_of(core, false),
        });
    }

    Timeline {
        start_tb,
        end_tb,
        lanes,
    }
}

/// Builds the timeline model restricted to the half-open window
/// `[t0, t1)`, extracting markers and clipping segments through the
/// session's [`TraceIndex`] instead of rescanning the trace. The lane
/// set and labels match [`build_timeline_with`] on the full trace;
/// only each lane's content is windowed.
pub(crate) fn build_timeline_where(
    trace: &AnalyzedTrace,
    index: &TraceIndex,
    t0: u64,
    t1: u64,
) -> Timeline {
    let mut lanes = Vec::new();
    let marker_of = |e: &crate::analyze::GlobalEvent| Marker {
        time_tb: e.time_tb,
        code: e.code,
    };

    let mut ppe_threads: Vec<u8> = trace
        .events
        .iter()
        .filter_map(|e| match e.core {
            TraceCore::Ppe(t) => Some(t),
            TraceCore::Spe(_) => None,
        })
        .collect();
    ppe_threads.sort_unstable();
    ppe_threads.dedup();
    for t in ppe_threads {
        let core = TraceCore::Ppe(t);
        lanes.push(Lane {
            label: format!("PPE.{t}"),
            core,
            segments: Vec::new(),
            markers: index
                .core_events_in(&trace.events, core, t0, t1)
                .map(marker_of)
                .collect(),
        });
    }

    for spe in index.spes().collect::<Vec<_>>() {
        let core = TraceCore::Spe(spe);
        let ctx = trace.anchors.iter().find(|a| a.spe == spe).map(|a| a.ctx);
        let label = match ctx.and_then(|c| trace.ctx_name(c)) {
            Some(name) => format!("SPE{spe} ({name})"),
            None => format!("SPE{spe}"),
        };
        let clipped = index.clip(spe, t0, t1).expect("lane exists");
        lanes.push(Lane {
            label,
            core,
            segments: clipped
                .intervals
                .iter()
                .map(|i| Segment {
                    start_tb: i.start_tb,
                    end_tb: i.end_tb,
                    kind: i.kind,
                })
                .collect(),
            markers: index
                .core_events_in(&trace.events, core, t0, t1)
                .filter(|e| is_marker(core, e.code))
                .map(marker_of)
                .collect(),
        });
    }

    Timeline {
        start_tb: t0,
        end_tb: t1.max(t0),
        lanes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{GlobalEvent, SpeAnchor};
    use pdt::{TraceHeader, VERSION};

    fn trace() -> AnalyzedTrace {
        use EventCode::*;
        let mk = |t: u64, core: TraceCore, code, params: Vec<u64>| GlobalEvent {
            time_tb: t,
            core,
            code,
            params,
            stream_seq: t,
        };
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events: vec![
                mk(0, TraceCore::Ppe(0), PpeCtxCreate, vec![0]),
                mk(10, TraceCore::Ppe(0), PpeCtxRun, vec![0, 0, 0]),
                mk(10, TraceCore::Spe(0), SpeCtxStart, vec![0]),
                mk(20, TraceCore::Spe(0), SpeTagWaitBegin, vec![1, 0]),
                mk(60, TraceCore::Spe(0), SpeTagWaitEnd, vec![1]),
                mk(80, TraceCore::Spe(0), SpeUser, vec![5, 0, 0]),
                mk(100, TraceCore::Spe(0), SpeStop, vec![0]),
            ],
            ctx_names: vec![(0, "kern".into())],
            anchors: vec![SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 10,
                dec_start: u32::MAX,
            }],
            dropped: 0,
        }
    }

    #[test]
    fn lanes_cover_ppe_and_spes_with_labels() {
        let t = build_timeline(&trace());
        assert_eq!(t.lanes.len(), 2);
        assert_eq!(t.lanes[0].label, "PPE.0");
        assert_eq!(t.lanes[1].label, "SPE0 (kern)");
        assert_eq!(t.start_tb, 0);
        assert_eq!(t.end_tb, 100);
        assert_eq!(t.span(), 100);
    }

    #[test]
    fn spe_lane_has_segments_and_markers() {
        let t = build_timeline(&trace());
        let spe = &t.lanes[1];
        assert_eq!(spe.segments.len(), 3); // compute, dma-wait, compute
        assert_eq!(spe.segments[1].kind, ActivityKind::DmaWait);
        // Markers: start, user, stop.
        assert_eq!(spe.markers.len(), 3);
        assert!(spe
            .markers
            .iter()
            .any(|m| m.code == EventCode::SpeUser && m.time_tb == 80));
    }

    #[test]
    fn columnar_timeline_matches_row_timeline() {
        let t = trace();
        let cols = ColumnarTrace::from_analyzed(&t);
        let iv = build_intervals(&t);
        assert_eq!(build_timeline_columns(&cols, &iv), build_timeline(&t));
    }

    #[test]
    fn ppe_lane_is_markers_only() {
        let t = build_timeline(&trace());
        let ppe = &t.lanes[0];
        assert!(ppe.segments.is_empty());
        assert_eq!(ppe.markers.len(), 2);
    }
}
