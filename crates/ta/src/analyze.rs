//! Trace loading and global-timeline reconstruction.
//!
//! The analyzer's first job is to place every record on one global
//! timeline. PPE records carry timebase timestamps directly. SPE
//! records carry *decrementer snapshots* — a 32-bit counter that runs
//! backwards and wraps — so the analyzer:
//!
//! 1. finds each SPE's `PpeCtxRun` record (the PDT sync record, which
//!    carries the decrementer start value and is timestamped with the
//!    PPE timebase at the `spe_context_run` call), and
//! 2. walks the SPE stream in recording order, accumulating elapsed
//!    ticks with wrap-safe arithmetic (`prev.wrapping_sub(cur)`).
//!
//! The anchor approximates the SPU start time with the PPE run-call
//! time, so reconstructed SPE timestamps carry a small constant skew
//! (the context start latency). Experiment E10 quantifies this skew
//! against simulator ground truth.

use pdt::{EventCode, RecordError, TraceCore, TraceFile, TraceHeader, TraceRecord};

use crate::loss::{LossReport, StreamLoss};

/// A record placed on the global timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalEvent {
    /// Reconstructed time in timebase ticks.
    pub time_tb: u64,
    /// Producing core.
    pub core: TraceCore,
    /// Event code.
    pub code: EventCode,
    /// Parameter words.
    pub params: Vec<u64>,
    /// Per-core recording sequence number (order within the stream).
    pub stream_seq: u64,
}

/// The decrementer/timebase synchronization anchor for one SPE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeAnchor {
    /// The SPE index.
    pub spe: u8,
    /// The context that ran on it.
    pub ctx: u32,
    /// Timebase at the PPE's run call.
    pub run_tb: u64,
    /// Decrementer value loaded at start.
    pub dec_start: u32,
}

/// A fully reconstructed trace, ready for analysis.
#[derive(Debug, Clone)]
pub struct AnalyzedTrace {
    /// Header copied from the trace file.
    pub header: TraceHeader,
    /// All events, sorted by `(time_tb, core, stream_seq)`.
    pub events: Vec<GlobalEvent>,
    /// Context names.
    pub ctx_names: Vec<(u32, String)>,
    /// Per-SPE sync anchors.
    pub anchors: Vec<SpeAnchor>,
    /// Records the tracers dropped (from stream metadata).
    pub dropped: u64,
}

impl AnalyzedTrace {
    /// Events produced by `core`, in time order.
    pub fn core_events(&self, core: TraceCore) -> impl Iterator<Item = &GlobalEvent> {
        self.events.iter().filter(move |e| e.core == core)
    }

    /// The last timestamp in the trace (ticks).
    pub fn end_tb(&self) -> u64 {
        self.events.iter().map(|e| e.time_tb).max().unwrap_or(0)
    }

    /// The first timestamp in the trace (ticks).
    pub fn start_tb(&self) -> u64 {
        self.events.iter().map(|e| e.time_tb).min().unwrap_or(0)
    }

    /// Converts timebase ticks to nanoseconds using the header clocks.
    pub fn tb_to_ns(&self, tb: u64) -> f64 {
        tb as f64 * self.header.timebase_divider as f64 * 1e9 / self.header.core_hz as f64
    }

    /// The SPE indices that produced events.
    pub fn spes(&self) -> Vec<u8> {
        let mut v: Vec<u8> = self
            .events
            .iter()
            .filter_map(|e| match e.core {
                TraceCore::Spe(i) => Some(i),
                TraceCore::Ppe(_) => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The name of context `ctx`, if recorded.
    pub fn ctx_name(&self, ctx: u32) -> Option<&str> {
        self.ctx_names
            .iter()
            .find(|(c, _)| *c == ctx)
            .map(|(_, n)| n.as_str())
    }
}

/// Errors from trace analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// A stream failed record decoding.
    Record {
        /// The stream's core.
        core: TraceCore,
        /// Byte offset of the corrupt record.
        offset: usize,
        /// The cause.
        cause: RecordError,
    },
    /// An SPE stream has records but no `PpeCtxRun` sync record exists
    /// for it (PPE lifecycle tracing was off).
    MissingAnchor {
        /// The SPE without a sync anchor.
        spe: u8,
    },
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Record {
                core,
                offset,
                cause,
            } => write!(
                f,
                "corrupt record in {core} stream at byte {offset}: {cause}"
            ),
            AnalyzeError::MissingAnchor { spe } => write!(
                f,
                "SPE{spe} has trace records but no PpeCtxRun sync record; \
                 enable the ppe-lifecycle group to reconstruct SPE time"
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Reconstructs the global timeline from a trace file.
///
/// This is the serial reference path. New code should prefer the
/// [`Analysis`](crate::session::Analysis) session, which ingests in
/// parallel and memoizes every derived product; this function remains
/// for compatibility and as the equivalence oracle the parallel engine
/// is tested against.
///
/// # Errors
///
/// Returns [`AnalyzeError`] on corrupt records or missing sync anchors.
pub fn analyze(trace: &TraceFile) -> Result<AnalyzedTrace, AnalyzeError> {
    // Decode every stream up front.
    let mut decoded: Vec<(TraceCore, Vec<TraceRecord>)> = Vec::new();
    for s in &trace.streams {
        let recs = s
            .records()
            .map_err(|(offset, cause)| AnalyzeError::Record {
                core: s.core,
                offset,
                cause,
            })?;
        decoded.push((s.core, recs));
    }

    // Harvest sync anchors from PPE streams. If a context is re-run
    // (not supported by the machine today) the first anchor wins.
    let mut anchors: Vec<SpeAnchor> = Vec::new();
    for (core, recs) in &decoded {
        if core.is_spe() {
            continue;
        }
        for r in recs {
            if r.code == EventCode::PpeCtxRun {
                let spe = r.params[1] as u8;
                if !anchors.iter().any(|a| a.spe == spe) {
                    anchors.push(SpeAnchor {
                        spe,
                        ctx: r.params[0] as u32,
                        run_tb: r.timestamp,
                        dec_start: r.params[2] as u32,
                    });
                }
            }
        }
    }

    let mut events: Vec<GlobalEvent> = Vec::new();
    for (core, recs) in decoded {
        match core {
            TraceCore::Ppe(_) => {
                for (i, r) in recs.into_iter().enumerate() {
                    events.push(GlobalEvent {
                        time_tb: r.timestamp,
                        core: r.core, // records carry per-thread tags
                        code: r.code,
                        params: r.params,
                        stream_seq: i as u64,
                    });
                }
            }
            TraceCore::Spe(spe) => {
                if recs.is_empty() {
                    continue;
                }
                let anchor = anchors
                    .iter()
                    .find(|a| a.spe == spe)
                    .copied()
                    .ok_or(AnalyzeError::MissingAnchor { spe })?;
                let mut elapsed: u64 = 0;
                let mut prev_dec = anchor.dec_start;
                for (i, r) in recs.into_iter().enumerate() {
                    let dec = r.timestamp as u32;
                    elapsed += prev_dec.wrapping_sub(dec) as u64;
                    prev_dec = dec;
                    events.push(GlobalEvent {
                        time_tb: anchor.run_tb + elapsed,
                        core,
                        code: r.code,
                        params: r.params,
                        stream_seq: i as u64,
                    });
                }
            }
        }
    }

    // Global order: time, then core, then recording order. The sort is
    // stable on the per-core sequence because (core, stream_seq) is a
    // total order within ties.
    events.sort_by(|a, b| {
        (a.time_tb, core_key(a.core), a.stream_seq).cmp(&(
            b.time_tb,
            core_key(b.core),
            b.stream_seq,
        ))
    });

    Ok(AnalyzedTrace {
        header: trace.header,
        events,
        ctx_names: trace.ctx_names.clone(),
        anchors,
        dropped: trace.total_dropped(),
    })
}

fn core_key(c: TraceCore) -> u8 {
    c.tag()
}

/// Reconstructs the global timeline from a trace file, resynchronizing
/// past corruption instead of failing.
///
/// This is the serial reference for the lossy path: malformed records
/// open [`pdt::DecodeGap`]s (see [`pdt::decode_stream_lossy`]), SPE
/// streams whose `PpeCtxRun` sync anchor was lost are discarded whole,
/// and everything skipped is quantified in the returned [`LossReport`].
/// On an uncorrupted trace the [`AnalyzedTrace`] is byte-identical to
/// the strict [`analyze`] and the report is clean.
///
/// The parallel counterpart is
/// [`analyze_parallel_lossy`](crate::parallel::analyze_parallel_lossy),
/// which produces identical output.
pub fn analyze_lossy(trace: &TraceFile) -> (AnalyzedTrace, LossReport) {
    // Decode every stream up front, recording gaps instead of erroring.
    let mut decoded: Vec<(TraceCore, pdt::LossyDecode, u64)> = Vec::new();
    for s in &trace.streams {
        decoded.push((s.core, s.records_lossy(), s.dropped));
    }

    // Harvest sync anchors from the PPE records that survived.
    let anchor_view: Vec<(TraceCore, &[TraceRecord])> = decoded
        .iter()
        .map(|(core, d, _)| (*core, d.records.as_slice()))
        .collect();
    let anchors = harvest_anchors_from(&anchor_view);

    let mut events: Vec<GlobalEvent> = Vec::new();
    let mut losses: Vec<StreamLoss> = Vec::new();
    for (core, lossy, dropped) in decoded {
        let mut unanchored = false;
        let decoded_records = lossy.records.len() as u64;
        match core {
            TraceCore::Ppe(_) => {
                for (i, r) in lossy.records.into_iter().enumerate() {
                    events.push(GlobalEvent {
                        time_tb: r.timestamp,
                        core: r.core, // records carry per-thread tags
                        code: r.code,
                        params: r.params,
                        stream_seq: i as u64,
                    });
                }
            }
            TraceCore::Spe(spe) => {
                match anchors.iter().find(|a| a.spe == spe).copied() {
                    Some(anchor) if !lossy.records.is_empty() => {
                        let mut elapsed: u64 = 0;
                        let mut prev_dec = anchor.dec_start;
                        for (i, r) in lossy.records.into_iter().enumerate() {
                            let dec = r.timestamp as u32;
                            elapsed += prev_dec.wrapping_sub(dec) as u64;
                            prev_dec = dec;
                            events.push(GlobalEvent {
                                time_tb: anchor.run_tb + elapsed,
                                core,
                                code: r.code,
                                params: r.params,
                                stream_seq: i as u64,
                            });
                        }
                    }
                    Some(_) => {} // empty stream, nothing to place
                    None => unanchored = !lossy.records.is_empty(),
                }
            }
        }
        losses.push(StreamLoss {
            core,
            decoded_records,
            tracer_dropped: dropped,
            gaps: lossy.gaps,
            unanchored,
        });
    }

    events.sort_by(|a, b| {
        (a.time_tb, core_key(a.core), a.stream_seq).cmp(&(
            b.time_tb,
            core_key(b.core),
            b.stream_seq,
        ))
    });

    (
        AnalyzedTrace {
            header: trace.header,
            events,
            ctx_names: trace.ctx_names.clone(),
            anchors,
            dropped: trace.total_dropped(),
        },
        LossReport { streams: losses },
    )
}

/// Harvests `PpeCtxRun` sync anchors from PPE streams, first anchor per
/// SPE winning, in stream order. Shared by the strict and lossy paths.
pub(crate) fn harvest_anchors_from(decoded: &[(TraceCore, &[TraceRecord])]) -> Vec<SpeAnchor> {
    let mut anchors: Vec<SpeAnchor> = Vec::new();
    for (core, recs) in decoded {
        if core.is_spe() {
            continue;
        }
        for r in *recs {
            if r.code == EventCode::PpeCtxRun && r.params.len() >= 3 {
                let spe = r.params[1] as u8;
                if !anchors.iter().any(|a| a.spe == spe) {
                    anchors.push(SpeAnchor {
                        spe,
                        ctx: r.params[0] as u32,
                        run_tb: r.timestamp,
                        dec_start: r.params[2] as u32,
                    });
                }
            }
        }
    }
    anchors
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt::{TraceStream, VERSION};

    fn header() -> TraceHeader {
        TraceHeader {
            version: VERSION,
            num_ppe_threads: 1,
            num_spes: 1,
            core_hz: 3_200_000_000,
            timebase_divider: 120,
            dec_start: u32::MAX,
            group_mask: u32::MAX,
            spe_buffer_bytes: 2048,
        }
    }

    fn ppe_run_record(spe: u8, tb: u64, dec_start: u32) -> TraceRecord {
        TraceRecord {
            core: TraceCore::Ppe(0),
            code: EventCode::PpeCtxRun,
            timestamp: tb,
            params: vec![0, spe as u64, dec_start as u64],
        }
    }

    fn spe_record(spe: u8, code: EventCode, dec: u32, params: Vec<u64>) -> TraceRecord {
        TraceRecord {
            core: TraceCore::Spe(spe),
            code,
            timestamp: dec as u64,
            params,
        }
    }

    fn file_with(ppe: Vec<TraceRecord>, spe: Vec<TraceRecord>) -> TraceFile {
        let mut pb = Vec::new();
        for r in &ppe {
            r.encode_into(&mut pb);
        }
        let mut sb = Vec::new();
        for r in &spe {
            r.encode_into(&mut sb);
        }
        TraceFile {
            header: header(),
            streams: vec![
                TraceStream {
                    core: TraceCore::Ppe(0),
                    bytes: pb,
                    dropped: 0,
                },
                TraceStream {
                    core: TraceCore::Spe(0),
                    bytes: sb,
                    dropped: 2,
                },
            ],
            ctx_names: vec![(0, "k".into())],
        }
    }

    #[test]
    fn spe_time_reconstruction_uses_anchor_and_elapsed() {
        let dec0 = 1_000_000u32;
        let f = file_with(
            vec![ppe_run_record(0, 500, dec0)],
            vec![
                spe_record(0, EventCode::SpeCtxStart, dec0, vec![0]),
                spe_record(0, EventCode::SpeUser, dec0 - 100, vec![1, 0, 0]),
                spe_record(0, EventCode::SpeStop, dec0 - 250, vec![0]),
            ],
        );
        let a = analyze(&f).unwrap();
        assert_eq!(a.anchors.len(), 1);
        assert_eq!(a.anchors[0].run_tb, 500);
        let times: Vec<u64> = a
            .core_events(TraceCore::Spe(0))
            .map(|e| e.time_tb)
            .collect();
        assert_eq!(times, vec![500, 600, 750]);
        assert_eq!(a.dropped, 2);
    }

    #[test]
    fn decrementer_wrap_is_handled() {
        // Start near zero so the counter wraps during the run.
        let dec0 = 50u32;
        let f = file_with(
            vec![ppe_run_record(0, 0, dec0)],
            vec![
                spe_record(0, EventCode::SpeCtxStart, dec0, vec![0]),
                // 100 ticks later: 50 - 100 wraps to u32::MAX - 49.
                spe_record(0, EventCode::SpeUser, dec0.wrapping_sub(100), vec![1, 0, 0]),
                spe_record(0, EventCode::SpeStop, dec0.wrapping_sub(300), vec![0]),
            ],
        );
        let a = analyze(&f).unwrap();
        let times: Vec<u64> = a
            .core_events(TraceCore::Spe(0))
            .map(|e| e.time_tb)
            .collect();
        assert_eq!(times, vec![0, 100, 300]);
    }

    #[test]
    fn events_merge_in_global_order() {
        let dec0 = 10_000u32;
        let f = file_with(
            vec![
                ppe_run_record(0, 100, dec0),
                TraceRecord {
                    core: TraceCore::Ppe(0),
                    code: EventCode::PpeUser,
                    timestamp: 150,
                    params: vec![9, 0, 0],
                },
            ],
            vec![
                spe_record(0, EventCode::SpeCtxStart, dec0, vec![0]),
                spe_record(0, EventCode::SpeUser, dec0 - 100, vec![1, 0, 0]),
            ],
        );
        let a = analyze(&f).unwrap();
        let order: Vec<(u64, TraceCore)> = a.events.iter().map(|e| (e.time_tb, e.core)).collect();
        assert_eq!(
            order,
            vec![
                (100, TraceCore::Ppe(0)), // ctx run
                (100, TraceCore::Spe(0)), // ctx start (same tick, PPE first)
                (150, TraceCore::Ppe(0)), // ppe user
                (200, TraceCore::Spe(0)), // spe user
            ]
        );
        assert_eq!(a.start_tb(), 100);
        assert_eq!(a.end_tb(), 200);
    }

    #[test]
    fn missing_anchor_is_an_error() {
        let f = file_with(
            vec![], // no PPE records at all
            vec![spe_record(0, EventCode::SpeCtxStart, 99, vec![0])],
        );
        assert_eq!(
            analyze(&f).unwrap_err(),
            AnalyzeError::MissingAnchor { spe: 0 }
        );
    }

    #[test]
    fn corrupt_stream_reports_core_and_offset() {
        let mut f = file_with(vec![ppe_run_record(0, 0, 10)], vec![]);
        f.streams[1].bytes = vec![0u8; 16]; // zero granule count
        let err = analyze(&f).unwrap_err();
        assert!(matches!(
            err,
            AnalyzeError::Record {
                core: TraceCore::Spe(0),
                offset: 0,
                ..
            }
        ));
        assert!(err.to_string().contains("SPE0"));
    }

    #[test]
    fn tb_to_ns_uses_header_clocks() {
        let f = file_with(vec![ppe_run_record(0, 0, 10)], vec![]);
        let a = analyze(&f).unwrap();
        // One tick = 120 cycles at 3.2 GHz = 37.5 ns.
        assert!((a.tb_to_ns(1) - 37.5).abs() < 1e-9);
    }
}
