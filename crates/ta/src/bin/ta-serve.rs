//! Live trace server: follows a growing `.pdt` file through the
//! streaming ingestion API ([`ta::ImageIngest`]) and answers queries
//! from immutable [`ta::Analysis`] snapshot epochs.
//!
//! Speaks a line-delimited protocol on stdin/stdout, or over a single
//! TCP connection with `--listen ADDR`:
//!
//! ```text
//! open PATH          start following PATH (resets any prior session)
//! poll               re-read the file, ingest newly appended bytes
//! summary            whole-trace summary of the current snapshot
//! summarize T0 T1    indexed window summary [T0, T1)
//! loss               decode-gap / drop accounting (CSV)
//! events N           the last N events of the current snapshot
//! stats              scheduler counters of the shared execution pool
//! quit               close the session
//! ```
//!
//! Every command's reply ends with a line starting `ok` (possibly with
//! `key=value` details) or `err <message>`, so the protocol is safe to
//! script. `poll` only ever ingests the file's grown suffix — the
//! server never re-decodes bytes it has already consumed, and a file
//! that shrinks is reported as an error rather than silently
//! reloaded. `stats` reports the work-stealing pool behind every
//! parallel product build — tasks run, steals, injector pops, spawned
//! workers and cumulative busy time — as one `ok key=value` line.

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

use ta::{ImageIngest, Parallelism};

/// One followed trace: its path and the incremental parser state.
struct Follow {
    path: String,
    ingest: ImageIngest,
}

struct Server {
    follow: Option<Follow>,
}

impl Server {
    fn new() -> Self {
        Server { follow: None }
    }

    /// Handles one protocol line; the reply (including the trailing
    /// `ok`/`err` line) goes to `out`. Returns `false` on `quit`.
    fn handle(&mut self, line: &str, out: &mut dyn Write) -> std::io::Result<bool> {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let result = match cmd {
            "" => Ok(String::new()),
            "open" => self.open(parts.next()),
            "poll" => self.poll(),
            "summary" => self.with_snapshot(|a| a.summary()),
            "summarize" => {
                let t0 = parts.next().and_then(|v| v.parse::<u64>().ok());
                let t1 = parts.next().and_then(|v| v.parse::<u64>().ok());
                match (t0, t1) {
                    (Some(t0), Some(t1)) => self.with_snapshot(|a| {
                        let s = a.summarize(t0, t1);
                        let mut text = format!(
                            "window [{}, {}): {} event(s){}\n",
                            s.start_tb,
                            s.end_tb,
                            s.total_events(),
                            if s.suspect { " SUSPECT" } else { "" }
                        );
                        for (core, n) in &s.events {
                            text.push_str(&format!("  {core}: {n}\n"));
                        }
                        text
                    }),
                    _ => Err("summarize needs T0 T1".into()),
                }
            }
            "loss" => self.with_snapshot(|a| ta::loss_csv(a.loss())),
            "stats" => {
                let st = ta::exec::pool().stats();
                Ok(format!(
                    "ok tasks={} steals={} injector_pops={} workers={} busy_ms={}\n",
                    st.tasks,
                    st.steals,
                    st.injector_pops,
                    st.workers,
                    st.busy_ns() / 1_000_000,
                ))
            }
            "events" => {
                let n = parts.next().and_then(|v| v.parse::<usize>().ok());
                match n {
                    Some(n) => self.with_snapshot(|a| {
                        let events = a.events();
                        let mut text = String::new();
                        for e in &events[events.len().saturating_sub(n)..] {
                            text.push_str(&format!(
                                "{},{},{},{:?}\n",
                                e.time_tb,
                                e.core,
                                e.code.name(),
                                e.params
                            ));
                        }
                        text
                    }),
                    None => Err("events needs a count".into()),
                }
            }
            "quit" => {
                writeln!(out, "ok bye")?;
                return Ok(false);
            }
            other => Err(format!("unknown command {other:?}")),
        };
        match result {
            Ok(text) => {
                out.write_all(text.as_bytes())?;
                if !text.ends_with("ok\n") && !starts_ok(&text) {
                    writeln!(out, "ok")?;
                }
            }
            Err(e) => writeln!(out, "err {e}")?,
        }
        out.flush()?;
        Ok(true)
    }

    fn open(&mut self, path: Option<&str>) -> Result<String, String> {
        let path = path.ok_or("open needs a path")?;
        std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
        self.follow = Some(Follow {
            path: path.to_string(),
            ingest: ImageIngest::new().with_parallelism(Parallelism::Workers(4)),
        });
        self.poll()
    }

    /// Re-reads the followed file and ingests whatever grew past the
    /// bytes already consumed.
    fn poll(&mut self) -> Result<String, String> {
        let f = self.follow.as_mut().ok_or("no trace open")?;
        let data = std::fs::read(&f.path).map_err(|e| format!("{}: {e}", f.path))?;
        let consumed = f.ingest.bytes_consumed() as usize;
        if data.len() < consumed {
            return Err(format!(
                "{} shrank below the {consumed} bytes already ingested",
                f.path
            ));
        }
        f.ingest
            .push(&data[consumed..])
            .map_err(|e| format!("{}: {e}", f.path))?;
        let events = f.ingest.snapshot().map_or(0, |a| a.events().len());
        Ok(format!(
            "ok bytes={} events={events} complete={}\n",
            f.ingest.bytes_consumed(),
            f.ingest.is_complete()
        ))
    }

    /// Runs `render` against the current snapshot epoch.
    fn with_snapshot<F: FnOnce(&ta::Analysis) -> String>(
        &mut self,
        render: F,
    ) -> Result<String, String> {
        let f = self.follow.as_mut().ok_or("no trace open")?;
        let snap = f.ingest.snapshot().ok_or("no events ingested yet")?;
        Ok(render(&snap))
    }
}

/// Whether a reply already carries its own `ok ...` status line.
fn starts_ok(text: &str) -> bool {
    text.lines()
        .next_back()
        .is_some_and(|l| l.starts_with("ok"))
}

fn serve(reader: impl BufRead, mut writer: impl Write) -> std::io::Result<()> {
    let mut server = Server::new();
    for line in reader.lines() {
        if !server.handle(&line?, &mut writer)? {
            break;
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => serve(BufReader::new(std::io::stdin()), std::io::stdout().lock())
            .map_err(|e| e.to_string()),
        Some("--listen") => {
            let addr = args.get(1).ok_or("--listen needs an address")?;
            let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
            eprintln!("ta-serve listening on {}", listener.local_addr().unwrap());
            for conn in listener.incoming() {
                let conn = conn.map_err(|e| e.to_string())?;
                let reader = BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
                serve(reader, conn).map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        Some("--help" | "-h") => {
            println!("usage: ta-serve [--listen ADDR]");
            Ok(())
        }
        Some(other) => Err(format!("unknown argument {other:?} (try --help)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
