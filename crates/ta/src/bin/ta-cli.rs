//! The Trace Analyzer as a command-line tool, operating on `.pdt`
//! trace files exactly like the original worked on traces shipped off
//! a Cell blade.
//!
//! ```text
//! ta-cli summary  TRACE              per-core activity, DMA stats, event counts
//! ta-cli timeline TRACE [--svg OUT]  ASCII timeline (or SVG to a file)
//! ta-cli events   TRACE [--core C]   event listing (CSV)
//! ta-cli phases   TRACE              user-defined phase intervals
//! ta-cli compare  BEFORE AFTER       before/after comparison
//! ta-cli report   TRACE OUT.html     self-contained HTML report
//! ta-cli loss     TRACE              decode-gap / drop accounting (CSV)
//! ta-cli occupancy TRACE             MFC queue depth per SPE
//! ta-cli causality TRACE             cross-core order check + skew estimate
//! ta-cli query    TRACE [--from T] [--to T] [--core C]... [--code E]...
//!                 [--group G]... [--summary]
//!                                    indexed window/filter query
//! ta-cli lint     TRACE [--format text|json|sarif] [--deny RULE]...
//!                 [--allow RULE]... [--config PATH]
//!                                    rule-based static analysis
//! ta-cli follow   TRACE [--poll MS] [--max-polls N]
//!                                    live-tail a growing trace file
//! ta-cli pack     IN OUT.pdt2 [--block-records N]
//!                                    convert to the blocked, compressed v2 container
//! ta-cli unpack   IN.pdt2 OUT.pdt   convert a v2 container back to raw v1
//! ```
//!
//! Every analysis command sniffs the container by magic: `.pdt` (v1,
//! raw granules) and `.pdt2` (v2, blocked + compressed with per-block
//! footers) images are both accepted. On a v2 image, a windowed
//! `query` listing decodes only the blocks whose footer time range
//! overlaps the window and reports the decode/skip counters on
//! stderr; truncated v2 images degrade to loss accounting through the
//! streaming reader instead of failing.
//!
//! `follow` streams a trace that is still being written: each poll
//! ingests only the file's grown suffix through [`ta::ImageIngest`],
//! prints a progress line from an immutable snapshot, and renders the
//! full summary once the image completes. A file that shrinks mid-tail
//! is an error (the writer restarted; re-run `follow`).
//!
//! `lint` runs the [`ta::lint`] rule registry (DMA races, tag-group
//! misuse, mailbox deadlock shapes, ...) and exits nonzero when any
//! firm (non-suspect) error-severity diagnostic survives. A
//! `.talint.toml` in the current directory is loaded as the baseline
//! unless `--config` names one explicitly; `--allow` skips rules and
//! `--deny` promotes their diagnostics to errors.
//!
//! `query` runs through the session's trace index, so window and core
//! restrictions resolve by binary search rather than a full rescan.
//! Without `--summary` it lists the matching events; with it, it
//! prints the window's pre-aggregated per-core event counts and
//! per-SPE activity occupancy, flagging windows that overlap decode
//! gaps as suspect.
//!
//! Ingestion is lossy by default: corrupt records become accounted
//! decode gaps instead of hard errors, and `summary` flags SPEs whose
//! statistics span gaps. Pass `--strict` to fail on the first
//! malformed record instead.
//!
//! Concurrency is one knob: `-j N` (or `--parallelism N|serial|auto`,
//! default `auto`) sets the [`ta::Parallelism`] used for ingestion and
//! every derived product. `--exec-stats` prints the shared pool's
//! scheduler counters (tasks run, steals, worker busy time) to stderr
//! after the command completes.

use std::process::ExitCode;
use std::sync::Arc;

use pdt::{TraceCore, TraceFile, DEFAULT_BLOCK_RECORDS};
use ta::{
    analyze_v2, compare_traces, is_v2_image, user_phases, Analysis, CsvTable, EventFilter,
    LintConfig, MappedImage, Parallelism, RenderOptions, ReportKind, SvgOptions, V2Trace,
};

/// Loads a trace image, sniffing the container by magic: `PDT1`
/// images take the v1 path, `PDT2` images decode through the blocked
/// v2 reader (falling back to the lossy streaming reader when the
/// container is truncated).
fn load(path: &str, strict: bool, par: Parallelism) -> Result<Arc<Analysis>, String> {
    // Memory-mapped when the `mmap` feature is on: the one-shot v2
    // reader borrows blocks straight out of the mapping.
    let bytes = MappedImage::open(path).map_err(|e| format!("{path}: {e}"))?;
    if is_v2_image(&bytes) {
        if strict {
            // Strict mode reconstructs the exact v1 bytes first, so a
            // damaged block fails the run like a malformed v1 record.
            let trace = pdt::unpack(&bytes).map_err(|e| format!("{path}: {e}"))?;
            let a = Analysis::of(&trace)
                .parallelism(par)
                .strict()
                .run()
                .map_err(|e| format!("{path}: {e}"))?;
            return Ok(Arc::new(a));
        }
        let (a, _) = analyze_v2(&bytes, par).map_err(|e| format!("{path}: {e}"))?;
        return Ok(a);
    }
    let trace = TraceFile::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let builder = Analysis::of(&trace).parallelism(par);
    let builder = if strict { builder.strict() } else { builder };
    builder
        .run()
        .map(Arc::new)
        .map_err(|e| format!("{path}: {e}"))
}

fn parse_parallelism(s: &str) -> Result<Parallelism, String> {
    match s {
        "serial" => Ok(Parallelism::Serial),
        "auto" => Ok(Parallelism::Auto),
        n => n
            .parse::<usize>()
            .map(Parallelism::from_threads)
            .map_err(|_| format!("bad parallelism {s:?} (expected N, serial, or auto)")),
    }
}

fn parse_core(s: &str) -> Result<TraceCore, String> {
    if let Some(i) = s.strip_prefix("spe") {
        return i
            .parse::<u8>()
            .map(TraceCore::Spe)
            .map_err(|_| format!("bad core {s:?}"));
    }
    if let Some(i) = s.strip_prefix("ppe") {
        return i
            .parse::<u8>()
            .map(TraceCore::Ppe)
            .map_err(|_| format!("bad core {s:?}"));
    }
    Err(format!("bad core {s:?} (expected speN or ppeN)"))
}

fn parse_code(s: &str) -> Result<pdt::EventCode, String> {
    (0..=u16::MAX)
        .filter_map(pdt::EventCode::from_raw)
        .find(|c| c.name() == s)
        .ok_or_else(|| format!("unknown event code {s:?}"))
}

fn parse_group(s: &str) -> Result<pdt::EventGroup, String> {
    pdt::EventGroup::ALL
        .into_iter()
        .find(|g| g.name() == s)
        .ok_or_else(|| format!("unknown event group {s:?}"))
}

/// Collects every value of a repeatable `--flag VALUE` option,
/// removing the consumed arguments.
fn take_values(args: &mut Vec<String>, flag: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    while let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        out.push(args.remove(i + 1));
        args.remove(i);
    }
    Ok(out)
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    args.retain(|a| a != "--strict");
    let exec_stats = args.iter().any(|a| a == "--exec-stats");
    args.retain(|a| a != "--exec-stats");
    let par = {
        let mut vals = take_values(&mut args, "--parallelism")?;
        vals.extend(take_values(&mut args, "-j")?);
        match vals.last() {
            Some(v) => parse_parallelism(v)?,
            None => Parallelism::Auto,
        }
    };
    let usage = "usage: ta-cli <summary|timeline|events|phases|compare|report|loss|occupancy|causality|query|lint|follow|pack|unpack> TRACE [...] [--strict] [-j N|serial|auto] [--exec-stats]";
    let cmd = args.first().ok_or(usage)?;
    match cmd.as_str() {
        "summary" => {
            let path = args.get(1).ok_or(usage)?;
            print!("{}", load(path, strict, par)?.summary());
        }
        "timeline" => {
            let path = args.get(1).ok_or(usage)?;
            let a = load(path, strict, par)?;
            match args.iter().position(|a| a == "--svg") {
                Some(i) => {
                    let out = args.get(i + 1).ok_or("--svg requires a path")?;
                    std::fs::write(out, a.render(ReportKind::Svg, &RenderOptions::default()))
                        .map_err(|e| e.to_string())?;
                    println!("wrote {out}");
                }
                None => print!(
                    "{}",
                    a.render(
                        ReportKind::Ascii,
                        &RenderOptions::default().with_ascii_width(120)
                    )
                ),
            }
        }
        "events" => {
            let path = args.get(1).ok_or(usage)?;
            let a = load(path, strict, par)?;
            match args.iter().position(|a| a == "--core") {
                Some(i) => {
                    let core = parse_core(args.get(i + 1).ok_or("--core requires a core")?)?;
                    let filter = EventFilter::new().on_core(core);
                    for e in filter.apply(&a) {
                        println!("{},{},{},{:?}", e.time_tb, e.core, e.code.name(), e.params);
                    }
                }
                None => print!("{}", a.render(ReportKind::Csv, &RenderOptions::default())),
            }
        }
        "loss" => {
            let path = args.get(1).ok_or(usage)?;
            let a = load(path, strict, par)?;
            print!(
                "{}",
                a.render(
                    ReportKind::Csv,
                    &RenderOptions::default().with_csv(CsvTable::Loss)
                )
            );
        }
        "phases" => {
            let path = args.get(1).ok_or(usage)?;
            let a = load(path, strict, par)?;
            let analyzed = a.analyzed();
            let report = user_phases(analyzed);
            if report.phases.is_empty() {
                println!("no user phases recorded");
            }
            for p in &report.phases {
                println!(
                    "phase {} on {}: {} .. {} ({:.2} µs)",
                    p.id,
                    p.core,
                    p.start_tb,
                    p.end_tb,
                    analyzed.tb_to_ns(p.ticks()) / 1000.0
                );
            }
            if report.unmatched_begins + report.unmatched_ends > 0 {
                println!(
                    "warning: {} unmatched begins, {} unmatched ends",
                    report.unmatched_begins, report.unmatched_ends
                );
            }
        }
        "causality" => {
            let path = args.get(1).ok_or(usage)?;
            let a = load(path, strict, par)?;
            let v = ta::violations(a.analyzed());
            println!("{} provable edges violated", v.len());
            for est in ta::estimate_skew(a.analyzed()) {
                println!(
                    "SPE{}: shift +{} ticks (forced by {} edges, {} allowed)",
                    est.spe, est.shift_tb, est.forced_by, est.allowed_tb
                );
            }
        }
        "occupancy" => {
            let path = args.get(1).ok_or(usage)?;
            let a = load(path, strict, par)?;
            for o in a.occupancy() {
                println!(
                    "SPE{}: peak {} outstanding, mean {:.2}, >=2 outstanding {:.1}% of the time",
                    o.spe,
                    o.peak,
                    o.mean,
                    o.fraction_at_least(2) * 100.0
                );
            }
        }
        "report" => {
            let path = args.get(1).ok_or(usage)?;
            let out = args.get(2).ok_or("report needs an output path")?;
            let a = load(path, strict, par)?;
            let html = a.render(
                ReportKind::Html,
                &RenderOptions::default()
                    .with_title(path)
                    .with_svg(SvgOptions {
                        width: 1100,
                        ..SvgOptions::default()
                    }),
            );
            std::fs::write(out, html).map_err(|e| e.to_string())?;
            println!("wrote {out}");
        }
        "compare" => {
            let before = args.get(1).ok_or(usage)?;
            let after = args.get(2).ok_or(usage)?;
            let c = compare_traces(
                load(before, strict, par)?.analyzed(),
                load(after, strict, par)?.analyzed(),
            );
            print!("{}", c.render());
        }
        "pack" => {
            let block_records = take_values(&mut args, "--block-records")?
                .last()
                .map(|v| {
                    v.parse::<usize>()
                        .ok()
                        .filter(|n| (1..=1 << 20).contains(n))
                        .ok_or(format!("bad --block-records {v:?} (expected 1..=1048576)"))
                })
                .transpose()?
                .unwrap_or(DEFAULT_BLOCK_RECORDS);
            let input = args.get(1).ok_or("pack needs IN.pdt and OUT.pdt2")?;
            let out = args.get(2).ok_or("pack needs IN.pdt and OUT.pdt2")?;
            let bytes = MappedImage::open(input).map_err(|e| format!("{input}: {e}"))?;
            // A v2 input is accepted too: unpack + repack re-blocks it.
            let trace = if is_v2_image(&bytes) {
                pdt::unpack(&bytes).map_err(|e| format!("{input}: {e}"))?
            } else {
                TraceFile::from_bytes(&bytes).map_err(|e| format!("{input}: {e}"))?
            };
            let image = pdt::pack(&trace, block_records);
            std::fs::write(out, &image).map_err(|e| format!("{out}: {e}"))?;
            println!(
                "wrote {out}: {} -> {} bytes ({:.2}x, {block_records} records/block)",
                bytes.len(),
                image.len(),
                bytes.len() as f64 / image.len().max(1) as f64,
            );
        }
        "unpack" => {
            let input = args.get(1).ok_or("unpack needs IN.pdt2 and OUT.pdt")?;
            let out = args.get(2).ok_or("unpack needs IN.pdt2 and OUT.pdt")?;
            let bytes = MappedImage::open(input).map_err(|e| format!("{input}: {e}"))?;
            if !is_v2_image(&bytes) {
                return Err(format!("{input}: not a PDT2 image"));
            }
            let trace = pdt::unpack(&bytes).map_err(|e| format!("{input}: {e}"))?;
            let v1 = trace.to_bytes();
            std::fs::write(out, &v1).map_err(|e| format!("{out}: {e}"))?;
            println!("wrote {out}: {} -> {} bytes", bytes.len(), v1.len());
        }
        "query" => {
            let summary = args.iter().any(|a| a == "--summary");
            args.retain(|a| a != "--summary");
            let from = take_values(&mut args, "--from")?
                .last()
                .map(|v| v.parse::<u64>().map_err(|_| format!("bad --from {v:?}")))
                .transpose()?;
            let to = take_values(&mut args, "--to")?
                .last()
                .map(|v| v.parse::<u64>().map_err(|_| format!("bad --to {v:?}")))
                .transpose()?;
            let cores = take_values(&mut args, "--core")?;
            let codes = take_values(&mut args, "--code")?;
            let groups = take_values(&mut args, "--group")?;
            let path = args.get(1).ok_or(usage)?;

            // On an intact v2 container, a listing query takes the
            // block-skip path: only packed blocks whose footer time
            // range overlaps the window are decoded at all.
            if !summary && !strict {
                let data = MappedImage::open(path).map_err(|e| format!("{path}: {e}"))?;
                if is_v2_image(&data) {
                    if let Ok(v2) = V2Trace::parse(&data) {
                        let (t0, t1) = (from.unwrap_or(0), to.unwrap_or(u64::MAX));
                        let mut filter = EventFilter::new().in_window(t0, t1);
                        for c in &cores {
                            filter = filter.on_core(parse_core(c)?);
                        }
                        for c in &codes {
                            filter = filter.with_code(parse_code(c)?);
                        }
                        for g in &groups {
                            filter = filter.in_group(parse_group(g)?);
                        }
                        let wq = v2.window_events(t0, t1);
                        for e in wq.events.iter().filter(|e| filter.matches(e)) {
                            println!("{},{},{},{:?}", e.time_tb, e.core, e.code.name(), e.params);
                        }
                        if wq.suspect {
                            eprintln!(
                                "warning: window overlaps damaged or unplaced blocks; \
                                 the listing may be incomplete"
                            );
                        }
                        eprintln!(
                            "codec: {} of {} block(s) decoded, {} skipped, {} corrupt, {} payload bytes read",
                            wq.stats.blocks_decoded,
                            v2.file().total_blocks(),
                            wq.stats.blocks_skipped,
                            wq.stats.blocks_corrupt,
                            wq.stats.payload_bytes_read,
                        );
                        return Ok(());
                    }
                }
            }
            let a = load(path, strict, par)?;

            let (t0, t1) = (
                from.unwrap_or(0),
                to.unwrap_or_else(|| a.index().end_tb().saturating_add(1)),
            );
            if summary {
                let s = a.summarize(t0, t1);
                println!(
                    "window [{}, {}) over trace [{}, {}]{}",
                    s.start_tb,
                    s.end_tb,
                    a.index().start_tb(),
                    a.index().end_tb(),
                    if s.suspect {
                        "  ** SUSPECT: window overlaps decode loss **"
                    } else {
                        ""
                    }
                );
                println!("{} event(s)", s.total_events());
                for (core, n) in &s.events {
                    println!("  {core}: {n}");
                }
                for w in &s.activity {
                    let line = ta::ActivityKind::ALL
                        .iter()
                        .map(|&k| format!("{} {}", k.label(), w.ticks_of(k)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    println!("  SPE{} activity (ticks): {line}", w.spe);
                }
                return Ok(());
            }

            let mut filter = EventFilter::new().in_window(t0, t1);
            for c in cores {
                filter = filter.on_core(parse_core(&c)?);
            }
            for c in codes {
                filter = filter.with_code(parse_code(&c)?);
            }
            for g in groups {
                filter = filter.in_group(parse_group(&g)?);
            }
            for e in filter.apply(&a) {
                println!("{},{},{},{:?}", e.time_tb, e.core, e.code.name(), e.params);
            }
        }
        "lint" => {
            let format = take_values(&mut args, "--format")?
                .last()
                .cloned()
                .unwrap_or_else(|| "text".into());
            let deny = take_values(&mut args, "--deny")?;
            let allow = take_values(&mut args, "--allow")?;
            let config_path = take_values(&mut args, "--config")?.last().cloned();
            let path = args.get(1).ok_or(usage)?;

            let mut config = match &config_path {
                Some(p) => {
                    let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
                    LintConfig::from_toml_str(&text).map_err(|e| e.to_string())?
                }
                None => match std::fs::read_to_string(".talint.toml") {
                    Ok(text) => LintConfig::from_toml_str(&text).map_err(|e| e.to_string())?,
                    Err(_) => LintConfig::default(),
                },
            };
            config.deny.extend(deny);
            config.allow.extend(allow);

            let a = load(path, strict, par)?;
            let report = a.lint_with(&config);
            match format.as_str() {
                "text" => print!("{}", report.render_text()),
                "json" => print!("{}", report.to_json()),
                "sarif" => print!("{}", report.to_sarif()),
                other => return Err(format!("unknown --format {other:?} (text|json|sarif)")),
            }
            let firm = report.firm_errors().count();
            if firm > 0 {
                return Err(format!("lint: {firm} firm error(s)"));
            }
        }
        "follow" => {
            let poll_ms = take_values(&mut args, "--poll")?
                .last()
                .map(|v| v.parse::<u64>().map_err(|_| format!("bad --poll {v:?}")))
                .transpose()?
                .unwrap_or(200);
            let max_polls = take_values(&mut args, "--max-polls")?
                .last()
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("bad --max-polls {v:?}"))
                })
                .transpose()?
                .unwrap_or(0);
            let path = args.get(1).ok_or(usage)?;
            let mut ingest = ta::ImageIngest::new().with_parallelism(par);
            let mut polls = 0u64;
            loop {
                let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
                let consumed = ingest.bytes_consumed() as usize;
                if data.len() < consumed {
                    return Err(format!(
                        "{path} shrank below the {consumed} bytes already ingested"
                    ));
                }
                if data.len() > consumed {
                    ingest
                        .push(&data[consumed..])
                        .map_err(|e| format!("{path}: {e}"))?;
                    let events = ingest.snapshot().map_or(0, |a| a.events().len());
                    eprintln!(
                        "{} bytes, {events} event(s){}",
                        ingest.bytes_consumed(),
                        if ingest.is_complete() {
                            ", complete"
                        } else {
                            ""
                        }
                    );
                }
                if ingest.is_complete() {
                    break;
                }
                polls += 1;
                if max_polls != 0 && polls >= max_polls {
                    return Err(format!("{path}: still incomplete after {polls} poll(s)"));
                }
                std::thread::sleep(std::time::Duration::from_millis(poll_ms));
            }
            let snap = ingest.snapshot().ok_or("trace completed with no events")?;
            print!("{}", snap.summary());
        }
        "--help" | "-h" => println!("{usage}"),
        other => return Err(format!("unknown command {other:?}\n{usage}")),
    }
    if exec_stats {
        let st = ta::exec::pool().stats();
        eprintln!(
            "exec: tasks={} steals={} injector_pops={} workers={} busy_ms={}",
            st.tasks,
            st.steals,
            st.injector_pops,
            st.workers,
            st.busy_ns() / 1_000_000,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
