//! `ta::hb` — the happens-before race engine.
//!
//! The `dma-race` heuristic (half-open tag-wait windows, PR 4) is a
//! timing pattern-matcher: it misses races that coincidental timing
//! hides inside one wait window and flags overlaps that mailbox or
//! signal traffic actually orders. This module replaces it with a
//! sound ordering analysis in the ThreadSanitizer tradition: every
//! stream (SPE or PPE) gets an epoch-based [`VecClock`], clocks
//! advance along program order and join across the synchronization
//! edges [`sync_edges_columns`](crate::causality::sync_edges_columns)
//! proves (context starts, mailbox FIFO pairs, signal-notify pairs),
//! and two overlapping DMA accesses race exactly when neither is
//! ordered before the other.
//!
//! ## What orders what
//!
//! | mechanism | scope | effect |
//! |-----------|-------|--------|
//! | `SpeTagWaitEnd` covering a transfer's tag | own stream | the transfer is complete at the wait; later issues on any stream that *observes* the wait (via clocks) are ordered after it |
//! | `SpeDmaBarrier` | own MFC queue | every transfer issued before the barrier completes before any command issued after it |
//! | mailbox / signal / ctx-start edges | cross-stream | propagate completion knowledge between streams |
//!
//! Within one tag group the MFC orders *nothing* absent a wait or
//! barrier — two same-tag transfers on overlapping bytes race, which
//! the window heuristic can never report (it skips same-tag pairs).
//!
//! ## Conservatism
//!
//! The clock relation under-approximates true happens-before: a
//! completion witness is only a *direct* covering `SpeTagWaitEnd`
//! (barrier-transitive completion affects intra-stream ordering only),
//! and damaged traces drop sync edges rather than guess at pairings.
//! Losing an edge can only lose orderings, i.e. add findings, never
//! hide a true race. When clock-skewed streams force the propagation
//! to break a cycle, the index is marked [`degraded`](HbIndex::degraded)
//! and every finding downgrades to suspect.
//!
//! ## Access model
//!
//! A `GET` writes local store and reads main memory; a `PUT` reads
//! local store and writes main memory. Local-store pairs are per-SPE
//! (the simulator does not model cross-SPE LS-mapped DMA); effective-
//! address pairs are global. List DMAs scatter their EA side, so they
//! participate in the LS check only. PPE-side proxy DMA is not
//! reconstructed (matching the window heuristic).

use std::collections::{HashMap, HashSet};

use pdt::{EventCode, EventGroup, TraceCore};

use crate::causality::CausalEdge;
use crate::columns::ColumnarTrace;
use crate::index::{IntervalTree, Span};

/// An epoch-based vector clock: component `i` is the number of events
/// of stream `i` known to have happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecClock(Vec<u32>);

impl VecClock {
    /// The zero clock over `width` streams.
    pub fn new(width: usize) -> Self {
        VecClock(vec![0; width])
    }

    /// Number of stream components.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Component `i` (0 when out of range, so narrower clocks compare
    /// as if zero-extended).
    pub fn get(&self, i: usize) -> u32 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// Sets component `i`.
    pub fn set(&mut self, i: usize, v: u32) {
        if i < self.0.len() {
            self.0[i] = v;
        }
    }

    /// Element-wise maximum, in place: afterwards `self` dominates both
    /// operands' prior values.
    pub fn join(&mut self, other: &VecClock) {
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    /// True when every component of `self` is ≥ the matching component
    /// of `other`.
    pub fn dominates(&self, other: &VecClock) -> bool {
        let w = self.width().max(other.width());
        (0..w).all(|i| self.get(i) >= other.get(i))
    }
}

/// Kahn-style worklist propagation of per-stream clocks over the sync
/// edges. A single time-ordered pass would be wrong — SPE decrementers
/// skew, so an edge's `later` endpoint can carry an *earlier*
/// timestamp — so instead each stream advances while the producers of
/// its next event's incoming edges have been processed, round-robin
/// until the trace drains.
///
/// `on_event(global, stream, pos, clock)` fires once per event with
/// the stream's clock *after* the event (own epoch `pos + 1` set,
/// incoming edges joined). Returns `true` when a cross-edge cycle
/// (possible only in clock-skewed or damaged traces) forced progress
/// by ignoring an unprocessed producer.
fn propagate<F>(trace: &ColumnarTrace, edges: &[CausalEdge], mut on_event: F) -> bool
where
    F: FnMut(usize, usize, u32, &VecClock),
{
    let offsets = trace.core_offsets();
    let width = offsets.len();
    let n = trace.events.len();
    let mut stream_of = vec![0u32; n];
    let mut pos_of = vec![0u32; n];
    for (si, (_, offs)) in offsets.iter().enumerate() {
        for (pos, &g) in offs.iter().enumerate() {
            stream_of[g as usize] = si as u32;
            pos_of[g as usize] = pos as u32;
        }
    }
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut needed = vec![false; n];
    for e in edges {
        if e.earlier < n && e.later < n {
            incoming[e.later].push(e.earlier);
            needed[e.earlier] = true;
        }
    }
    let mut cursors = vec![0usize; width];
    let mut clocks: Vec<VecClock> = (0..width).map(|_| VecClock::new(width)).collect();
    let mut released: HashMap<usize, VecClock> = HashMap::new();
    let mut remaining = n;
    let mut degraded = false;

    let mut process = |si: usize,
                       cursors: &mut Vec<usize>,
                       clocks: &mut Vec<VecClock>,
                       released: &mut HashMap<usize, VecClock>,
                       remaining: &mut usize| {
        let pos = cursors[si];
        let g = offsets[si].1[pos] as usize;
        let clock = &mut clocks[si];
        clock.set(si, pos as u32 + 1);
        for p in &incoming[g] {
            if let Some(rc) = released.get(p) {
                clock.join(rc);
            }
        }
        if needed[g] {
            released.insert(g, clock.clone());
        }
        on_event(g, si, pos as u32, clock);
        cursors[si] = pos + 1;
        *remaining -= 1;
    };

    while remaining > 0 {
        let mut progressed = false;
        for si in 0..width {
            while cursors[si] < offsets[si].1.len() {
                let g = offsets[si].1[cursors[si]] as usize;
                let ready = incoming[g]
                    .iter()
                    .all(|&p| (pos_of[p] as usize) < cursors[stream_of[p] as usize]);
                if !ready {
                    break;
                }
                process(si, &mut cursors, &mut clocks, &mut released, &mut remaining);
                progressed = true;
            }
        }
        if !progressed && remaining > 0 {
            // Every stream is blocked on an unprocessed producer: a
            // cycle through the edge set. Break it at the lowest-tag
            // blocked stream (deterministic), joining only the
            // producers that *have* released — losing a join loses
            // orderings, which can only add (suspect) findings.
            let si = (0..width)
                .find(|&s| cursors[s] < offsets[s].1.len())
                .expect("remaining > 0 implies an unfinished stream");
            process(si, &mut cursors, &mut clocks, &mut released, &mut remaining);
            degraded = true;
        }
    }
    degraded
}

/// The full per-event clock table — the dense export the property
/// tests check the vector-clock laws against. The race engine itself
/// uses the sparse path ([`HbIndex::build`]) that only snapshots
/// clocks at DMA issues.
#[derive(Debug)]
pub struct ClockTable {
    clocks: Vec<VecClock>,
    place: Vec<(usize, u32)>,
    streams: Vec<TraceCore>,
    degraded: bool,
}

/// Propagates clocks over every event and returns the dense table.
pub fn event_clocks(trace: &ColumnarTrace, edges: &[CausalEdge]) -> ClockTable {
    let n = trace.events.len();
    let mut clocks = vec![VecClock::new(0); n];
    let mut place = vec![(0usize, 0u32); n];
    let degraded = propagate(trace, edges, |g, si, pos, vc| {
        clocks[g] = vc.clone();
        place[g] = (si, pos);
    });
    ClockTable {
        clocks,
        place,
        streams: trace.cores(),
        degraded,
    }
}

impl ClockTable {
    /// The stream universe, tag-sorted — component `i` of every clock
    /// counts events of `streams()[i]`.
    pub fn streams(&self) -> &[TraceCore] {
        &self.streams
    }

    /// The clock after event `i` (its own epoch included).
    pub fn clock(&self, i: usize) -> &VecClock {
        &self.clocks[i]
    }

    /// `(stream index, stream position)` of event `i`.
    pub fn place(&self, i: usize) -> (usize, u32) {
        self.place[i]
    }

    /// Whether `a` happened before `b`: `b`'s clock has observed `a`'s
    /// epoch. Irreflexive by definition.
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let (sa, pa) = self.place[a];
        self.clocks[b].get(sa) > pa
    }

    /// True when a cycle in the edge set forced propagation to guess.
    pub fn degraded(&self) -> bool {
        self.degraded
    }
}

/// Direction of a reconstructed DMA access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDir {
    /// Main storage → local store: writes LS, reads EA.
    Get,
    /// Local store → main storage: reads LS, writes EA.
    Put,
}

impl AccessDir {
    /// Uppercase mnemonic (`"GET"` / `"PUT"`).
    pub fn name(self) -> &'static str {
        match self {
            AccessDir::Get => "GET",
            AccessDir::Put => "PUT",
        }
    }
}

/// The address space a race witness collides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// One SPE's local store (the `lsa` side of both transfers).
    LocalStore,
    /// Main memory (the `ea` side of both transfers).
    MainMemory,
}

/// One endpoint of a race: a reconstructed DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The issuing SPE.
    pub spe: u8,
    /// Transfer direction.
    pub dir: AccessDir,
    /// MFC tag group.
    pub tag: u8,
    /// Local-store address.
    pub lsa: u64,
    /// Effective (main-memory) address.
    pub ea: u64,
    /// Transfer length.
    pub bytes: u64,
    /// Issue tick.
    pub time_tb: u64,
    /// Per-stream sequence number of the issue event.
    pub seq: u64,
    /// Index of the issue event in the global order.
    pub global: usize,
}

/// A race the engine proved: two overlapping accesses with no ordering
/// path, plus the exact byte intersection. `first`/`second` follow the
/// global event order, so `second` is the natural diagnostic anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceWitness {
    /// Which address space the bytes collide in.
    pub space: Space,
    /// The earlier access (by global event order).
    pub first: Access,
    /// The later access.
    pub second: Access,
    /// Start of the byte intersection (in `space` addresses).
    pub lo: u64,
    /// End (exclusive) of the byte intersection.
    pub hi: u64,
    /// Both accesses share one tag group — the class of race the
    /// window heuristic structurally cannot report.
    pub same_tag: bool,
}

/// One reconstructed transfer with its ordering state.
struct Transfer {
    acc: Access,
    /// List DMA: the EA side scatters, so it joins the LS check only.
    list: bool,
    /// Position of the issue in its SPE's stream.
    pos: u32,
    /// First position that orders later same-queue issues after this
    /// transfer: the first covering `SpeTagWaitEnd` or the first
    /// `SpeDmaBarrier` after issue (`u32::MAX` when neither exists).
    order_pos: u32,
    /// First covering `SpeTagWaitEnd` — the only completion witness
    /// other streams can observe (`u32::MAX` when never waited).
    wait_pos: u32,
    /// Stream index of the issuing SPE in the clock universe.
    stream: usize,
    /// The stream's clock at issue.
    issue_vc: VecClock,
}

/// An address-space span carried by the overlap tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AddrSpan {
    lo: u64,
    hi: u64,
    idx: u32,
}

impl Span for AddrSpan {
    fn span(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }
}

/// The built race index: every proven [`RaceWitness`], grouped into
/// per-`(spe, tag)` shards for the parallel lint runner.
#[derive(Debug)]
pub struct HbIndex {
    /// Sorted distinct `(spe, tag)` pairs over *all* transfers — the
    /// shard universe. A race lands in the shard of its `second`
    /// (anchor) access.
    shards: Vec<(u8, u8)>,
    /// All races, sorted by `(shard, second.global, first.global)`.
    races: Vec<RaceWitness>,
    /// `races` range per shard.
    ranges: Vec<(usize, usize)>,
    degraded: bool,
}

impl HbIndex {
    /// Reconstructs transfers, propagates clocks over `edges` (use
    /// [`sync_edges_columns`](crate::causality::sync_edges_columns))
    /// and enumerates every unordered overlapping pair.
    pub fn build(trace: &ColumnarTrace, edges: &[CausalEdge]) -> Self {
        let offsets = trace.core_offsets();
        let stream_index: HashMap<TraceCore, usize> = offsets
            .iter()
            .enumerate()
            .map(|(i, (c, _))| (*c, i))
            .collect();
        let width = offsets.len();

        // Per-SPE transfer reconstruction: the same lifetime replay as
        // the lint sweep, plus barrier ordering and witness positions.
        let mut per_spe: Vec<(u8, Vec<Transfer>)> = Vec::new();
        let mut issue_of: HashMap<usize, (usize, usize)> = HashMap::new();
        for spe in trace.spes() {
            let core = TraceCore::Spe(spe);
            if !trace.core_has_group(core, EventGroup::SpeDma) {
                continue;
            }
            let stream = stream_index[&core];
            let mut transfers: Vec<Transfer> = Vec::new();
            let mut pending: Vec<usize> = Vec::new();
            for (pos, &g) in trace.core_slice(core).iter().enumerate() {
                let v = trace.events.view(g as usize);
                match v.code {
                    EventCode::SpeDmaGet | EventCode::SpeDmaPut => {
                        if v.params.len() < 4 {
                            continue;
                        }
                        transfers.push(Transfer {
                            acc: Access {
                                spe,
                                dir: if v.code == EventCode::SpeDmaGet {
                                    AccessDir::Get
                                } else {
                                    AccessDir::Put
                                },
                                tag: (v.params[3] & 0xff) as u8,
                                lsa: v.params[1],
                                ea: v.params[0],
                                bytes: v.params[2],
                                time_tb: v.time_tb,
                                seq: v.stream_seq,
                                global: g as usize,
                            },
                            list: v.params[3] >> 8 != 0,
                            pos: pos as u32,
                            order_pos: u32::MAX,
                            wait_pos: u32::MAX,
                            stream,
                            issue_vc: VecClock::new(width),
                        });
                        pending.push(transfers.len() - 1);
                    }
                    EventCode::SpeTagWaitEnd => {
                        let completed = v.params.first().copied().unwrap_or(0) as u32;
                        pending.retain(|&i| {
                            if completed & (1u32 << transfers[i].tag()) != 0 {
                                transfers[i].wait_pos = pos as u32;
                                transfers[i].order_pos = transfers[i].order_pos.min(pos as u32);
                                false
                            } else {
                                true
                            }
                        });
                    }
                    EventCode::SpeDmaBarrier => {
                        // The barrier command holds the MFC queue until
                        // every earlier command completes: all still-
                        // open transfers become ordered before anything
                        // issued after this position.
                        for &i in &pending {
                            transfers[i].order_pos = transfers[i].order_pos.min(pos as u32);
                        }
                    }
                    _ => {}
                }
            }
            let si = per_spe.len();
            for (ti, t) in transfers.iter().enumerate() {
                issue_of.insert(t.acc.global, (si, ti));
            }
            per_spe.push((spe, transfers));
        }

        // No transfers, no races: skip clock propagation entirely, so
        // DMA-free traces (all-user-event storms, pure compute) pay
        // nothing for the engine.
        if per_spe.iter().all(|(_, ts)| ts.is_empty()) {
            return HbIndex {
                shards: Vec::new(),
                races: Vec::new(),
                ranges: Vec::new(),
                degraded: false,
            };
        }

        // Clock propagation: snapshot each transfer's issue clock.
        let mut issue_clocks: HashMap<usize, VecClock> = HashMap::new();
        let degraded = propagate(trace, edges, |g, _si, _pos, vc| {
            if issue_of.contains_key(&g) {
                issue_clocks.insert(g, vc.clone());
            }
        });
        for (_, transfers) in &mut per_spe {
            for t in transfers {
                if let Some(vc) = issue_clocks.remove(&t.acc.global) {
                    t.issue_vc = vc;
                }
            }
        }

        let mut races: Vec<RaceWitness> = Vec::new();
        let mut ls_pairs: HashSet<(usize, usize)> = HashSet::new();

        // Local-store pairs, per SPE: earlier transfer `a`, later `t`
        // (stream position order); they race when the bytes overlap, at
        // least one writes LS (a GET), and `t` was issued before
        // anything ordered `a`'s completion (no covering wait-end or
        // barrier in between). Same-tag pairs are *not* exempt.
        for (_, transfers) in &per_spe {
            let spans: Vec<AddrSpan> = transfers
                .iter()
                .enumerate()
                .filter(|(_, t)| t.acc.bytes > 0)
                .map(|(i, t)| AddrSpan {
                    lo: t.acc.lsa,
                    hi: t.acc.lsa + t.acc.bytes,
                    idx: i as u32,
                })
                .collect();
            let tree = IntervalTree::new(spans);
            for (i, t) in transfers.iter().enumerate() {
                if t.acc.bytes == 0 {
                    continue;
                }
                for span in tree.range(t.acc.lsa, t.acc.lsa + t.acc.bytes) {
                    let j = span.idx as usize;
                    if j >= i {
                        continue;
                    }
                    let a = &transfers[j];
                    if a.acc.dir != AccessDir::Get && t.acc.dir != AccessDir::Get {
                        continue;
                    }
                    if t.pos < a.order_pos {
                        ls_pairs.insert((a.acc.global, t.acc.global));
                        races.push(witness(Space::LocalStore, a, t));
                    }
                }
            }
        }

        // Effective-address pairs, global: at least one PUT writes the
        // range. Same-stream pairs use queue ordering; cross-stream
        // pairs are ordered only when one side's completion witness is
        // inside the other's issue clock.
        let flat: Vec<(usize, usize)> = per_spe
            .iter()
            .enumerate()
            .flat_map(|(si, (_, ts))| (0..ts.len()).map(move |ti| (si, ti)))
            .collect();
        let spans: Vec<AddrSpan> = flat
            .iter()
            .enumerate()
            .filter(|(_, &(si, ti))| {
                let t = &per_spe[si].1[ti];
                !t.list && t.acc.bytes > 0
            })
            .map(|(i, &(si, ti))| {
                let t = &per_spe[si].1[ti];
                AddrSpan {
                    lo: t.acc.ea,
                    hi: t.acc.ea + t.acc.bytes,
                    idx: i as u32,
                }
            })
            .collect();
        let tree = IntervalTree::new(spans);
        for (i, &(si, ti)) in flat.iter().enumerate() {
            let t = &per_spe[si].1[ti];
            if t.list || t.acc.bytes == 0 {
                continue;
            }
            for span in tree.range(t.acc.ea, t.acc.ea + t.acc.bytes) {
                let j = span.idx as usize;
                if j >= i {
                    continue;
                }
                let (sj, tj) = flat[j];
                let a = &per_spe[sj].1[tj];
                if a.acc.dir != AccessDir::Put && t.acc.dir != AccessDir::Put {
                    continue;
                }
                let ordered = if a.stream == t.stream {
                    // Same MFC queue: positions decide (a precedes t).
                    t.pos >= a.order_pos
                } else {
                    completes_before(a, t) || completes_before(t, a)
                };
                if ordered {
                    continue;
                }
                let (first, second) = if a.acc.global < t.acc.global {
                    (a, t)
                } else {
                    (t, a)
                };
                // A pair already proven racing in local store is one
                // finding, not two: keep the LS witness.
                if ls_pairs.contains(&(first.acc.global, second.acc.global)) {
                    continue;
                }
                races.push(witness(Space::MainMemory, first, second));
            }
        }

        // Shard universe: every (spe, tag) with at least one transfer.
        let mut shards: Vec<(u8, u8)> = per_spe
            .iter()
            .flat_map(|(spe, ts)| ts.iter().map(move |t| (*spe, t.acc.tag)))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        let shard_rank: HashMap<(u8, u8), usize> =
            shards.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        races.sort_by_key(|r| {
            (
                shard_rank[&(r.second.spe, r.second.tag)],
                r.second.global,
                r.first.global,
            )
        });
        let mut ranges = vec![(0usize, 0usize); shards.len()];
        let mut at = 0;
        for (i, &shard) in shards.iter().enumerate() {
            let start = at;
            while at < races.len() && (races[at].second.spe, races[at].second.tag) == shard {
                at += 1;
            }
            ranges[i] = (start, at);
        }
        debug_assert_eq!(at, races.len(), "every race belongs to a shard");

        HbIndex {
            shards,
            races,
            ranges,
            degraded,
        }
    }

    /// The shard universe: sorted distinct `(spe, tag)` pairs.
    pub fn shards(&self) -> &[(u8, u8)] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The races of shard `i`, in `(second.global, first.global)`
    /// order.
    pub fn races_in_shard(&self, i: usize) -> &[RaceWitness] {
        let (lo, hi) = self.ranges[i];
        &self.races[lo..hi]
    }

    /// Every race, grouped by shard.
    pub fn races(&self) -> &[RaceWitness] {
        &self.races
    }

    /// True when propagation had to break a cycle (clock-skewed or
    /// damaged trace): verdicts are conservative, findings suspect.
    pub fn degraded(&self) -> bool {
        self.degraded
    }
}

impl Transfer {
    fn tag(&self) -> u8 {
        self.acc.tag
    }
}

/// Whether `a`'s completion is ordered before `b`'s issue across
/// streams: `a` has a completion witness (first covering wait-end at
/// `wait_pos` on its own stream) and `b`'s issue clock has observed
/// that position.
fn completes_before(a: &Transfer, b: &Transfer) -> bool {
    a.wait_pos != u32::MAX && b.issue_vc.get(a.stream) > a.wait_pos
}

/// Builds the witness for an unordered overlapping pair; `a` precedes
/// `b` in global event order for LS pairs (stream-position order) and
/// is pre-swapped by the caller for EA pairs.
fn witness(space: Space, a: &Transfer, b: &Transfer) -> RaceWitness {
    let (alo, ahi, blo, bhi) = match space {
        Space::LocalStore => (
            a.acc.lsa,
            a.acc.lsa + a.acc.bytes,
            b.acc.lsa,
            b.acc.lsa + b.acc.bytes,
        ),
        Space::MainMemory => (
            a.acc.ea,
            a.acc.ea + a.acc.bytes,
            b.acc.ea,
            b.acc.ea + b.acc.bytes,
        ),
    };
    RaceWitness {
        space,
        first: a.acc,
        second: b.acc,
        lo: alo.max(blo),
        hi: ahi.min(bhi),
        same_tag: a.acc.tag == b.acc.tag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{AnalyzedTrace, GlobalEvent};
    use crate::causality::sync_edges_columns;
    use crate::loss::LossReport;
    use pdt::{TraceHeader, VERSION};

    fn header(spes: u8) -> TraceHeader {
        TraceHeader {
            version: VERSION,
            num_ppe_threads: 1,
            num_spes: spes,
            core_hz: 3_200_000_000,
            timebase_divider: 120,
            dec_start: u32::MAX,
            group_mask: u32::MAX,
            spe_buffer_bytes: 2048,
        }
    }

    fn ev(t: u64, core: TraceCore, code: EventCode, params: Vec<u64>, seq: u64) -> GlobalEvent {
        GlobalEvent {
            time_tb: t,
            core,
            code,
            params,
            stream_seq: seq,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dma(
        t: u64,
        core: TraceCore,
        code: EventCode,
        ea: u64,
        lsa: u64,
        size: u64,
        tag: u64,
        seq: u64,
    ) -> GlobalEvent {
        ev(t, core, code, vec![ea, lsa, size, tag], seq)
    }

    fn cols(events: Vec<GlobalEvent>, spes: u8) -> ColumnarTrace {
        ColumnarTrace::from_analyzed(&AnalyzedTrace {
            header: header(spes),
            events,
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        })
    }

    fn build(c: &ColumnarTrace) -> HbIndex {
        HbIndex::build(c, &sync_edges_columns(c, &LossReport::default()))
    }

    #[test]
    fn same_tag_overlap_without_wait_races() {
        use EventCode::*;
        let s = TraceCore::Spe(0);
        let c = cols(
            vec![
                dma(10, s, SpeDmaGet, 0x100000, 0x1000, 4096, 0, 0),
                dma(20, s, SpeDmaGet, 0x200000, 0x1000, 4096, 0, 1),
                ev(30, s, SpeTagWaitBegin, vec![1, 0], 2),
                ev(40, s, SpeTagWaitEnd, vec![1], 3),
            ],
            1,
        );
        let idx = build(&c);
        assert_eq!(idx.races().len(), 1, "{:?}", idx.races());
        let r = &idx.races()[0];
        assert!(r.same_tag);
        assert_eq!(r.space, Space::LocalStore);
        assert_eq!((r.lo, r.hi), (0x1000, 0x2000));
        assert_eq!(r.second.seq, 1);
        assert!(!idx.degraded());
    }

    #[test]
    fn wait_between_same_tag_transfers_orders_them() {
        use EventCode::*;
        let s = TraceCore::Spe(0);
        let c = cols(
            vec![
                dma(10, s, SpeDmaGet, 0x100000, 0x1000, 4096, 0, 0),
                ev(20, s, SpeTagWaitBegin, vec![1, 0], 1),
                ev(30, s, SpeTagWaitEnd, vec![1], 2),
                dma(40, s, SpeDmaGet, 0x200000, 0x1000, 4096, 0, 3),
                ev(50, s, SpeTagWaitBegin, vec![1, 0], 4),
                ev(60, s, SpeTagWaitEnd, vec![1], 5),
            ],
            1,
        );
        assert!(build(&c).races().is_empty());
    }

    #[test]
    fn dma_barrier_orders_across_tags() {
        use EventCode::*;
        let s = TraceCore::Spe(0);
        // PUT tag 0, barrier, GET tag 1 into the same buffer: the
        // window heuristic (no barrier knowledge) flags this; the
        // engine sees the queue ordering.
        let c = cols(
            vec![
                dma(10, s, SpeDmaPut, 0x100000, 0x1000, 4096, 0, 0),
                ev(20, s, SpeDmaBarrier, vec![], 1),
                dma(30, s, SpeDmaGet, 0x200000, 0x1000, 4096, 1, 2),
                ev(40, s, SpeTagWaitBegin, vec![0b11, 0], 3),
                ev(50, s, SpeTagWaitEnd, vec![0b11], 4),
            ],
            1,
        );
        assert!(build(&c).races().is_empty());
        // Without the barrier the same shape races.
        let c = cols(
            vec![
                dma(10, s, SpeDmaPut, 0x100000, 0x1000, 4096, 0, 0),
                dma(30, s, SpeDmaGet, 0x200000, 0x1000, 4096, 1, 1),
                ev(40, s, SpeTagWaitBegin, vec![0b11, 0], 2),
                ev(50, s, SpeTagWaitEnd, vec![0b11], 3),
            ],
            1,
        );
        assert_eq!(build(&c).races().len(), 1);
    }

    #[test]
    fn cross_spe_ea_writes_race_without_sync_path() {
        use EventCode::*;
        let s0 = TraceCore::Spe(0);
        let s1 = TraceCore::Spe(1);
        let c = cols(
            vec![
                dma(10, s0, SpeDmaPut, 0x100000, 0x1000, 4096, 0, 0),
                ev(20, s0, SpeTagWaitBegin, vec![1, 0], 1),
                ev(30, s0, SpeTagWaitEnd, vec![1], 2),
                dma(40, s1, SpeDmaPut, 0x100800, 0x1000, 4096, 0, 0),
                ev(50, s1, SpeTagWaitBegin, vec![1, 0], 1),
                ev(60, s1, SpeTagWaitEnd, vec![1], 2),
            ],
            2,
        );
        let idx = build(&c);
        assert_eq!(idx.races().len(), 1, "{:?}", idx.races());
        let r = &idx.races()[0];
        assert_eq!(r.space, Space::MainMemory);
        assert_eq!((r.lo, r.hi), (0x100800, 0x101000));
        assert_eq!((r.first.spe, r.second.spe), (0, 1));
    }

    #[test]
    fn mailbox_edge_orders_cross_spe_ea_overlap() {
        use EventCode::*;
        let p = TraceCore::Ppe(0);
        let s0 = TraceCore::Spe(0);
        let s1 = TraceCore::Spe(1);
        // SPE0 PUTs and waits, tells the PPE; the PPE forwards to
        // SPE1, which only then PUTs the same range: ordered.
        let c = cols(
            vec![
                dma(10, s0, SpeDmaPut, 0x100000, 0x1000, 4096, 0, 0),
                ev(20, s0, SpeTagWaitBegin, vec![1, 0], 1),
                ev(30, s0, SpeTagWaitEnd, vec![1], 2),
                ev(40, s0, SpeMboxWrite, vec![1], 3),
                ev(50, p, PpeMboxRead, vec![0, 1], 0),
                ev(60, p, PpeMboxWrite, vec![1, 1], 1),
                ev(70, s1, SpeMboxReadBegin, vec![], 0),
                ev(80, s1, SpeMboxReadEnd, vec![1], 1),
                dma(90, s1, SpeDmaPut, 0x100800, 0x1000, 4096, 0, 2),
                ev(100, s1, SpeTagWaitBegin, vec![1, 0], 3),
                ev(110, s1, SpeTagWaitEnd, vec![1], 4),
            ],
            2,
        );
        let mut c = c;
        c.set_anchors(vec![
            crate::analyze::SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 0,
                dec_start: u32::MAX,
            },
            crate::analyze::SpeAnchor {
                spe: 1,
                ctx: 1,
                run_tb: 0,
                dec_start: u32::MAX,
            },
        ]);
        let idx = build(&c);
        assert!(idx.races().is_empty(), "{:?}", idx.races());
        // Drop SPE0's wait (no completion witness): the same mailbox
        // hop no longer orders the *transfer*, only the issue.
        let c2 = cols(
            vec![
                dma(10, s0, SpeDmaPut, 0x100000, 0x1000, 4096, 0, 0),
                ev(40, s0, SpeMboxWrite, vec![1], 1),
                ev(50, p, PpeMboxRead, vec![0, 1], 0),
                ev(60, p, PpeMboxWrite, vec![1, 1], 1),
                ev(70, s1, SpeMboxReadBegin, vec![], 0),
                ev(80, s1, SpeMboxReadEnd, vec![1], 1),
                dma(90, s1, SpeDmaPut, 0x100800, 0x1000, 4096, 0, 2),
                ev(100, s1, SpeTagWaitBegin, vec![1, 0], 3),
                ev(110, s1, SpeTagWaitEnd, vec![1], 4),
            ],
            2,
        );
        let mut c2 = c2;
        c2.set_anchors(vec![
            crate::analyze::SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 0,
                dec_start: u32::MAX,
            },
            crate::analyze::SpeAnchor {
                spe: 1,
                ctx: 1,
                run_tb: 0,
                dec_start: u32::MAX,
            },
        ]);
        assert_eq!(build(&c2).races().len(), 1);
    }

    #[test]
    fn list_dma_skips_ea_check_but_keeps_ls_check() {
        use EventCode::*;
        let s = TraceCore::Spe(0);
        // params[3] high bits mark a list DMA: its EA side scatters.
        let c = cols(
            vec![
                dma(10, s, SpeDmaPut, 0x100000, 0x1000, 4096, 0x100, 0),
                dma(20, s, SpeDmaPut, 0x100000, 0x3000, 4096, 1, 1),
                ev(30, s, SpeTagWaitBegin, vec![0b11, 0], 2),
                ev(40, s, SpeTagWaitEnd, vec![0b11], 3),
            ],
            1,
        );
        // Disjoint LS, overlapping EA, but the first is a list DMA:
        // nothing to report.
        assert!(build(&c).races().is_empty());
        // Overlapping LS still checks (GET writes LS).
        let c = cols(
            vec![
                dma(10, s, SpeDmaGet, 0x100000, 0x1000, 4096, 0x100, 0),
                dma(20, s, SpeDmaGet, 0x200000, 0x1000, 4096, 1, 1),
                ev(30, s, SpeTagWaitBegin, vec![0b11, 0], 2),
                ev(40, s, SpeTagWaitEnd, vec![0b11], 3),
            ],
            1,
        );
        assert_eq!(build(&c).races().len(), 1);
    }

    #[test]
    fn shard_grouping_concatenates_to_all_races() {
        use EventCode::*;
        let s = TraceCore::Spe(0);
        let c = cols(
            vec![
                dma(10, s, SpeDmaGet, 0x100000, 0x1000, 4096, 0, 0),
                dma(20, s, SpeDmaGet, 0x200000, 0x1800, 4096, 1, 1),
                dma(30, s, SpeDmaGet, 0x300000, 0x2000, 4096, 2, 2),
                ev(40, s, SpeTagWaitBegin, vec![0b111, 0], 3),
                ev(50, s, SpeTagWaitEnd, vec![0b111], 4),
            ],
            1,
        );
        let idx = build(&c);
        assert_eq!(idx.shards(), &[(0, 0), (0, 1), (0, 2)]);
        let concat: Vec<RaceWitness> = (0..idx.shard_count())
            .flat_map(|i| idx.races_in_shard(i).iter().copied())
            .collect();
        assert_eq!(concat, idx.races());
        // Pairs (tag0, tag1) and (tag1, tag2) overlap; tag0/tag2 are
        // adjacent. Each race lands in its second access's shard.
        assert_eq!(idx.races().len(), 2, "{:?}", idx.races());
        assert_eq!(idx.races_in_shard(0).len(), 0);
        assert_eq!(idx.races_in_shard(1).len(), 1);
        assert_eq!(idx.races_in_shard(2).len(), 1);
    }

    #[test]
    fn clock_table_orders_mailbox_chain() {
        use EventCode::*;
        let p = TraceCore::Ppe(0);
        let s = TraceCore::Spe(0);
        let mut c = cols(
            vec![
                ev(10, p, PpeCtxRun, vec![0, 0, u32::MAX as u64], 0),
                ev(20, s, SpeCtxStart, vec![0], 0),
                ev(30, p, PpeMboxWrite, vec![0, 7], 1),
                ev(40, s, SpeMboxReadBegin, vec![], 1),
                ev(50, s, SpeMboxReadEnd, vec![7], 2),
            ],
            1,
        );
        c.set_anchors(vec![crate::analyze::SpeAnchor {
            spe: 0,
            ctx: 0,
            run_tb: 10,
            dec_start: u32::MAX,
        }]);
        let edges = sync_edges_columns(&c, &LossReport::default());
        let t = event_clocks(&c, &edges);
        assert!(!t.degraded());
        // Write (global 2) happens before read-end (global 4), not the
        // reverse; read-begin (3) is unordered with the write.
        assert!(t.happens_before(2, 4));
        assert!(!t.happens_before(4, 2));
        assert!(!t.happens_before(2, 3));
        assert!(t.happens_before(0, 1), "ctx-run precedes ctx-start");
        assert!(!t.happens_before(2, 2), "irreflexive");
    }
}
