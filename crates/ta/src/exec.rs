//! Work-stealing task execution: the one scheduler every parallel
//! path in the analyzer shares.
//!
//! Earlier versions spawned fresh scoped threads at each parallel
//! call site (stream decode, index bucket counts, product fan-out),
//! which load-imbalanced badly — a static product-per-thread split
//! leaves three workers idle while the index build finishes — and
//! paid a thread spawn/join per call on the streaming path. This
//! module replaces all of that with:
//!
//! - [`Parallelism`] — the single user-facing concurrency knob
//!   (`Serial | Workers(n) | Auto`), accepted by
//!   [`Analysis::of`](crate::Analysis::of)`.parallelism(..)`,
//!   [`IngestSession`](crate::IngestSession) and the CLI binaries.
//! - [`ExecPool`] — a process-wide pool of persistent workers built on
//!   `crossbeam::deque`: one LIFO local deque per attached executor
//!   plus a global FIFO injector per scope. Idle executors pop the
//!   injector first, then steal oldest-first from siblings.
//! - [`ExecPool::scope`] — structured fork/join: tasks may borrow from
//!   the caller's stack, the calling thread always participates as an
//!   executor (so a scope completes even if every pool worker is
//!   busy, and nested scopes cannot deadlock), and panics from tasks
//!   are rejoined onto the caller.
//! - [`ExecStats`] — scheduler counters (tasks run, steals, injector
//!   pops, per-worker busy time), surfaced through `ta-serve`'s
//!   `stats` command and `ta-cli --exec-stats`.
//!
//! Determinism is structural, not scheduled: every parallel product
//! writes shard results into index-addressed slots and assembles them
//! in a fixed order, so output is byte-identical across `Serial`,
//! `Workers(n)` and repeated runs regardless of interleaving.

use std::cell::Cell;
use std::marker::PhantomData;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// The analyzer's single concurrency knob: how many executors a
/// parallel region may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Exactly one executor (the calling thread); no pool involvement.
    Serial,
    /// Up to `n` concurrent executors: the calling thread plus at most
    /// `n - 1` pool workers. `Workers(0)` and `Workers(1)` behave like
    /// [`Parallelism::Serial`]. Executor count is additionally capped
    /// at the host's hardware parallelism — extra threads beyond that
    /// only contend for the same cores — while the *shard
    /// decomposition* still follows `n`, so products stay identical
    /// whatever the host size.
    Workers(usize),
    /// One executor per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
}

impl Parallelism {
    /// The resolved executor count: at least 1; `Auto` resolves to the
    /// host's available hardware parallelism.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Workers(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Maps a worker-count integer onto the enum: `n <= 1` is
    /// [`Parallelism::Serial`], anything else [`Parallelism::Workers`]
    /// — how `ta-cli -j N` and other integer knobs spell the enum.
    pub fn from_threads(n: usize) -> Self {
        if n <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Workers(n)
        }
    }
}

/// A task queued into a scope. Lifetime-erased: the scope guarantees
/// (by blocking until `pending == 0`) that no job outlives the stack
/// frame it borrows from.
type Job = Box<dyn FnOnce(&Scope<'static>) + Send + 'static>;

/// One fork/join region's shared state.
struct ScopeCtx {
    /// Global FIFO queue: spawns from outside the scope's executors
    /// land here.
    injector: Injector<Job>,
    /// Stealers for every attached executor's local deque, keyed by
    /// attachment id so an executor can skip its own.
    stealers: Mutex<Vec<(usize, Stealer<Job>)>>,
    /// Monotonic attachment ids.
    attach_seq: AtomicUsize,
    /// Spawned-but-unfinished job count; the scope is complete when
    /// this reaches zero.
    pending: AtomicUsize,
    /// Remaining pool-worker attach slots (`workers - 1`; the caller
    /// holds the implicit last slot).
    slots: AtomicUsize,
    /// Sleep/wake for executors out of stealable work and the caller
    /// awaiting completion.
    sync: Mutex<()>,
    cv: Condvar,
    /// First panic payload raised by a job, rejoined onto the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeCtx {
    fn new(pool_slots: usize) -> Self {
        ScopeCtx {
            injector: Injector::new(),
            stealers: Mutex::new(Vec::new()),
            attach_seq: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            slots: AtomicUsize::new(pool_slots),
            sync: Mutex::new(()),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Whether any queue (injector or a local deque) holds work.
    fn has_queued(&self) -> bool {
        !self.injector.is_empty()
            || self
                .stealers
                .lock()
                .unwrap()
                .iter()
                .any(|(_, s)| !s.is_empty())
    }
}

/// Scheduler counters accumulated over the pool's lifetime. Snapshot
/// with [`ExecPool::stats`]; diff two snapshots with
/// [`ExecStats::since`] to isolate one region's activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Jobs executed (on pool workers and participating callers).
    pub tasks: u64,
    /// Jobs taken from another executor's local deque.
    pub steals: u64,
    /// Jobs taken from a scope's global injector queue.
    pub injector_pops: u64,
    /// Pool worker threads spawned so far (callers not counted).
    pub workers: usize,
    /// Nanoseconds calling threads spent executing jobs while
    /// participating in their own scopes.
    pub caller_busy_ns: u64,
    /// Nanoseconds each pool worker spent executing jobs, indexed by
    /// worker id.
    pub worker_busy_ns: Vec<u64>,
}

impl ExecStats {
    /// Counter deltas since an earlier snapshot (saturating, so a
    /// stale `earlier` cannot underflow).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            tasks: self.tasks.saturating_sub(earlier.tasks),
            steals: self.steals.saturating_sub(earlier.steals),
            injector_pops: self.injector_pops.saturating_sub(earlier.injector_pops),
            workers: self.workers,
            caller_busy_ns: self.caller_busy_ns.saturating_sub(earlier.caller_busy_ns),
            worker_busy_ns: self
                .worker_busy_ns
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    b.saturating_sub(earlier.worker_busy_ns.get(i).copied().unwrap_or(0))
                })
                .collect(),
        }
    }

    /// Total busy nanoseconds across callers and pool workers.
    pub fn busy_ns(&self) -> u64 {
        self.caller_busy_ns + self.worker_busy_ns.iter().sum::<u64>()
    }
}

/// Pool-wide shared state.
struct PoolShared {
    /// Scopes currently accepting pool workers.
    scopes: Mutex<Vec<Arc<ScopeCtx>>>,
    /// Wakes idle pool workers when a scope gains work or slots.
    cv: Condvar,
    /// Pool worker threads created so far.
    spawned: AtomicUsize,
    tasks: AtomicU64,
    steals: AtomicU64,
    injector_pops: AtomicU64,
    caller_busy_ns: AtomicU64,
    /// Per-worker busy counters, pushed as workers spawn.
    worker_busy: Mutex<Vec<Arc<AtomicU64>>>,
}

/// What the currently-running executor on this thread is attached to;
/// lets [`Scope::spawn`] push to the executor's own local deque
/// instead of the shared injector.
#[derive(Clone, Copy)]
struct CurrentExec {
    ctx: *const ScopeCtx,
    local: *const Worker<Job>,
}

thread_local! {
    static CURRENT: Cell<Option<CurrentExec>> = const { Cell::new(None) };
}

/// A process-wide work-stealing pool of persistent worker threads.
/// Obtain the shared instance with [`pool`]; worker threads are
/// spawned lazily, up to the largest concurrency any scope has asked
/// for, and park on a condvar between scopes.
pub struct ExecPool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("workers", &self.shared.spawned.load(Ordering::Relaxed))
            .finish()
    }
}

/// The host's hardware thread count, resolved once per process.
fn host_parallelism() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The shared process-wide [`ExecPool`].
pub fn pool() -> &'static ExecPool {
    static POOL: OnceLock<ExecPool> = OnceLock::new();
    POOL.get_or_init(|| ExecPool {
        shared: Arc::new(PoolShared {
            scopes: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            spawned: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
            caller_busy_ns: AtomicU64::new(0),
            worker_busy: Mutex::new(Vec::new()),
        }),
    })
}

/// Handle to a fork/join region: spawn tasks that may borrow
/// everything outliving the [`ExecPool::scope`] call. Tasks receive a
/// scope reference of their own, so a completing shard can release
/// dependent tasks into the same region.
pub struct Scope<'scope> {
    ctx: Arc<ScopeCtx>,
    pool: Arc<PoolShared>,
    /// Invariant over `'scope` (as in `rayon::Scope`): prevents the
    /// region from being smuggled into a longer-lived one.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &self.ctx.pending.load(Ordering::Relaxed))
            .finish()
    }
}

impl<'scope> Scope<'scope> {
    /// Queues `f` for execution within this scope. If the calling
    /// thread is itself an executor of this scope, the task goes to
    /// its local LIFO deque (hot data stays put; idle siblings steal
    /// the oldest task); otherwise it goes to the scope's global
    /// injector.
    // The one unsafe region in the workspace (the manifests forbid it
    // elsewhere): scoped lifetime erasure, justified at each site.
    #[allow(unsafe_code)]
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.ctx.pending.fetch_add(1, Ordering::SeqCst);
        let job: Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope> = Box::new(f);
        // SAFETY: the scope blocks (even on unwind) until `pending`
        // reaches zero, so no job — queued or running — outlives the
        // `'scope` data it borrows. The lifetime erasure is never
        // observable.
        let job: Job = unsafe { mem::transmute(job) };
        let mut job = Some(job);
        CURRENT.with(|c| {
            if let Some(cur) = c.get() {
                if std::ptr::eq(cur.ctx, Arc::as_ptr(&self.ctx)) {
                    // SAFETY: `cur.local` points into the live
                    // `run_attached` frame of this very thread.
                    unsafe { &*cur.local }.push(job.take().unwrap());
                }
            }
        });
        if let Some(j) = job.take() {
            self.ctx.injector.push(j);
        }
        // Wake one sleeping executor of this scope, and the pool if
        // attach slots remain.
        {
            let _g = self.ctx.sync.lock().unwrap();
            self.ctx.cv.notify_one();
        }
        if self.ctx.slots.load(Ordering::SeqCst) > 0 {
            let _g = self.pool.scopes.lock().unwrap();
            self.pool.cv.notify_all();
        }
    }
}

impl ExecPool {
    /// Runs `op` inside a fork/join region with at most
    /// `par.workers()` concurrent executors: the calling thread plus
    /// lazily-woken pool workers. Returns once every spawned task has
    /// finished. The caller always participates, so the scope makes
    /// progress even if no pool worker ever attaches, and scopes
    /// opened from within tasks (nested parallelism) cannot deadlock.
    /// A panicking task poisons nothing: the first payload is rejoined
    /// onto the caller after the scope drains.
    pub fn scope<'scope, OP, R>(&self, par: Parallelism, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        // Never oversubscribe the host: pool workers beyond the
        // hardware thread count would only contend with the caller for
        // the same cores (measurably so on small CI boxes). The shard
        // decomposition still follows the requested worker count, so
        // results do not depend on the cap.
        let pool_slots = par.workers().min(host_parallelism()).saturating_sub(1);
        let ctx = Arc::new(ScopeCtx::new(pool_slots));
        let scope = Scope {
            ctx: Arc::clone(&ctx),
            pool: Arc::clone(&self.shared),
            _marker: PhantomData,
        };
        let registered = pool_slots > 0;
        if registered {
            self.ensure_workers(pool_slots);
            let mut scopes = self.shared.scopes.lock().unwrap();
            scopes.push(Arc::clone(&ctx));
            self.shared.cv.notify_all();
        }
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Drain: the caller becomes an executor until nothing is
        // pending. This runs on the normal and the panic path alike,
        // so no lifetime-erased job can survive the scope.
        run_attached(&ctx, &self.shared, None);
        if registered {
            let mut scopes = self.shared.scopes.lock().unwrap();
            scopes.retain(|c| !Arc::ptr_eq(c, &ctx));
        }
        let stored = ctx.panic.lock().unwrap().take();
        match result {
            Ok(r) => {
                if let Some(p) = stored {
                    resume_unwind(p);
                }
                r
            }
            Err(p) => resume_unwind(p),
        }
    }

    /// A snapshot of the pool's scheduler counters.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            injector_pops: self.shared.injector_pops.load(Ordering::Relaxed),
            workers: self.shared.spawned.load(Ordering::Relaxed),
            caller_busy_ns: self.shared.caller_busy_ns.load(Ordering::Relaxed),
            worker_busy_ns: self
                .shared
                .worker_busy
                .lock()
                .unwrap()
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Ensures at least `n` persistent pool workers exist.
    fn ensure_workers(&self, n: usize) {
        loop {
            let spawned = self.shared.spawned.load(Ordering::SeqCst);
            if spawned >= n {
                return;
            }
            if self
                .shared
                .spawned
                .compare_exchange(spawned, spawned + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            let busy = Arc::new(AtomicU64::new(0));
            self.shared
                .worker_busy
                .lock()
                .unwrap()
                .push(Arc::clone(&busy));
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("ta-exec-{spawned}"))
                .spawn(move || worker_loop(shared, busy))
                .expect("spawning pool worker");
        }
    }
}

/// Persistent pool worker: waits for a scope with pending work and a
/// free attach slot, attaches, executes until the scope completes,
/// detaches, repeats.
fn worker_loop(shared: Arc<PoolShared>, busy: Arc<AtomicU64>) {
    loop {
        let ctx = {
            let mut scopes = shared.scopes.lock().unwrap();
            loop {
                let found = scopes.iter().find(|c| {
                    c.pending.load(Ordering::SeqCst) > 0 && c.slots.load(Ordering::SeqCst) > 0
                });
                if let Some(c) = found {
                    break Arc::clone(c);
                }
                scopes = shared.cv.wait(scopes).unwrap();
            }
        };
        // Claim an attach slot; losing the race just means re-scanning.
        if ctx
            .slots
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| s.checked_sub(1))
            .is_err()
        {
            continue;
        }
        run_attached(&ctx, &shared, Some(&busy));
        ctx.slots.fetch_add(1, Ordering::SeqCst);
    }
}

/// Executes jobs of `ctx` on the current thread until the scope has
/// nothing pending. `busy` is the pool worker's busy counter; `None`
/// marks a participating caller.
fn run_attached(ctx: &Arc<ScopeCtx>, shared: &Arc<PoolShared>, busy: Option<&AtomicU64>) {
    let local: Worker<Job> = Worker::new_lifo();
    let id = ctx.attach_seq.fetch_add(1, Ordering::SeqCst);
    ctx.stealers.lock().unwrap().push((id, local.stealer()));
    let prev = CURRENT.with(|c| {
        c.replace(Some(CurrentExec {
            ctx: Arc::as_ptr(ctx),
            local: &local,
        }))
    });
    loop {
        match find_job(ctx, &local, id, shared) {
            Some(job) => execute(ctx, job, shared, busy),
            None => {
                if ctx.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                let g = ctx.sync.lock().unwrap();
                // Re-check under the lock `spawn` notifies through, so
                // a wakeup between the failed find and this wait is
                // not lost; the timeout is a belt-and-braces backstop.
                if ctx.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                if !ctx.has_queued() {
                    let _ = ctx.cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
                }
            }
        }
    }
    CURRENT.with(|c| c.set(prev));
    ctx.stealers.lock().unwrap().retain(|(i, _)| *i != id);
}

/// Job acquisition order: own LIFO deque, then the scope's FIFO
/// injector, then steal oldest-first from sibling deques.
fn find_job(ctx: &ScopeCtx, local: &Worker<Job>, id: usize, shared: &PoolShared) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    loop {
        match ctx.injector.steal() {
            Steal::Success(job) => {
                shared.injector_pops.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    let stealers: Vec<(usize, Stealer<Job>)> = ctx.stealers.lock().unwrap().clone();
    for (sid, stealer) in &stealers {
        if *sid == id {
            continue;
        }
        if let Steal::Success(job) = stealer.steal() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
    }
    None
}

/// Runs one job: catches panics (first payload wins), accounts busy
/// time and task counts, and signals completion when the scope's
/// pending count reaches zero.
fn execute(ctx: &Arc<ScopeCtx>, job: Job, shared: &Arc<PoolShared>, busy: Option<&AtomicU64>) {
    let scope = Scope {
        ctx: Arc::clone(ctx),
        pool: Arc::clone(shared),
        _marker: PhantomData,
    };
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(move || job(&scope)));
    let ns = start.elapsed().as_nanos() as u64;
    busy.unwrap_or(&shared.caller_busy_ns)
        .fetch_add(ns, Ordering::Relaxed);
    shared.tasks.fetch_add(1, Ordering::Relaxed);
    if let Err(p) = result {
        let mut slot = ctx.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(p);
        }
    }
    if ctx.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
        let _g = ctx.sync.lock().unwrap();
        ctx.cv.notify_all();
    }
}

/// Maps `f` over `0..n`, returning results in index order. `Serial`
/// (or `n <= 1`) runs a plain loop on the caller; otherwise each index
/// becomes one pool task writing into its own slot, so the output
/// never depends on scheduling. The universal shard fan-out helper:
/// per-stream decode, per-SPE interval/stat/lane passes, per-core
/// bucket counts all route through here.
pub fn map_indexed<T, F>(par: Parallelism, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if par.workers() <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool().scope(par, |s| {
        for (i, slot) in slots.iter().enumerate() {
            let f = &f;
            s.spawn(move |_| {
                *slot.lock().unwrap() = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("shard completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Workers(0).workers(), 1);
        assert_eq!(Parallelism::Workers(4).workers(), 4);
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::from_threads(1), Parallelism::Serial);
        assert_eq!(Parallelism::from_threads(6), Parallelism::Workers(6));
    }

    #[test]
    fn map_indexed_matches_serial_loop() {
        let serial: Vec<u64> = (0..100).map(|i| (i * i) as u64).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Workers(2),
            Parallelism::Workers(4),
            Parallelism::Auto,
        ] {
            let got = map_indexed(par, 100, |i| (i * i) as u64);
            assert_eq!(got, serial, "{par:?}");
        }
    }

    #[test]
    fn scope_tasks_borrow_and_complete() {
        let data: Vec<u64> = (0..64).collect();
        let total = AtomicU64::new(0);
        pool().scope(Parallelism::Workers(4), |s| {
            for chunk in data.chunks(8) {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..64).sum::<u64>());
    }

    #[test]
    fn tasks_can_release_dependents() {
        // A completing shard spawns its dependents into the same scope.
        let stage2 = AtomicU64::new(0);
        pool().scope(Parallelism::Workers(4), |s| {
            for _ in 0..4 {
                let stage2 = &stage2;
                s.spawn(move |s| {
                    s.spawn(move |_| {
                        stage2.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(stage2.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_scopes_make_progress() {
        let out = map_indexed(Parallelism::Workers(4), 4, |i| {
            map_indexed(Parallelism::Workers(2), 4, move |j| i * 10 + j)
        });
        let want: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..4).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn task_panic_rejoins_caller() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool().scope(Parallelism::Workers(2), |s| {
                s.spawn(|_| panic!("shard failed"));
                s.spawn(|_| {});
            });
        }));
        assert!(r.is_err());
        // The pool survives a panicked scope.
        assert_eq!(
            map_indexed(Parallelism::Workers(2), 3, |i| i),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn stats_count_tasks() {
        let before = pool().stats();
        map_indexed(Parallelism::Workers(2), 50, |i| i);
        let delta = pool().stats().since(&before);
        assert!(delta.tasks >= 50, "tasks={}", delta.tasks);
    }
}
