//! SVG rendering of timelines — the reproduction of the Trace
//! Analyzer's Gantt view.

use crate::intervals::ActivityKind;
use crate::timeline::Timeline;

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgOptions {
    /// Plot width in pixels (lanes area, excluding the label gutter).
    pub width: u32,
    /// Height of one lane in pixels.
    pub lane_height: u32,
    /// Gap between lanes in pixels.
    pub lane_gap: u32,
    /// Label gutter width in pixels.
    pub gutter: u32,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 960,
            lane_height: 22,
            lane_gap: 6,
            gutter: 140,
        }
    }
}

fn color(kind: ActivityKind) -> &'static str {
    match kind {
        ActivityKind::Compute => "#4caf50",
        ActivityKind::DmaWait => "#e53935",
        ActivityKind::MboxWait => "#fb8c00",
        ActivityKind::SignalWait => "#8e24aa",
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders a timeline to an SVG document string. Front door:
/// [`Analysis::render`](crate::session::Analysis::render) with
/// [`ReportKind::Svg`](crate::report::ReportKind::Svg).
pub(crate) fn render_svg_impl(timeline: &Timeline, opts: &SvgOptions) -> String {
    let n = timeline.lanes.len() as u32;
    let axis_h = 28u32;
    let legend_h = 22u32;
    let height = n * (opts.lane_height + opts.lane_gap) + axis_h + legend_h + 10;
    let total_w = opts.gutter + opts.width + 20;
    let span = timeline.span() as f64;
    let x_of = |tb: u64| -> f64 {
        opts.gutter as f64 + (tb - timeline.start_tb) as f64 / span * opts.width as f64
    };

    let mut svg = String::with_capacity(4096);
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" height="{height}" font-family="monospace" font-size="11">"#
    ));
    svg.push('\n');
    svg.push_str(&format!(
        r##"<rect width="{total_w}" height="{height}" fill="#ffffff"/>"##
    ));
    svg.push('\n');

    // Lanes.
    for (i, lane) in timeline.lanes.iter().enumerate() {
        let y = legend_h + i as u32 * (opts.lane_height + opts.lane_gap);
        svg.push_str(&format!(
            r##"<text x="4" y="{}" fill="#333">{}</text>"##,
            y + opts.lane_height / 2 + 4,
            escape(&lane.label)
        ));
        svg.push('\n');
        // Lane background.
        svg.push_str(&format!(
            r##"<rect x="{}" y="{y}" width="{}" height="{}" fill="#f2f2f2"/>"##,
            opts.gutter, opts.width, opts.lane_height
        ));
        svg.push('\n');
        for seg in &lane.segments {
            let x0 = x_of(seg.start_tb);
            let x1 = x_of(seg.end_tb);
            let w = (x1 - x0).max(0.5);
            svg.push_str(&format!(
                r#"<rect x="{x0:.1}" y="{y}" width="{w:.1}" height="{}" fill="{}"><title>{}: {}..{} ticks</title></rect>"#,
                opts.lane_height,
                color(seg.kind),
                seg.kind.label(),
                seg.start_tb,
                seg.end_tb,
            ));
            svg.push('\n');
        }
        for m in &lane.markers {
            let x = x_of(m.time_tb);
            svg.push_str(&format!(
                r##"<line x1="{x:.1}" y1="{y}" x2="{x:.1}" y2="{}" stroke="#1565c0" stroke-width="1"><title>{} @ {} ticks</title></line>"##,
                y + opts.lane_height,
                m.code.name(),
                m.time_tb,
            ));
            svg.push('\n');
        }
    }

    // Time axis with ~8 ticks.
    let axis_y = legend_h + n * (opts.lane_height + opts.lane_gap) + 12;
    svg.push_str(&format!(
        r##"<line x1="{}" y1="{axis_y}" x2="{}" y2="{axis_y}" stroke="#999"/>"##,
        opts.gutter,
        opts.gutter + opts.width
    ));
    svg.push('\n');
    for i in 0..=8u64 {
        let tb = timeline.start_tb + timeline.span() * i / 8;
        let x = x_of(tb);
        svg.push_str(&format!(
            r##"<line x1="{x:.1}" y1="{axis_y}" x2="{x:.1}" y2="{}" stroke="#999"/><text x="{x:.1}" y="{}" text-anchor="middle" fill="#666">{tb}</text>"##,
            axis_y + 4,
            axis_y + 15,
        ));
        svg.push('\n');
    }

    // Legend.
    let mut lx = opts.gutter;
    for kind in [
        ActivityKind::Compute,
        ActivityKind::DmaWait,
        ActivityKind::MboxWait,
        ActivityKind::SignalWait,
    ] {
        svg.push_str(&format!(
            r##"<rect x="{lx}" y="4" width="12" height="12" fill="{}"/><text x="{}" y="14" fill="#333">{}</text>"##,
            color(kind),
            lx + 16,
            kind.label()
        ));
        svg.push('\n');
        lx += 110;
    }

    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Lane, Marker, Segment};
    use pdt::{EventCode, TraceCore};

    fn timeline() -> Timeline {
        Timeline {
            start_tb: 0,
            end_tb: 1000,
            lanes: vec![Lane {
                label: "SPE0 <&test>".into(),
                core: TraceCore::Spe(0),
                segments: vec![
                    Segment {
                        start_tb: 0,
                        end_tb: 400,
                        kind: ActivityKind::Compute,
                    },
                    Segment {
                        start_tb: 400,
                        end_tb: 1000,
                        kind: ActivityKind::DmaWait,
                    },
                ],
                markers: vec![Marker {
                    time_tb: 500,
                    code: EventCode::SpeUser,
                }],
            }],
        }
    }

    #[test]
    fn svg_is_structurally_sound() {
        let svg = render_svg_impl(&timeline(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per segment, with the right colors.
        assert!(svg.contains("#4caf50"));
        assert!(svg.contains("#e53935"));
        // Marker line and tooltip.
        assert!(svg.contains("spe-user @ 500 ticks"));
        // Label is escaped.
        assert!(svg.contains("SPE0 &lt;&amp;test&gt;"));
        assert!(!svg.contains("<&test>"));
    }

    #[test]
    fn segment_geometry_scales_to_width() {
        let opts = SvgOptions {
            width: 1000,
            ..SvgOptions::default()
        };
        let svg = render_svg_impl(&timeline(), &opts);
        // Compute segment: 40% of 1000 px = 400 px wide at x=gutter.
        assert!(svg.contains(r#"width="400.0""#), "svg: {svg}");
    }

    #[test]
    fn empty_timeline_renders_without_panic() {
        let t = Timeline {
            start_tb: 0,
            end_tb: 0,
            lanes: vec![],
        };
        let svg = render_svg_impl(&t, &SvgOptions::default());
        assert!(svg.contains("</svg>"));
    }
}
