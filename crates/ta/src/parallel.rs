//! Parallel trace ingestion: concurrent per-stream decode and
//! timestamp reconstruction, then a k-way merge.
//!
//! The serial [`analyze`](crate::analyze::analyze) path walks streams
//! one after another and then sorts the combined event list. This
//! module produces the *identical* result (same events, same order,
//! same errors) by exploiting the trace's shape: records are already
//! grouped per core, and within a stream the reconstruction is a local
//! scan. The pipeline is:
//!
//! 1. **Decode** — every stream's records are decoded concurrently,
//!    one shard task per stream on the shared work-stealing pool
//!    ([`crate::exec`]); no threads are spawned per call.
//! 2. **Reconstruct** — each worker converts its streams' records to
//!    [`GlobalEvent`]s: PPE records carry timebase timestamps directly;
//!    SPE records get wrap-safe decrementer accumulation against their
//!    [`SpeAnchor`]. Each per-stream run is then sorted by the global
//!    key. (SPE runs are already in key order; the combined PPE stream
//!    can interleave hardware threads at equal ticks, so the sort is
//!    not a no-op there.)
//! 3. **Merge** — a k-way heap merge zips the sorted runs into the
//!    single globally ordered event list.
//!
//! Equivalence with the serial path is guaranteed because the sort key
//! `(time_tb, core tag, stream_seq)` is unique within a stream, and
//! ties across streams are broken by stream index — exactly the order
//! the serial path's stable sort preserves. The property tests in
//! `tests/prop_parallel.rs` assert byte-identical output for 1, 2 and
//! 8 workers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pdt::{
    decode_stream, decode_stream_lossy, EventCode, LossyDecode, RecordError, TraceCore, TraceFile,
    TraceHeader, TraceRecord,
};

use crate::analyze::{harvest_anchors_from, AnalyzeError, AnalyzedTrace, GlobalEvent, SpeAnchor};
use crate::exec::{self, Parallelism};
use crate::loss::{LossReport, StreamLoss};

/// The sort key ordering the global event list.
type SortKey = (u64, u8, u64);

fn key(e: &GlobalEvent) -> SortKey {
    (e.time_tb, e.core.tag(), e.stream_seq)
}

/// Reconstructs the global timeline using up to `threads` worker
/// threads. Produces exactly the same [`AnalyzedTrace`] (events, order,
/// anchors, errors) as the serial [`analyze`](crate::analyze::analyze).
///
/// `threads` is clamped to at least 1 and at most the stream count;
/// with a single worker the whole pipeline runs on the calling thread.
///
/// # Errors
///
/// Returns [`AnalyzeError`] on corrupt records or missing sync
/// anchors, with the same stream-order precedence as the serial path
/// (all decode errors are reported before any anchor error).
pub fn analyze_parallel(trace: &TraceFile, threads: usize) -> Result<AnalyzedTrace, AnalyzeError> {
    let sources: Vec<(TraceCore, &[u8])> = trace
        .streams
        .iter()
        .map(|s| (s.core, s.bytes.as_slice()))
        .collect();
    analyze_sources(
        trace.header,
        &sources,
        trace.total_dropped(),
        trace.ctx_names.clone(),
        threads,
    )
}

/// The stream-slice entry point behind [`analyze_parallel`]: the same
/// pipeline over borrowed byte windows, used by the zero-copy
/// [`reader`](crate::reader) so a serialized image never has its
/// record bytes copied into a [`TraceFile`] first.
pub(crate) fn analyze_sources(
    header: TraceHeader,
    sources: &[(TraceCore, &[u8])],
    dropped: u64,
    ctx_names: Vec<(u32, String)>,
    threads: usize,
) -> Result<AnalyzedTrace, AnalyzeError> {
    let workers = threads.clamp(1, sources.len().max(1));
    let decoded = decode_sources(sources, workers)?;
    let anchors = harvest_anchors(&decoded);

    // Anchor presence is checked serially, in stream order, so the
    // error precedence matches the serial path exactly.
    for (core, recs) in &decoded {
        if let TraceCore::Spe(spe) = core {
            if !recs.is_empty() && !anchors.iter().any(|a| a.spe == *spe) {
                return Err(AnalyzeError::MissingAnchor { spe: *spe });
            }
        }
    }

    let runs = build_runs(decoded, &anchors, workers);
    let events = merge_runs(runs);

    Ok(AnalyzedTrace {
        header,
        events,
        ctx_names,
        anchors,
        dropped,
    })
}

/// The lossy counterpart of [`analyze_parallel`]: resynchronizes past
/// corruption, never fails, and quantifies everything skipped in a
/// [`LossReport`]. Output (events, order, anchors, report) is identical
/// to the serial [`analyze_lossy`](crate::analyze::analyze_lossy) for
/// every worker count, and identical to the strict paths on
/// uncorrupted input.
pub fn analyze_parallel_lossy(trace: &TraceFile, threads: usize) -> (AnalyzedTrace, LossReport) {
    let sources: Vec<(TraceCore, &[u8], u64)> = trace
        .streams
        .iter()
        .map(|s| (s.core, s.bytes.as_slice(), s.dropped))
        .collect();
    analyze_sources_lossy(trace.header, &sources, trace.ctx_names.clone(), threads)
}

/// The stream-slice entry point behind [`analyze_parallel_lossy`]:
/// sources carry `(core, record bytes, tracer-dropped count)`.
pub(crate) fn analyze_sources_lossy(
    header: TraceHeader,
    sources: &[(TraceCore, &[u8], u64)],
    ctx_names: Vec<(u32, String)>,
    threads: usize,
) -> (AnalyzedTrace, LossReport) {
    let workers = threads.clamp(1, sources.len().max(1));
    let decoded = decode_sources_lossy(sources, workers);

    let anchor_view: Vec<(TraceCore, &[TraceRecord])> = decoded
        .iter()
        .map(|(core, d)| (*core, d.records.as_slice()))
        .collect();
    let anchors = harvest_anchors_from(&anchor_view);

    // Split loss accounting from the records serially, in stream
    // order; SPE streams whose anchor was lost contribute no events.
    let mut losses = Vec::with_capacity(decoded.len());
    let mut run_input: Vec<(TraceCore, Vec<TraceRecord>)> = Vec::with_capacity(decoded.len());
    for (i, (core, lossy)) in decoded.into_iter().enumerate() {
        let LossyDecode { records, gaps } = lossy;
        let decoded_records = records.len() as u64;
        let mut unanchored = false;
        let records = match core {
            TraceCore::Spe(spe) if !records.is_empty() && !anchors.iter().any(|a| a.spe == spe) => {
                unanchored = true;
                Vec::new()
            }
            _ => records,
        };
        losses.push(StreamLoss {
            core,
            decoded_records,
            tracer_dropped: sources[i].2,
            gaps,
            unanchored,
        });
        run_input.push((core, records));
    }

    let runs = build_runs(run_input, &anchors, workers);
    let events = merge_runs(runs);
    let dropped = sources.iter().map(|s| s.2).sum();

    (
        AnalyzedTrace {
            header,
            events,
            ctx_names,
            anchors,
            dropped,
        },
        LossReport { streams: losses },
    )
}

/// Lossily decodes every stream, one shard task per stream on the
/// shared pool. Never fails; corruption becomes per-stream gaps.
fn decode_sources_lossy(
    sources: &[(TraceCore, &[u8], u64)],
    workers: usize,
) -> Vec<(TraceCore, LossyDecode)> {
    let par = Parallelism::from_threads(workers);
    exec::map_indexed(par, sources.len(), |i| {
        decode_stream_lossy(sources[i].1, Some(sources[i].0))
    })
    .into_iter()
    .enumerate()
    .map(|(i, d)| (sources[i].0, d))
    .collect()
}

type DecodeResult = Result<Vec<TraceRecord>, (usize, RecordError)>;

/// Decodes every stream, one shard task per stream on the shared
/// pool, and reports the first corrupt stream in *stream order* (not
/// completion order).
fn decode_sources(
    sources: &[(TraceCore, &[u8])],
    workers: usize,
) -> Result<Vec<(TraceCore, Vec<TraceRecord>)>, AnalyzeError> {
    let par = Parallelism::from_threads(workers);
    let slots: Vec<DecodeResult> =
        exec::map_indexed(par, sources.len(), |i| decode_stream(sources[i].1));

    let mut decoded = Vec::with_capacity(sources.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let core = sources[i].0;
        let recs = slot.map_err(|(offset, cause)| AnalyzeError::Record {
            core,
            offset,
            cause,
        })?;
        decoded.push((core, recs));
    }
    Ok(decoded)
}

/// Harvests `PpeCtxRun` sync anchors from the PPE streams, first
/// anchor per SPE winning, in stream order — same policy as the serial
/// path.
fn harvest_anchors(decoded: &[(TraceCore, Vec<TraceRecord>)]) -> Vec<SpeAnchor> {
    let mut anchors: Vec<SpeAnchor> = Vec::new();
    for (core, recs) in decoded {
        if core.is_spe() {
            continue;
        }
        for r in recs {
            if r.code == EventCode::PpeCtxRun {
                let spe = r.params[1] as u8;
                if !anchors.iter().any(|a| a.spe == spe) {
                    anchors.push(SpeAnchor {
                        spe,
                        ctx: r.params[0] as u32,
                        run_tb: r.timestamp,
                        dec_start: r.params[2] as u32,
                    });
                }
            }
        }
    }
    anchors
}

/// Converts each stream's records into a key-sorted run of
/// [`GlobalEvent`]s, one shard task per stream on the shared pool.
/// Anchors for every nonempty SPE stream must already be verified
/// present.
fn build_runs(
    decoded: Vec<(TraceCore, Vec<TraceRecord>)>,
    anchors: &[SpeAnchor],
    workers: usize,
) -> Vec<Vec<GlobalEvent>> {
    let par = Parallelism::from_threads(workers);
    if par.workers() <= 1 || decoded.len() <= 1 {
        return decoded
            .into_iter()
            .map(|(core, recs)| build_one_run(core, recs, anchors))
            .collect();
    }
    // Shard tasks take ownership of their stream's records through
    // per-index cells, so tasks move disjoint data.
    type StreamCell = std::sync::Mutex<Option<(TraceCore, Vec<TraceRecord>)>>;
    let cells: Vec<StreamCell> = decoded
        .into_iter()
        .map(|d| std::sync::Mutex::new(Some(d)))
        .collect();
    exec::map_indexed(par, cells.len(), |i| {
        let (core, recs) = cells[i]
            .lock()
            .unwrap()
            .take()
            .expect("each stream reconstructed once");
        build_one_run(core, recs, anchors)
    })
}

/// Timestamp reconstruction for one stream, mirroring the serial
/// path's per-stream loop, followed by a key sort of the run.
fn build_one_run(
    core: TraceCore,
    recs: Vec<TraceRecord>,
    anchors: &[SpeAnchor],
) -> Vec<GlobalEvent> {
    let mut run = Vec::with_capacity(recs.len());
    match core {
        TraceCore::Ppe(_) => {
            for (i, r) in recs.into_iter().enumerate() {
                run.push(GlobalEvent {
                    time_tb: r.timestamp,
                    core: r.core, // records carry per-thread tags
                    code: r.code,
                    params: r.params,
                    stream_seq: i as u64,
                });
            }
        }
        TraceCore::Spe(spe) => {
            if recs.is_empty() {
                return run;
            }
            let anchor = anchors
                .iter()
                .find(|a| a.spe == spe)
                .copied()
                .expect("anchor presence checked before reconstruction");
            let mut elapsed: u64 = 0;
            let mut prev_dec = anchor.dec_start;
            for (i, r) in recs.into_iter().enumerate() {
                let dec = r.timestamp as u32;
                elapsed += prev_dec.wrapping_sub(dec) as u64;
                prev_dec = dec;
                run.push(GlobalEvent {
                    time_tb: anchor.run_tb + elapsed,
                    core,
                    code: r.code,
                    params: r.params,
                    stream_seq: i as u64,
                });
            }
        }
    }
    // SPE runs are already nondecreasing in time with a constant core
    // tag, so this is a near-no-op there; the combined PPE stream can
    // interleave thread tags at equal ticks and genuinely needs it.
    run.sort_unstable_by_key(key);
    run
}

/// K-way merge of key-sorted runs. Ties across runs are broken by run
/// (stream) index, which is what the serial path's stable sort yields.
fn merge_runs(runs: Vec<Vec<GlobalEvent>>) -> Vec<GlobalEvent> {
    let total = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<GlobalEvent>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(SortKey, usize)>> = BinaryHeap::with_capacity(iters.len());
    let mut heads: Vec<Option<GlobalEvent>> =
        iters.iter_mut().map(std::iter::Iterator::next).collect();
    for (i, head) in heads.iter().enumerate() {
        if let Some(e) = head {
            heap.push(Reverse((key(e), i)));
        }
    }
    let mut events = Vec::with_capacity(total);
    while let Some(Reverse((_, i))) = heap.pop() {
        let e = heads[i].take().expect("head present while queued");
        events.push(e);
        if let Some(next) = iters[i].next() {
            heap.push(Reverse((key(&next), i)));
            heads[i] = Some(next);
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use pdt::{TraceHeader, TraceStream, VERSION};

    fn header(num_spes: u8) -> TraceHeader {
        TraceHeader {
            version: VERSION,
            num_ppe_threads: 2,
            num_spes,
            core_hz: 3_200_000_000,
            timebase_divider: 120,
            dec_start: u32::MAX,
            group_mask: u32::MAX,
            spe_buffer_bytes: 2048,
        }
    }

    fn encode(recs: &[TraceRecord]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for r in recs {
            r.encode_into(&mut bytes);
        }
        bytes
    }

    /// A trace whose PPE stream interleaves two hardware threads at
    /// equal ticks *against* tag order, so per-run sorting matters.
    fn interleaved_trace(spes: u8) -> TraceFile {
        let mut ppe = Vec::new();
        for spe in 0..spes {
            ppe.push(TraceRecord {
                core: TraceCore::Ppe(1),
                code: EventCode::PpeUser,
                timestamp: 50,
                params: vec![spe as u64, 0, 0],
            });
            ppe.push(TraceRecord {
                core: TraceCore::Ppe(0),
                code: EventCode::PpeCtxRun,
                timestamp: 50,
                params: vec![spe as u64, spe as u64, u32::MAX as u64],
            });
        }
        let mut streams = vec![TraceStream {
            core: TraceCore::Ppe(0),
            bytes: encode(&ppe),
            dropped: 1,
        }];
        for spe in 0..spes {
            let mut dec = u32::MAX;
            let mut recs = vec![TraceRecord {
                core: TraceCore::Spe(spe),
                code: EventCode::SpeCtxStart,
                timestamp: dec as u64,
                params: vec![spe as u64],
            }];
            for k in 0..40u32 {
                dec = dec.wrapping_sub(100 + k * spe as u32);
                recs.push(TraceRecord {
                    core: TraceCore::Spe(spe),
                    code: if k % 2 == 0 {
                        EventCode::SpeDmaGet
                    } else {
                        EventCode::SpeTagWaitEnd
                    },
                    timestamp: dec as u64,
                    params: if k % 2 == 0 {
                        vec![0x1000, 0x100000, 4096, 3]
                    } else {
                        vec![8]
                    },
                });
            }
            dec = dec.wrapping_sub(7);
            recs.push(TraceRecord {
                core: TraceCore::Spe(spe),
                code: EventCode::SpeStop,
                timestamp: dec as u64,
                params: vec![0],
            });
            streams.push(TraceStream {
                core: TraceCore::Spe(spe),
                bytes: encode(&recs),
                dropped: spe as u64,
            });
        }
        TraceFile {
            header: header(spes),
            streams,
            ctx_names: (0..spes as u32).map(|c| (c, format!("k{c}"))).collect(),
        }
    }

    #[test]
    fn matches_serial_for_all_thread_counts() {
        let trace = interleaved_trace(6);
        let serial = analyze(&trace).unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let par = analyze_parallel(&trace, threads).unwrap();
            assert_eq!(par.events, serial.events, "threads={threads}");
            assert_eq!(par.anchors, serial.anchors);
            assert_eq!(par.dropped, serial.dropped);
            assert_eq!(par.header, serial.header);
            assert_eq!(par.ctx_names, serial.ctx_names);
        }
    }

    #[test]
    fn ppe_equal_tick_interleave_is_ordered_like_serial() {
        let trace = interleaved_trace(2);
        let par = analyze_parallel(&trace, 4).unwrap();
        // At tick 50 the PPE(0) records sort before PPE(1) despite the
        // PPE(1) records being recorded first.
        let tags: Vec<u8> = par
            .events
            .iter()
            .filter(|e| e.time_tb == 50 && !e.core.is_spe())
            .map(|e| e.core.tag())
            .collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(tags, sorted);
    }

    #[test]
    fn decode_errors_report_first_stream_in_order() {
        let mut trace = interleaved_trace(4);
        // Corrupt two streams; the error must cite the earlier one even
        // though a later worker may hit the other first.
        trace.streams[3].bytes[0] = 0; // zero granule count
        trace.streams[1].bytes[0] = 0;
        let err = analyze_parallel(&trace, 4).unwrap_err();
        assert!(matches!(
            err,
            AnalyzeError::Record {
                core: TraceCore::Spe(0),
                offset: 0,
                ..
            }
        ));
        assert_eq!(err, analyze(&trace).unwrap_err());
    }

    #[test]
    fn missing_anchor_matches_serial() {
        let mut trace = interleaved_trace(2);
        trace.streams[0].bytes.clear(); // drop the PPE sync records
        let err = analyze_parallel(&trace, 4).unwrap_err();
        assert_eq!(err, AnalyzeError::MissingAnchor { spe: 0 });
        assert_eq!(err, analyze(&trace).unwrap_err());
    }

    #[test]
    fn lossy_matches_strict_on_clean_trace_all_thread_counts() {
        let trace = interleaved_trace(4);
        let strict = analyze(&trace).unwrap();
        for threads in [1, 2, 8] {
            let (lossy, report) = analyze_parallel_lossy(&trace, threads);
            assert_eq!(lossy.events, strict.events, "threads={threads}");
            assert_eq!(lossy.anchors, strict.anchors);
            assert_eq!(lossy.dropped, strict.dropped);
            // Streams 1..4 carry a synthetic nonzero `dropped`, so the
            // report is not clean, but there must be no decode gaps.
            assert_eq!(report.total_gaps(), 0);
            assert_eq!(report.total_gap_bytes(), 0);
            assert_eq!(report.tracer_dropped(), trace.total_dropped());
        }
    }

    #[test]
    fn lossy_parallel_matches_lossy_serial_on_damaged_trace() {
        let mut trace = interleaved_trace(4);
        trace.streams[2].bytes[0] = 0; // zero granule count
        let tail = trace.streams[3].bytes.len() - 5;
        trace.streams[3].bytes.truncate(tail); // torn tail
        let (serial, serial_report) = crate::analyze::analyze_lossy(&trace);
        for threads in [1, 2, 8] {
            let (par, par_report) = analyze_parallel_lossy(&trace, threads);
            assert_eq!(par.events, serial.events, "threads={threads}");
            assert_eq!(par.anchors, serial.anchors);
            assert_eq!(par_report, serial_report);
        }
        assert!(serial_report.total_gaps() >= 2);
        assert!(serial_report.total_gap_bytes() > 0);
        assert!(serial_report.total_est_lost() > 0);
        assert!(serial_report.suspect(1));
        assert!(serial_report.suspect(2));
    }

    #[test]
    fn lossy_discards_unanchored_spe_stream_deterministically() {
        let mut trace = interleaved_trace(2);
        trace.streams[0].bytes.clear(); // lose every PPE sync record
        let (serial, serial_report) = crate::analyze::analyze_lossy(&trace);
        assert!(serial.events.iter().all(|e| !e.core.is_spe()));
        assert!(serial_report.streams[1].unanchored);
        assert!(serial_report.total_est_lost() > 0);
        for threads in [1, 2, 8] {
            let (par, par_report) = analyze_parallel_lossy(&trace, threads);
            assert_eq!(par.events, serial.events);
            assert_eq!(par_report, serial_report);
        }
    }

    #[test]
    fn empty_trace_yields_no_events() {
        let trace = TraceFile {
            header: header(0),
            streams: vec![],
            ctx_names: vec![],
        };
        let par = analyze_parallel(&trace, 8).unwrap();
        assert!(par.events.is_empty());
        assert!(par.anchors.is_empty());
    }
}
