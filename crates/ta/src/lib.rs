//! # ta — the Trace Analyzer
//!
//! The second half of the reproduced paper's contribution: a reader
//! and visualizer for PDT traces. The analyzer never talks to the
//! simulator — it works from trace bytes alone, exactly like the
//! original tool working from trace files shipped off a Cell blade.
//!
//! Pipeline:
//!
//! 1. [`mod@analyze`] — decode the per-core streams, reconstruct global
//!    time from decrementer snapshots + the `PpeCtxRun` sync records
//!    (wrap-safe), and merge everything into one ordered event list.
//! 2. [`intervals`] — turn begin/end event pairs into activity
//!    intervals (compute / DMA wait / mailbox wait / signal wait).
//! 3. [`stats`] — per-SPE utilization and wait breakdowns, DMA traffic
//!    and observed-latency statistics, event counts.
//! 4. [`timeline`] + [`svg`] / [`ascii`] — the Gantt views.
//! 5. [`csv`], [`query`] — export and filtering.
//! 6. [`mod@validate`] — fidelity checks against simulator ground truth.
//!
//! ## Example
//!
//! ```
//! use cellsim::{Machine, MachineConfig, PpeThreadId, SpmdDriver, SpeJob, SpuScript, SpuAction};
//! use pdt::{TraceSession, TracingConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::default().with_num_spes(1))?;
//! let session = TraceSession::install(TracingConfig::default(), &mut machine)?;
//! machine.set_ppe_program(
//!     PpeThreadId::new(0),
//!     Box::new(SpmdDriver::new(vec![SpeJob::new(
//!         "kernel",
//!         Box::new(SpuScript::new(vec![SpuAction::Compute(100_000)])),
//!     )])),
//! );
//! machine.run()?;
//! let trace = session.collect(&machine);
//!
//! let analyzed = ta::analyze(&trace)?;
//! let stats = ta::compute_stats(&analyzed);
//! let timeline = ta::build_timeline(&analyzed);
//! let svg = ta::render_svg(&timeline, &ta::SvgOptions::default());
//! assert!(svg.contains("</svg>"));
//! assert_eq!(stats.spes.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod ascii;
pub mod causality;
pub mod compare;
pub mod csv;
pub mod histogram;
pub mod html;
pub mod occupancy;
pub mod intervals;
pub mod phases;
pub mod query;
pub mod stats;
pub mod summary;
pub mod svg;
pub mod timeline;
pub mod validate;

pub use analyze::{analyze, AnalyzeError, AnalyzedTrace, GlobalEvent, SpeAnchor};
pub use ascii::render_ascii;
pub use causality::{
    align_clocks, apply_skew, causal_edges, estimate_skew, violations, CausalEdge, EdgeKind,
    SkewEstimate, Violation,
};
pub use compare::{compare_stats, compare_traces, Comparison, SpeDelta};
pub use csv::{activity_csv, events_csv, intervals_csv};
pub use histogram::Log2Histogram;
pub use html::html_report;
pub use occupancy::{dma_occupancy, OccupancyStep, SpeOccupancy};
pub use intervals::{build_intervals, ActivityKind, Interval, SpeIntervals};
pub use phases::{user_phases, PhaseReport, UserPhase};
pub use query::EventFilter;
pub use stats::{compute_stats, DmaSummary, EventCounts, ObservedDma, SpeActivity, TraceStats};
pub use summary::{render_summary, summary_report};
pub use svg::{render_svg, SvgOptions};
pub use timeline::{build_timeline, Lane, Marker, Segment, Timeline};
pub use validate::{rel_err, validate, SpeValidation, ValidationReport};
