//! # ta — the Trace Analyzer
//!
//! The second half of the reproduced paper's contribution: a reader
//! and visualizer for PDT traces. The analyzer never talks to the
//! simulator — it works from trace bytes alone, exactly like the
//! original tool working from trace files shipped off a Cell blade.
//!
//! Pipeline:
//!
//! 1. [`session`] — the front door: [`Analysis`] ingests a trace once
//!    (in parallel, via [`mod@parallel`]) and memoizes every derived
//!    product behind typed accessors.
//! 2. [`mod@analyze`] / [`mod@parallel`] — decode the per-core streams,
//!    reconstruct global time from decrementer snapshots + the
//!    `PpeCtxRun` sync records (wrap-safe), and merge everything into
//!    one ordered event list. The parallel engine decodes streams
//!    concurrently and k-way merges per-stream runs; its output is
//!    byte-identical to the serial path.
//! 3. [`reader`] — zero-copy ingestion of serialized trace images.
//! 4. [`intervals`] — turn begin/end event pairs into activity
//!    intervals (compute / DMA wait / mailbox wait / signal wait).
//! 5. [`stats`] — per-SPE utilization and wait breakdowns, DMA traffic
//!    and observed-latency statistics, event counts.
//! 6. [`timeline`] + [`svg`] / [`ascii`] — the Gantt views.
//! 7. [`csv`], [`query`] — export and filtering.
//! 8. [`mod@validate`] — fidelity checks against simulator ground truth.
//! 9. [`mod@lint`] — rule-based static analysis over the reconstructed
//!    trace: DMA races, tag-group misuse, mailbox deadlock shapes and
//!    more, as structured event-anchored diagnostics.
//!
//! ## Example
//!
//! ```
//! use cellsim::{Machine, MachineConfig, PpeThreadId, SpmdDriver, SpeJob, SpuScript, SpuAction};
//! use pdt::{TraceSession, TracingConfig};
//! use ta::Analysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::default().with_num_spes(1))?;
//! let session = TraceSession::install(TracingConfig::default(), &mut machine)?;
//! machine.set_ppe_program(
//!     PpeThreadId::new(0),
//!     Box::new(SpmdDriver::new(vec![SpeJob::new(
//!         "kernel",
//!         Box::new(SpuScript::new(vec![SpuAction::Compute(100_000)])),
//!     )])),
//! );
//! machine.run()?;
//! let trace = session.collect(&machine);
//!
//! let analysis = Analysis::of(&trace).parallelism(ta::Parallelism::Workers(4)).run()?;
//! let svg = analysis.svg(&ta::SvgOptions::default());
//! assert!(svg.contains("</svg>"));
//! assert_eq!(analysis.stats().spes.len(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! ## Migrating from the free-function API
//!
//! Earlier versions drove the pipeline through free functions, each
//! recomputing shared inputs:
//!
//! ```text
//! let analyzed = ta::analyze(&trace)?;            // serial decode
//! let stats    = ta::compute_stats(&analyzed);    // interval pass #1
//! let timeline = ta::build_timeline(&analyzed);   // interval pass #2
//! let svg      = ta::render_svg(&timeline, &opts);
//! ```
//!
//! The [`Analysis`] session replaces that with one parallel ingestion
//! and memoized accessors:
//!
//! ```text
//! let a = ta::Analysis::of(&trace).parallelism(ta::Parallelism::Workers(8)).run()?;
//! let stats = a.stats();          // intervals computed once,
//! let svg   = a.svg(&opts);       // shared with the timeline
//! ```
//!
//! The deprecated render/export shims (`render_svg`, `render_ascii`,
//! `html_report`, `events_csv`, `intervals_csv`, `activity_csv`,
//! `EventFilter::apply_scan`) have been removed; route rendering
//! through [`Analysis::render`] / [`Analysis::svg`] and queries
//! through [`Analysis::query`] or [`EventFilter::apply`]. The
//! analysis-stage functions (`analyze`, `compute_stats`,
//! `build_timeline`, `build_intervals`) remain public building blocks.
//!
//! For traces that arrive incrementally — a file still being written,
//! a socket — use [`IngestSession`] / [`ImageIngest`] from
//! [`mod@stream`]: append byte chunks as they land and take immutable
//! [`Analysis`] snapshots at any point.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod ascii;
pub mod causality;
pub mod columns;
pub mod compare;
pub mod csv;
pub mod exec;
pub mod faults;
pub mod hb;
pub mod histogram;
pub mod html;
pub mod index;
pub mod intervals;
pub mod lint;
pub mod loss;
pub mod occupancy;
pub mod parallel;
pub mod phases;
pub mod query;
pub mod reader;
pub mod report;
pub mod session;
pub mod stats;
pub mod stream;
pub mod summary;
pub mod svg;
pub mod timeline;
pub mod v2read;
pub mod validate;

pub use analyze::{analyze, analyze_lossy, AnalyzeError, AnalyzedTrace, GlobalEvent, SpeAnchor};
pub use causality::{
    align_clocks, apply_skew, causal_edges, causal_edges_with_loss, estimate_skew,
    sync_edges_columns, violations, CausalEdge, EdgeKind, SkewEstimate, Violation,
};
pub use columns::{ColumnarTrace, EventColumns, EventView, Interner, Sym};
pub use compare::{compare_stats, compare_traces, Comparison, SpeDelta};
pub use csv::loss_csv;
pub use exec::{ExecPool, ExecStats, Parallelism};
pub use faults::{FaultInjector, FaultKind, InjectedFault};
pub use hb::{event_clocks, Access, AccessDir, ClockTable, HbIndex, RaceWitness, Space, VecClock};
pub use histogram::Log2Histogram;
pub use index::{
    compute_suspect_ranges, SuspectRange, TraceIndex, WindowActivity, WindowSummary,
    MAX_BASE_BUCKETS,
};
pub use intervals::{build_intervals, ActivityKind, Interval, SpeIntervals};
#[cfg(feature = "scan-oracle")]
pub use lint::dma_race_window_heuristic;
pub use lint::{
    lint_columns, lint_columns_sharded, lint_columns_sharded_with_edges, lint_columns_with_edges,
    lint_trace, Anchor, ConfigError, Diagnostic, Lint, LintConfig, LintContext, LintReport,
    RuleInfo, Severity, Suppression,
};
pub use loss::{DecodePolicy, LossReport, StreamLoss};
pub use occupancy::{dma_occupancy, OccupancyStep, SpeOccupancy};
pub use parallel::{analyze_parallel, analyze_parallel_lossy};
pub use phases::{user_phases, PhaseReport, UserPhase};
pub use query::EventFilter;
pub use reader::{MappedImage, TraceImage};
pub use report::{
    AsciiReport, CsvReport, CsvTable, HtmlReport, RenderOptions, Report, ReportKind, SvgReport,
};
pub use session::{Analysis, AnalysisBuilder};
pub use stats::{compute_stats, DmaSummary, EventCounts, ObservedDma, SpeActivity, TraceStats};
pub use stream::{ImageIngest, IngestSession, StreamId};
pub use summary::render_summary_with;
pub use svg::SvgOptions;
pub use timeline::{build_timeline, Lane, Marker, Segment, Timeline};
pub use v2read::{analyze_v2, is_v2_image, V2Ingest, V2Trace, WindowQuery};
pub use validate::{rel_err, validate, validate_with_loss, SpeValidation, ValidationReport};
