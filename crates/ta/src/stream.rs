//! Incremental streaming ingestion behind snapshot epochs.
//!
//! [`IngestSession`] accepts a trace as appended byte chunks — one
//! [`LossyCursor`] per stream survives chunk boundaries, including
//! resync scans across torn records — and grows a committed columnar
//! store append-only. [`IngestSession::snapshot`] returns an immutable
//! [`Analysis`] epoch behind an [`Arc`]: readers query it concurrently
//! while ingestion continues, and a snapshot taken after
//! [`finish`](IngestSession::finish) is byte-identical to the one-shot
//! [`Analysis::of`] over the same trace, no matter how the bytes were
//! chunked.
//!
//! ## Commit watermark
//!
//! Events enter a per-stream pending list as their records decode and
//! are committed to the shared store only once no open stream can
//! still produce an event that sorts before them. Each stream exposes
//! a lower bound on its future sort keys — a PPE stream's last
//! timestamp, an anchored SPE stream's reconstructed frontier — and
//! the global watermark is the minimum `(bound, stream)` pair. An SPE
//! stream whose sync anchor is not yet final bounds at zero and parks
//! its records until every earlier PPE stream closes, because a future
//! `PpeCtxRun` record could place its events anywhere. Corrupt input
//! that violates a bound (a PPE timestamp running backwards) falls
//! back to a sorted splice and a one-time index rebuild; the committed
//! order is always exact.
//!
//! ## Epoch semantics
//!
//! The committed store sits behind an `Arc` and commits mutate it via
//! [`Arc::make_mut`]: a snapshot pins its epoch, and the first commit
//! after a snapshot copies the store once, leaving the epoch frozen.
//! The maintained [`TraceIndex`] grows by
//! [`extend_columns`](TraceIndex::extend_columns) — tail-only bucket
//! and offset updates — and each snapshot's index is the committed
//! index extended over the snapshot's uncommitted tail, so appending a
//! small fraction of events rebuilds a comparably small fraction of
//! index blocks (measured by [`IngestSession::last_delta`]).
//!
//! [`ImageIngest`] layers an incremental parser of the serialized
//! `.pdt` image (header, stream directory, record bytes, name table)
//! on top, so a growing trace file can be followed as it is written —
//! the transport behind `ta-serve` and `ta-cli follow`.

use std::sync::Arc;

use pdt::{
    DecodeGap, EventCode, FormatError, LossyCursor, TraceCore, TraceHeader, TraceRecord, MAGIC,
    VERSION,
};

use crate::analyze::{GlobalEvent, SpeAnchor};
use crate::columns::ColumnarTrace;
use crate::exec::Parallelism;
use crate::index::{IndexDelta, TraceIndex};
use crate::intervals::build_intervals_columns;
use crate::loss::{LossReport, StreamLoss};
use crate::session::Analysis;

/// The global sort key: `(time_tb, core tag, stream_seq)`, ties across
/// streams broken by stream index — the order the one-shot merge
/// produces.
type SortKey = (u64, u8, u64);

fn key(e: &GlobalEvent) -> SortKey {
    (e.time_tb, e.core.tag(), e.stream_seq)
}

/// Identifies a stream registered with [`IngestSession::add_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamId(usize);

/// A sync-anchor candidate: a `PpeCtxRun` record at `(stream, rec)`.
/// The winner for an SPE is the candidate with the smallest position,
/// which is exactly the first one the one-shot harvest encounters.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    stream: usize,
    rec: u64,
    anchor: SpeAnchor,
}

/// Timestamp-reconstruction state for one stream.
#[derive(Debug, Clone)]
enum Placement {
    /// PPE records carry timebase timestamps directly; `last_time` is
    /// the monotone lower bound on future keys.
    Ppe { last_time: Option<u64> },
    /// SPE records parked until the stream's sync anchor is final.
    SpeWaiting { held: Vec<TraceRecord> },
    /// SPE stream with a final anchor: wrap-safe decrementer
    /// accumulation, exactly the one-shot per-stream loop.
    SpeAnchored {
        run_tb: u64,
        elapsed: u64,
        prev_dec: u32,
    },
    /// SPE stream that can never be anchored (every PPE stream closed
    /// without a candidate): records decode but place no events.
    SpeUnanchored,
}

/// Per-stream ingestion state.
#[derive(Debug)]
struct StreamState {
    core: TraceCore,
    dropped: u64,
    closed: bool,
    cursor: LossyCursor,
    /// Decode gaps emitted so far (the cursor's output is drained).
    gaps: Vec<DecodeGap>,
    /// Records consumed from the cursor; doubles as the next
    /// `stream_seq`.
    rec_idx: u64,
    place: Placement,
    /// Placed events not yet committed, in arrival order.
    pending: Vec<GlobalEvent>,
    pending_sorted: bool,
    bytes_in: u64,
}

impl StreamState {
    /// Lower bound on the sort key of any event this stream has not
    /// yet placed into `pending`, or `None` when no more can come.
    fn future_bound(&self) -> Option<SortKey> {
        match &self.place {
            Placement::SpeUnanchored => None,
            Placement::SpeWaiting { held } => {
                if self.closed && held.is_empty() {
                    None
                } else {
                    // A future anchor could place held/coming records
                    // anywhere on the timeline.
                    Some((0, 0, 0))
                }
            }
            Placement::Ppe { last_time } => {
                if self.closed {
                    None
                } else {
                    Some((last_time.unwrap_or(0), 0, 0))
                }
            }
            Placement::SpeAnchored {
                run_tb, elapsed, ..
            } => {
                if self.closed {
                    None
                } else {
                    Some((run_tb + elapsed, self.core.tag(), self.rec_idx))
                }
            }
        }
    }
}

/// An incremental ingestion session: feed record bytes per stream in
/// arbitrary chunks, take [`Analysis`] snapshots at any point.
///
/// Construction mirrors the trace-file layout: declare the header,
/// register streams in directory order, append each stream's record
/// bytes as they arrive, and supply the context-name table whenever it
/// is known (it arrives last in a streamed image). After
/// [`finish`](Self::finish), a snapshot equals the one-shot analysis
/// of the assembled trace exactly.
#[derive(Debug)]
pub struct IngestSession {
    header: TraceHeader,
    par: Parallelism,
    streams: Vec<StreamState>,
    /// Best anchor candidate per SPE seen so far (minimal position) —
    /// the incremental form of the one-shot harvest.
    best: Vec<Candidate>,
    ctx_names: Vec<(u32, String)>,
    /// Committed events: the frozen, globally sorted prefix shared
    /// with snapshot epochs.
    committed: Arc<ColumnarTrace>,
    /// Source stream of each committed event (enables exact splices).
    committed_src: Vec<u32>,
    /// Incrementally maintained index over the committed store.
    index: Option<TraceIndex>,
    /// Set when a splice invalidated the committed index.
    index_dirty: bool,
    /// Cumulative delta of the last committed-index update.
    last_delta: Option<IndexDelta>,
    finished: bool,
    dirty: bool,
    cache: Option<Arc<Analysis>>,
    epochs: u64,
}

impl IngestSession {
    /// Starts a session for a trace with `header`.
    pub fn new(header: TraceHeader) -> Self {
        IngestSession {
            header,
            par: Parallelism::Serial,
            streams: Vec::new(),
            best: Vec::new(),
            ctx_names: Vec::new(),
            committed: Arc::new(ColumnarTrace::empty(header)),
            committed_src: Vec::new(),
            index: None,
            index_dirty: false,
            last_delta: None,
            finished: false,
            dirty: true,
            cache: None,
            epochs: 0,
        }
    }

    /// Sets the [`Parallelism`] used for index builds in snapshots.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Registers the next stream in directory order. `dropped` is the
    /// tracer-side drop count from the stream directory.
    ///
    /// # Panics
    ///
    /// Panics if the session is finished.
    pub fn add_stream(&mut self, core: TraceCore, dropped: u64) -> StreamId {
        assert!(!self.finished, "add_stream after finish");
        let place = if core.is_spe() {
            Placement::SpeWaiting { held: Vec::new() }
        } else {
            Placement::Ppe { last_time: None }
        };
        self.streams.push(StreamState {
            core,
            dropped,
            closed: false,
            cursor: LossyCursor::new(Some(core)),
            gaps: Vec::new(),
            rec_idx: 0,
            place,
            pending: Vec::new(),
            pending_sorted: true,
            bytes_in: 0,
        });
        self.dirty = true;
        StreamId(self.streams.len() - 1)
    }

    /// Appends record bytes to `id`'s stream. Chunks may split records,
    /// corrupt regions, even the resync scan itself, at any byte.
    ///
    /// # Panics
    ///
    /// Panics if the stream is closed or the session finished.
    pub fn append(&mut self, id: StreamId, chunk: &[u8]) {
        assert!(!self.finished, "append after finish");
        let s = &mut self.streams[id.0];
        assert!(!s.closed, "append to closed stream");
        if chunk.is_empty() {
            return;
        }
        s.bytes_in += chunk.len() as u64;
        s.cursor.push(chunk);
        self.drain_stream(id.0);
        self.resolve_anchors();
        self.dirty = true;
    }

    /// Marks `id`'s stream complete: a trailing partial record becomes
    /// a decode gap, and the stream stops bounding the commit
    /// watermark.
    pub fn close_stream(&mut self, id: StreamId) {
        let s = &mut self.streams[id.0];
        if s.closed {
            return;
        }
        s.cursor.finish();
        s.closed = true;
        self.drain_stream(id.0);
        self.resolve_anchors();
        self.dirty = true;
    }

    /// Replaces the context-name table (it arrives at the end of a
    /// streamed image, but may be set at any time).
    pub fn set_ctx_names(&mut self, names: Vec<(u32, String)>) {
        self.ctx_names = names;
        self.dirty = true;
    }

    /// Updates the tracer-dropped count for `id`'s stream.
    pub fn set_dropped(&mut self, id: StreamId, dropped: u64) {
        self.streams[id.0].dropped = dropped;
        self.dirty = true;
    }

    /// Closes every stream and seals the session. Snapshots taken
    /// afterwards share the fully committed store — no per-epoch copy.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        for i in 0..self.streams.len() {
            self.close_stream(StreamId(i));
        }
        self.finished = true;
        self.dirty = true;
    }

    /// Whether [`finish`](Self::finish) ran.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Streams registered so far.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Total record bytes appended over all streams.
    pub fn bytes_ingested(&self) -> u64 {
        self.streams.iter().map(|s| s.bytes_in).sum()
    }

    /// Events in the committed (epoch-shared) store.
    pub fn committed_events(&self) -> usize {
        self.committed.events.len()
    }

    /// Placed events still awaiting the commit watermark.
    pub fn pending_events(&self) -> usize {
        self.streams.iter().map(|s| s.pending.len()).sum()
    }

    /// Snapshot epochs taken so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The incremental work of the last committed-index update: how
    /// many index blocks the most recent snapshot's commits rebuilt.
    /// `None` until a snapshot has built the index.
    pub fn last_delta(&self) -> Option<IndexDelta> {
        self.last_delta
    }

    /// Pulls newly decoded records out of stream `i`'s cursor and
    /// places them.
    fn drain_stream(&mut self, i: usize) {
        let out = self.streams[i].cursor.take_output();
        self.streams[i].gaps.extend(out.gaps);
        for r in out.records {
            self.place_record(i, r);
        }
    }

    /// Places one decoded record: PPE records become events (and offer
    /// anchor candidates); SPE records accumulate decrementer time or
    /// park until their anchor is final.
    fn place_record(&mut self, i: usize, r: TraceRecord) {
        let seq = self.streams[i].rec_idx;
        self.streams[i].rec_idx += 1;
        match &mut self.streams[i].place {
            Placement::Ppe { last_time } => {
                if r.code == EventCode::PpeCtxRun && r.params.len() >= 3 {
                    let cand = Candidate {
                        stream: i,
                        rec: seq,
                        anchor: SpeAnchor {
                            spe: r.params[1] as u8,
                            ctx: r.params[0] as u32,
                            run_tb: r.timestamp,
                            dec_start: r.params[2] as u32,
                        },
                    };
                    offer(&mut self.best, cand);
                }
                *last_time = Some(r.timestamp);
                let ev = GlobalEvent {
                    time_tb: r.timestamp,
                    core: r.core, // records carry per-thread tags
                    code: r.code,
                    params: r.params,
                    stream_seq: seq,
                };
                push_pending(&mut self.streams[i], ev);
            }
            Placement::SpeWaiting { held } => held.push(r),
            Placement::SpeAnchored {
                run_tb,
                elapsed,
                prev_dec,
            } => {
                let dec = r.timestamp as u32;
                *elapsed += prev_dec.wrapping_sub(dec) as u64;
                *prev_dec = dec;
                let ev = GlobalEvent {
                    time_tb: *run_tb + *elapsed,
                    core: self.streams[i].core,
                    code: r.code,
                    params: r.params,
                    stream_seq: seq,
                };
                push_pending(&mut self.streams[i], ev);
            }
            Placement::SpeUnanchored => {} // decoded but unusable
        }
    }

    /// Promotes waiting SPE streams whose anchor became final: the best
    /// candidate wins once every PPE stream before it has closed (no
    /// earlier candidate can appear), matching the one-shot
    /// first-candidate harvest. With every PPE stream closed and no
    /// candidate, the stream is unanchored and its records discarded —
    /// also the one-shot rule.
    fn resolve_anchors(&mut self) {
        let all_ppe_closed = self.streams.iter().all(|s| s.core.is_spe() || s.closed);
        for i in 0..self.streams.len() {
            let TraceCore::Spe(spe) = self.streams[i].core else {
                continue;
            };
            let Placement::SpeWaiting { .. } = self.streams[i].place else {
                continue;
            };
            let winner = self.best.iter().find(|c| c.anchor.spe == spe).copied();
            match winner {
                Some(c)
                    if self.streams[..c.stream]
                        .iter()
                        .all(|s| s.core.is_spe() || s.closed) =>
                {
                    let held = match std::mem::replace(
                        &mut self.streams[i].place,
                        Placement::SpeAnchored {
                            run_tb: c.anchor.run_tb,
                            elapsed: 0,
                            prev_dec: c.anchor.dec_start,
                        },
                    ) {
                        Placement::SpeWaiting { held } => held,
                        _ => unreachable!(),
                    };
                    // Replay parked records through the now-final
                    // anchor; their sequence numbers were assigned on
                    // arrival, so reset the counter and let it advance
                    // back through them.
                    self.streams[i].rec_idx = 0;
                    for r in held {
                        self.place_record(i, r);
                    }
                }
                None if all_ppe_closed => {
                    self.streams[i].place = Placement::SpeUnanchored;
                }
                _ => {}
            }
        }
    }

    /// Commits every pending event below the watermark into the shared
    /// store, splicing (and marking the index dirty) if corrupt input
    /// violated a bound.
    fn flush_commits(&mut self) {
        let threshold: Option<(SortKey, usize)> = self
            .streams
            .iter()
            .enumerate()
            .filter_map(|(j, s)| s.future_bound().map(|b| (b, j)))
            .min();
        for s in &mut self.streams {
            if !s.pending_sorted {
                s.pending.sort_unstable_by_key(key);
                s.pending_sorted = true;
            }
        }
        let mut heads: Vec<usize> = vec![0; self.streams.len()];
        loop {
            let mut min: Option<((SortKey, usize), usize)> = None;
            for (j, s) in self.streams.iter().enumerate() {
                if let Some(e) = s.pending.get(heads[j]) {
                    let pair = (key(e), j);
                    if min.is_none_or(|(m, _)| pair < m) {
                        min = Some((pair, j));
                    }
                }
            }
            let Some((pair, j)) = min else { break };
            if threshold.is_some_and(|t| pair >= t) {
                break;
            }
            let e = &self.streams[j].pending[heads[j]];
            heads[j] += 1;
            let cols = Arc::make_mut(&mut self.committed);
            let n = cols.events.len();
            let in_order = n == 0 || {
                let last = (
                    (
                        cols.events.times()[n - 1],
                        cols.events.tags()[n - 1],
                        cols.events.seq(n - 1),
                    ),
                    self.committed_src[n - 1] as usize,
                );
                pair >= last
            };
            if in_order {
                cols.push_event(e.time_tb, e.core, e.code, &e.params, e.stream_seq);
                self.committed_src.push(j as u32);
            } else {
                // A bound was violated (non-monotone PPE timestamps):
                // splice into the exact sorted position and rebuild
                // the index once at the next snapshot.
                let src = &self.committed_src;
                let (mut lo, mut hi) = (0usize, n);
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    let at = (
                        (
                            cols.events.times()[mid],
                            cols.events.tags()[mid],
                            cols.events.seq(mid),
                        ),
                        src[mid] as usize,
                    );
                    if at < pair {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                let pos = lo;
                cols.insert_event(pos, e.time_tb, e.core, e.code, &e.params, e.stream_seq);
                self.committed_src.insert(pos, j as u32);
                self.index_dirty = true;
            }
        }
        for (j, s) in self.streams.iter_mut().enumerate() {
            if heads[j] > 0 {
                s.pending.drain(..heads[j]);
            }
        }
    }

    /// Takes an immutable snapshot epoch: the committed store plus a
    /// preview of every open stream's undecoded carry, exactly what the
    /// one-shot analysis of all bytes appended so far would produce.
    /// Cheap when nothing changed (returns the cached epoch) and after
    /// [`finish`](Self::finish) (shares the committed store).
    pub fn snapshot(&mut self) -> Arc<Analysis> {
        if !self.dirty {
            if let Some(cached) = &self.cache {
                return Arc::clone(cached);
            }
        }
        self.flush_commits();

        // Preview: finish a clone of each open cursor (cheap — only
        // the undecoded carry bytes are cloned), then run the preview
        // records through cloned placement state. Preview PPE
        // candidates can anchor still-waiting SPE streams for this
        // snapshot only.
        let mut prev_records: Vec<Vec<TraceRecord>> = Vec::with_capacity(self.streams.len());
        let mut prev_gaps: Vec<Vec<DecodeGap>> = Vec::with_capacity(self.streams.len());
        for s in &self.streams {
            if s.closed {
                prev_records.push(Vec::new());
                prev_gaps.push(Vec::new());
            } else {
                let p = s.cursor.finish_preview();
                prev_records.push(p.records);
                prev_gaps.push(p.gaps);
            }
        }
        let mut merged: Vec<Candidate> = self.best.clone();
        for (i, s) in self.streams.iter().enumerate() {
            if s.core.is_spe() {
                continue;
            }
            for (k, r) in prev_records[i].iter().enumerate() {
                if r.code == EventCode::PpeCtxRun && r.params.len() >= 3 {
                    offer(
                        &mut merged,
                        Candidate {
                            stream: i,
                            rec: s.rec_idx + k as u64,
                            anchor: SpeAnchor {
                                spe: r.params[1] as u8,
                                ctx: r.params[0] as u32,
                                run_tb: r.timestamp,
                                dec_start: r.params[2] as u32,
                            },
                        },
                    );
                }
            }
        }
        // Winners per SPE in discovery (candidate-position) order —
        // the list the one-shot harvest builds.
        let anchors: Vec<SpeAnchor> = {
            let mut ordered = merged.clone();
            ordered.sort_unstable_by_key(|c| (c.stream, c.rec));
            ordered.into_iter().map(|c| c.anchor).collect()
        };

        // Place preview records through cloned state, assemble the
        // snapshot tail and the per-stream loss accounting.
        let mut tail: Vec<(SortKey, usize, GlobalEvent)> = Vec::new();
        let mut losses: Vec<StreamLoss> = Vec::with_capacity(self.streams.len());
        for (i, s) in self.streams.iter().enumerate() {
            for e in &s.pending {
                tail.push((key(e), i, e.clone()));
            }
            let total_records = s.cursor.decoded_total() + prev_records[i].len() as u64;
            let mut unanchored = false;
            match &s.place {
                Placement::Ppe { .. } => {
                    for (seq, r) in (s.rec_idx..).zip(prev_records[i].iter()) {
                        let ev = GlobalEvent {
                            time_tb: r.timestamp,
                            core: r.core,
                            code: r.code,
                            params: r.params.clone(),
                            stream_seq: seq,
                        };
                        tail.push((key(&ev), i, ev));
                    }
                }
                Placement::SpeAnchored {
                    run_tb,
                    elapsed,
                    prev_dec,
                } => {
                    let (mut elapsed, mut prev_dec) = (*elapsed, *prev_dec);
                    for (seq, r) in (s.rec_idx..).zip(prev_records[i].iter()) {
                        let dec = r.timestamp as u32;
                        elapsed += prev_dec.wrapping_sub(dec) as u64;
                        prev_dec = dec;
                        let ev = GlobalEvent {
                            time_tb: run_tb + elapsed,
                            core: s.core,
                            code: r.code,
                            params: r.params.clone(),
                            stream_seq: seq,
                        };
                        tail.push((key(&ev), i, ev));
                    }
                }
                Placement::SpeWaiting { held } => {
                    let TraceCore::Spe(spe) = s.core else {
                        unreachable!("waiting placement is SPE-only")
                    };
                    match merged.iter().find(|c| c.anchor.spe == spe) {
                        Some(c) => {
                            let a = c.anchor;
                            let (mut elapsed, mut prev_dec) = (0u64, a.dec_start);
                            for (k, r) in held.iter().chain(prev_records[i].iter()).enumerate() {
                                let dec = r.timestamp as u32;
                                elapsed += prev_dec.wrapping_sub(dec) as u64;
                                prev_dec = dec;
                                let ev = GlobalEvent {
                                    time_tb: a.run_tb + elapsed,
                                    core: s.core,
                                    code: r.code,
                                    params: r.params.clone(),
                                    stream_seq: k as u64,
                                };
                                tail.push((key(&ev), i, ev));
                            }
                        }
                        None => unanchored = total_records > 0,
                    }
                }
                Placement::SpeUnanchored => unanchored = total_records > 0,
            }
            losses.push(StreamLoss {
                core: s.core,
                decoded_records: total_records,
                tracer_dropped: s.dropped,
                gaps: {
                    let mut g = s.gaps.clone();
                    g.extend(prev_gaps[i].iter().cloned());
                    g
                },
                unanchored,
            });
        }
        tail.sort_unstable_by_key(|&(k, src, _)| (k, src));
        let loss = LossReport { streams: losses };
        let dropped_total: u64 = self.streams.iter().map(|s| s.dropped).sum();

        // Refresh the committed store's metadata and grow its index
        // incrementally; the delta is this epoch's incremental cost.
        {
            let cols = Arc::make_mut(&mut self.committed);
            cols.set_anchors(anchors.clone());
            cols.set_dropped(dropped_total);
            cols.set_ctx_names(&self.ctx_names);
        }
        let committed_intervals = build_intervals_columns(&self.committed);
        if self.index_dirty {
            self.index = None;
            self.index_dirty = false;
        }
        let delta = match &mut self.index {
            Some(idx) => idx.extend_columns(
                &self.committed,
                &committed_intervals,
                &loss,
                self.par.workers(),
            ),
            None => {
                let idx = TraceIndex::build_columns(
                    &self.committed,
                    &committed_intervals,
                    &loss,
                    self.par.workers(),
                );
                let d = IndexDelta {
                    appended_events: self.committed.events.len(),
                    blocks_total: idx.total_blocks(),
                    blocks_rebuilt: idx.total_blocks(),
                    lanes_total: committed_intervals.len(),
                    lanes_rebuilt: committed_intervals.len(),
                    coarsened: false,
                    full_rebuild: true,
                };
                self.index = Some(idx);
                d
            }
        };
        self.last_delta = Some(delta);

        // Snapshot columns: share the committed store outright when
        // there is no tail; otherwise clone it and append the tail
        // (or, for corrupt non-monotone input whose tail interleaves
        // with committed events, merge from scratch).
        let n = self.committed.events.len();
        let (snap_cols, can_extend) = if tail.is_empty() {
            (Arc::clone(&self.committed), true)
        } else {
            let fast = n == 0 || {
                let ev = &self.committed.events;
                let last = (
                    (ev.times()[n - 1], ev.tags()[n - 1], ev.seq(n - 1)),
                    self.committed_src[n - 1] as usize,
                );
                (tail[0].0, tail[0].1) >= last
            };
            if fast {
                let mut c = (*self.committed).clone();
                for (_, _, e) in &tail {
                    c.push_event(e.time_tb, e.core, e.code, &e.params, e.stream_seq);
                }
                (Arc::new(c), true)
            } else {
                let mut c = ColumnarTrace::empty(self.header);
                c.set_anchors(anchors);
                c.set_dropped(dropped_total);
                c.set_ctx_names(&self.ctx_names);
                let ev = &self.committed.events;
                let times = ev.times();
                let tags = ev.tags();
                let (mut ci, mut ti) = (0usize, 0usize);
                while ci < n || ti < tail.len() {
                    let from_committed = match (ci < n, tail.get(ti)) {
                        (true, Some(t)) => {
                            (
                                (times[ci], tags[ci], ev.seq(ci)),
                                self.committed_src[ci] as usize,
                            ) < (t.0, t.1)
                        }
                        (true, None) => true,
                        (false, _) => false,
                    };
                    if from_committed {
                        c.push_event(
                            times[ci],
                            ev.core(ci),
                            ev.codes()[ci],
                            ev.params(ci),
                            ev.seq(ci),
                        );
                        ci += 1;
                    } else {
                        let (_, _, e) = &tail[ti];
                        c.push_event(e.time_tb, e.core, e.code, &e.params, e.stream_seq);
                        ti += 1;
                    }
                }
                (Arc::new(c), false)
            }
        };

        let snap_intervals = build_intervals_columns(&snap_cols);
        let snap_index = can_extend.then(|| {
            let mut idx = self.index.clone().expect("committed index built above");
            let _ = idx.extend_columns(&snap_cols, &snap_intervals, &loss, self.par.workers());
            idx
        });
        let analysis = Analysis::from_shared(Arc::clone(&snap_cols), loss, self.par);
        analysis.preset_intervals(snap_intervals);
        if let Some(idx) = snap_index {
            analysis.preset_index(idx);
        }
        let epoch = Arc::new(analysis);
        self.cache = Some(Arc::clone(&epoch));
        self.dirty = false;
        self.epochs += 1;
        epoch
    }
}

/// Incremental-parse position within a serialized trace image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ImageState {
    /// Waiting for magic + header (36 bytes).
    Header,
    /// Waiting for the u32 stream count.
    StreamCount,
    /// Waiting for the next 20-byte stream directory entry.
    StreamHeader { left: u32 },
    /// Streaming `left` record bytes into stream `id`.
    StreamBytes {
        id: StreamId,
        left: u64,
        streams_left: u32,
    },
    /// Waiting for the u32 name count.
    NameCount,
    /// Waiting for the next 8-byte name entry header.
    NameHeader { left: u32 },
    /// Waiting for `len` utf-8 name bytes.
    NameBytes { ctx: u32, len: usize, left: u32 },
    /// The image is structurally complete; the session is finished.
    Done,
}

/// An incremental parser of the serialized `.pdt` image layout feeding
/// an [`IngestSession`]: push byte chunks as a trace file grows and
/// snapshot at any point. Record bytes pass straight through to the
/// per-stream cursors without buffering; only the fixed-size header,
/// directory and name-table pieces are carried across chunk
/// boundaries.
#[derive(Debug)]
pub struct ImageIngest {
    state: ImageState,
    carry: Vec<u8>,
    par: Parallelism,
    session: Option<IngestSession>,
    names: Vec<(u32, String)>,
    consumed: u64,
}

impl Default for ImageIngest {
    fn default() -> Self {
        Self::new()
    }
}

impl ImageIngest {
    /// Starts an empty image parse.
    pub fn new() -> Self {
        ImageIngest {
            state: ImageState::Header,
            carry: Vec::new(),
            par: Parallelism::Serial,
            session: None,
            names: Vec::new(),
            consumed: 0,
        }
    }

    /// Sets the [`Parallelism`] for the inner session's index builds.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Total image bytes consumed so far.
    pub fn bytes_consumed(&self) -> u64 {
        self.consumed
    }

    /// Whether the full image (through the name table) has been parsed.
    pub fn is_complete(&self) -> bool {
        self.state == ImageState::Done
    }

    /// The inner session, once the header has arrived.
    pub fn session(&self) -> Option<&IngestSession> {
        self.session.as_ref()
    }

    /// Takes a snapshot of the inner session; `None` until the header
    /// has arrived.
    pub fn snapshot(&mut self) -> Option<Arc<Analysis>> {
        self.session.as_mut().map(IngestSession::snapshot)
    }

    /// Consumes the next chunk of the image.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on structural corruption (bad magic,
    /// unsupported version, non-utf-8 name). Truncation is not an
    /// error here — the parser simply waits for more bytes; a
    /// premature end is reported by [`finish`](Self::finish).
    pub fn push(&mut self, mut chunk: &[u8]) -> Result<(), FormatError> {
        self.consumed += chunk.len() as u64;
        while !chunk.is_empty() {
            match self.state {
                ImageState::Header => {
                    if !fill(&mut self.carry, 36, &mut chunk) {
                        return Ok(());
                    }
                    if &self.carry[..4] != MAGIC {
                        return Err(FormatError::BadMagic);
                    }
                    let version = u16::from_le_bytes([self.carry[4], self.carry[5]]);
                    if version != VERSION {
                        return Err(FormatError::BadVersion { found: version });
                    }
                    let header = TraceHeader {
                        version,
                        num_ppe_threads: self.carry[6],
                        num_spes: self.carry[7],
                        core_hz: le_u64(&self.carry[8..16]),
                        timebase_divider: le_u64(&self.carry[16..24]),
                        dec_start: le_u32(&self.carry[24..28]),
                        group_mask: le_u32(&self.carry[28..32]),
                        spe_buffer_bytes: le_u32(&self.carry[32..36]),
                    };
                    self.carry.clear();
                    self.session = Some(IngestSession::new(header).with_parallelism(self.par));
                    self.state = ImageState::StreamCount;
                }
                ImageState::StreamCount => {
                    if !fill(&mut self.carry, 4, &mut chunk) {
                        return Ok(());
                    }
                    let n = le_u32(&self.carry[..4]);
                    self.carry.clear();
                    self.state = if n == 0 {
                        ImageState::NameCount
                    } else {
                        ImageState::StreamHeader { left: n }
                    };
                }
                ImageState::StreamHeader { left } => {
                    if !fill(&mut self.carry, 20, &mut chunk) {
                        return Ok(());
                    }
                    let core = TraceCore::from_tag(self.carry[0]);
                    let len = le_u64(&self.carry[4..12]);
                    let dropped = le_u64(&self.carry[12..20]);
                    self.carry.clear();
                    let session = self.session.as_mut().expect("header parsed");
                    let id = session.add_stream(core, dropped);
                    if len == 0 {
                        session.close_stream(id);
                        self.state = next_stream_state(left - 1);
                    } else {
                        self.state = ImageState::StreamBytes {
                            id,
                            left: len,
                            streams_left: left - 1,
                        };
                    }
                }
                ImageState::StreamBytes {
                    id,
                    left,
                    streams_left,
                } => {
                    let take = (left.min(chunk.len() as u64)) as usize;
                    let session = self.session.as_mut().expect("header parsed");
                    session.append(id, &chunk[..take]);
                    chunk = &chunk[take..];
                    let left = left - take as u64;
                    if left == 0 {
                        session.close_stream(id);
                        self.state = next_stream_state(streams_left);
                    } else {
                        self.state = ImageState::StreamBytes {
                            id,
                            left,
                            streams_left,
                        };
                    }
                }
                ImageState::NameCount => {
                    if !fill(&mut self.carry, 4, &mut chunk) {
                        return Ok(());
                    }
                    let n = le_u32(&self.carry[..4]);
                    self.carry.clear();
                    if n == 0 {
                        self.complete();
                    } else {
                        self.state = ImageState::NameHeader { left: n };
                    }
                }
                ImageState::NameHeader { left } => {
                    if !fill(&mut self.carry, 8, &mut chunk) {
                        return Ok(());
                    }
                    let ctx = le_u32(&self.carry[..4]);
                    let len = le_u32(&self.carry[4..8]) as usize;
                    self.carry.clear();
                    if len == 0 {
                        self.names.push((ctx, String::new()));
                        if left == 1 {
                            self.complete();
                        } else {
                            self.state = ImageState::NameHeader { left: left - 1 };
                        }
                    } else {
                        self.state = ImageState::NameBytes { ctx, len, left };
                    }
                }
                ImageState::NameBytes { ctx, len, left } => {
                    if !fill(&mut self.carry, len, &mut chunk) {
                        return Ok(());
                    }
                    let name = String::from_utf8(std::mem::take(&mut self.carry))
                        .map_err(|_| FormatError::BadName)?;
                    self.names.push((ctx, name));
                    if left == 1 {
                        self.complete();
                    } else {
                        self.state = ImageState::NameHeader { left: left - 1 };
                    }
                }
                // Trailing bytes past the name table are ignored, as in
                // the one-shot parser.
                ImageState::Done => return Ok(()),
            }
        }
        Ok(())
    }

    /// Declares the image complete.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Truncated`] naming the piece being read
    /// if the bytes pushed so far do not form a whole image.
    pub fn finish(&mut self) -> Result<(), FormatError> {
        match self.state {
            ImageState::Done => Ok(()),
            ImageState::Header => Err(FormatError::Truncated { reading: "header" }),
            ImageState::StreamCount => Err(FormatError::Truncated {
                reading: "stream count",
            }),
            ImageState::StreamHeader { .. } => Err(FormatError::Truncated {
                reading: "stream header",
            }),
            ImageState::StreamBytes { .. } => Err(FormatError::Truncated {
                reading: "stream bytes",
            }),
            ImageState::NameCount => Err(FormatError::Truncated {
                reading: "name table",
            }),
            ImageState::NameHeader { .. } => Err(FormatError::Truncated {
                reading: "name entry",
            }),
            ImageState::NameBytes { .. } => Err(FormatError::Truncated {
                reading: "name bytes",
            }),
        }
    }

    /// Seals the session once the name table has fully arrived.
    fn complete(&mut self) {
        let session = self.session.as_mut().expect("header parsed");
        session.set_ctx_names(std::mem::take(&mut self.names));
        session.finish();
        self.state = ImageState::Done;
    }
}

/// Moves bytes from `chunk` into `carry` until it holds `need` bytes;
/// true when full.
fn fill(carry: &mut Vec<u8>, need: usize, chunk: &mut &[u8]) -> bool {
    let take = (need - carry.len()).min(chunk.len());
    carry.extend_from_slice(&chunk[..take]);
    *chunk = &chunk[take..];
    carry.len() == need
}

fn next_stream_state(streams_left: u32) -> ImageState {
    if streams_left == 0 {
        ImageState::NameCount
    } else {
        ImageState::StreamHeader { left: streams_left }
    }
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().expect("4 bytes"))
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().expect("8 bytes"))
}

/// Offers `cand` into a best-per-SPE list, keeping the minimal
/// position per SPE.
fn offer(best: &mut Vec<Candidate>, cand: Candidate) {
    match best.iter_mut().find(|c| c.anchor.spe == cand.anchor.spe) {
        Some(c) => {
            if (cand.stream, cand.rec) < (c.stream, c.rec) {
                *c = cand;
            }
        }
        None => best.push(cand),
    }
}

/// Appends `ev` to the stream's pending list, tracking sortedness.
fn push_pending(s: &mut StreamState, ev: GlobalEvent) {
    if let Some(last) = s.pending.last() {
        if key(&ev) < key(last) {
            s.pending_sorted = false;
        }
    }
    s.pending.push(ev);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Analysis;
    use pdt::{EventCode, TraceFile, TraceStream};

    fn header(spes: u8) -> TraceHeader {
        TraceHeader {
            version: VERSION,
            num_ppe_threads: 1,
            num_spes: spes,
            core_hz: 3_200_000_000,
            timebase_divider: 120,
            dec_start: u32::MAX,
            group_mask: u32::MAX,
            spe_buffer_bytes: 2048,
        }
    }

    /// The session-test fixture: one PPE stream of anchors, one full
    /// lifecycle per SPE.
    fn trace(spes: u8) -> TraceFile {
        let mut ppe = Vec::new();
        for spe in 0..spes {
            TraceRecord {
                core: TraceCore::Ppe(0),
                code: EventCode::PpeCtxRun,
                timestamp: 100 + spe as u64,
                params: vec![spe as u64, spe as u64, u32::MAX as u64],
            }
            .encode_into(&mut ppe);
        }
        let mut streams = vec![TraceStream {
            core: TraceCore::Ppe(0),
            bytes: ppe,
            dropped: 0,
        }];
        for spe in 0..spes {
            let mut bytes = Vec::new();
            let mut dec = u32::MAX;
            for (code, step, params) in [
                (EventCode::SpeCtxStart, 0u32, vec![spe as u64]),
                (EventCode::SpeDmaGet, 500, vec![0x1000, 0x100000, 4096, 1]),
                (EventCode::SpeTagWaitBegin, 10, vec![2, 0]),
                (EventCode::SpeTagWaitEnd, 800, vec![2]),
                (EventCode::SpeUser, 100, vec![7, 1, 0]),
                (EventCode::SpeStop, 1000, vec![0]),
            ] {
                dec = dec.wrapping_sub(step);
                TraceRecord {
                    core: TraceCore::Spe(spe),
                    code,
                    timestamp: dec as u64,
                    params,
                }
                .encode_into(&mut bytes);
            }
            streams.push(TraceStream {
                core: TraceCore::Spe(spe),
                bytes,
                dropped: 0,
            });
        }
        TraceFile {
            header: header(spes),
            streams,
            ctx_names: (0..spes as u32).map(|c| (c, format!("k{c}"))).collect(),
        }
    }

    /// Ingests `t` in `chunk`-byte pieces per stream and finishes.
    fn ingest_chunked(t: &TraceFile, chunk: usize) -> IngestSession {
        let mut s = IngestSession::new(t.header).with_parallelism(Parallelism::Workers(2));
        let ids: Vec<StreamId> = t
            .streams
            .iter()
            .map(|st| s.add_stream(st.core, st.dropped))
            .collect();
        s.set_ctx_names(t.ctx_names.clone());
        let mut offs = vec![0usize; t.streams.len()];
        loop {
            let mut progressed = false;
            for (i, st) in t.streams.iter().enumerate() {
                if offs[i] < st.bytes.len() {
                    let end = (offs[i] + chunk).min(st.bytes.len());
                    s.append(ids[i], &st.bytes[offs[i]..end]);
                    offs[i] = end;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        s.finish();
        s
    }

    /// Asserts a finished session's snapshot equals the one-shot
    /// analysis of `t` in every observable product.
    fn assert_matches_oneshot(s: &mut IngestSession, t: &TraceFile) {
        let snap = s.snapshot();
        let one = Analysis::of(t)
            .parallelism(Parallelism::Workers(2))
            .run()
            .unwrap();
        let (sa, oa) = (snap.analyzed(), one.analyzed());
        assert_eq!(sa.events, oa.events);
        assert_eq!(sa.anchors, oa.anchors);
        assert_eq!(sa.ctx_names, oa.ctx_names);
        assert_eq!(sa.dropped, oa.dropped);
        assert_eq!(sa.header, oa.header);
        assert_eq!(snap.loss(), one.loss());
        assert_eq!(snap.intervals(), one.intervals());
        assert_eq!(snap.index(), one.index());
        assert_eq!(snap.stats(), one.stats());
    }

    #[test]
    fn chunked_equals_oneshot_for_many_chunk_sizes() {
        let t = trace(3);
        for chunk in [1, 7, 16, 33, 4096] {
            let mut s = ingest_chunked(&t, chunk);
            assert_matches_oneshot(&mut s, &t);
        }
    }

    #[test]
    fn chunked_equals_oneshot_on_damaged_streams() {
        let mut t = trace(3);
        t.streams[1].bytes[16] = 0; // zero granule count mid-stream
        let torn = t.streams[2].bytes.len() - 5;
        t.streams[2].bytes.truncate(torn); // torn tail
        t.streams[0].bytes[3] = 0xee; // corrupt a PPE record header
        for chunk in [1, 5, 16, 64] {
            let mut s = ingest_chunked(&t, chunk);
            assert_matches_oneshot(&mut s, &t);
        }
    }

    #[test]
    fn unanchored_streams_match_oneshot() {
        let mut t = trace(2);
        t.streams[0].bytes.clear(); // no PPE sync records at all
        for chunk in [1, 16, 1024] {
            let mut s = ingest_chunked(&t, chunk);
            assert_matches_oneshot(&mut s, &t);
        }
    }

    #[test]
    fn mid_stream_snapshots_equal_prefix_oneshot() {
        let t = trace(2);
        // Cut every stream at a few ragged byte positions; a snapshot
        // of the open session must equal the one-shot analysis of the
        // trace truncated to those prefixes.
        for cuts in [[7usize, 23, 41], [16, 16, 16], [1, 96, 50]] {
            let mut s = IngestSession::new(t.header).with_parallelism(Parallelism::Workers(2));
            let ids: Vec<StreamId> = t
                .streams
                .iter()
                .map(|st| s.add_stream(st.core, st.dropped))
                .collect();
            s.set_ctx_names(t.ctx_names.clone());
            let mut prefix = t.clone();
            for (i, st) in t.streams.iter().enumerate() {
                let cut = cuts[i].min(st.bytes.len());
                s.append(ids[i], &st.bytes[..cut]);
                prefix.streams[i].bytes.truncate(cut);
            }
            let snap = s.snapshot();
            let one = Analysis::of(&prefix)
                .parallelism(Parallelism::Workers(2))
                .run()
                .unwrap();
            assert_eq!(snap.analyzed().events, one.analyzed().events, "{cuts:?}");
            assert_eq!(snap.analyzed().anchors, one.analyzed().anchors);
            assert_eq!(snap.loss(), one.loss(), "{cuts:?}");
            assert_eq!(snap.index(), one.index(), "{cuts:?}");
            // The session keeps going: feed the rest and re-verify.
            for (i, st) in t.streams.iter().enumerate() {
                let cut = cuts[i].min(st.bytes.len());
                s.append(ids[i], &st.bytes[cut..]);
            }
            s.finish();
            assert_matches_oneshot(&mut s, &t);
        }
    }

    #[test]
    fn snapshots_are_frozen_epochs() {
        let t = trace(2);
        let mut s = IngestSession::new(t.header).with_parallelism(Parallelism::Serial);
        let ids: Vec<StreamId> = t
            .streams
            .iter()
            .map(|st| s.add_stream(st.core, st.dropped))
            .collect();
        s.set_ctx_names(t.ctx_names.clone());
        s.append(ids[0], &t.streams[0].bytes);
        s.close_stream(ids[0]);
        s.append(ids[1], &t.streams[1].bytes[..32]);
        let early = s.snapshot();
        let early_events = early.analyzed().events.clone();
        // Appending and snapshotting again must not disturb the pinned
        // epoch.
        s.append(ids[1], &t.streams[1].bytes[32..]);
        s.append(ids[2], &t.streams[2].bytes);
        s.finish();
        let late = s.snapshot();
        assert_eq!(early.analyzed().events, early_events);
        assert!(late.analyzed().events.len() > early_events.len());
    }

    #[test]
    fn snapshot_is_cached_until_new_bytes_arrive() {
        let t = trace(1);
        let mut s = ingest_chunked(&t, 16);
        let a = s.snapshot();
        let b = s.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn image_ingest_matches_oneshot_at_every_chunk_size() {
        let t = trace(2);
        let image = t.to_bytes();
        for chunk in [1usize, 3, 17, 256, image.len()] {
            let mut ing = ImageIngest::new().with_parallelism(Parallelism::Workers(2));
            for piece in image.chunks(chunk) {
                ing.push(piece).unwrap();
            }
            assert!(ing.is_complete(), "chunk={chunk}");
            ing.finish().unwrap();
            let snap = ing.snapshot().unwrap();
            let one = Analysis::of(&t)
                .parallelism(Parallelism::Workers(2))
                .run()
                .unwrap();
            assert_eq!(snap.analyzed().events, one.analyzed().events);
            assert_eq!(snap.analyzed().ctx_names, one.analyzed().ctx_names);
            assert_eq!(snap.loss(), one.loss());
            assert_eq!(snap.index(), one.index());
        }
    }

    #[test]
    fn image_ingest_rejects_corruption_and_reports_truncation() {
        let t = trace(1);
        let image = t.to_bytes();
        let mut bad = image.clone();
        bad[0] = b'X';
        assert_eq!(ImageIngest::new().push(&bad), Err(FormatError::BadMagic));
        let mut ing = ImageIngest::new();
        ing.push(&image[..image.len() - 1]).unwrap();
        assert!(!ing.is_complete());
        assert!(ing.finish().is_err());
        ing.push(&image[image.len() - 1..]).unwrap();
        assert!(ing.is_complete());
        assert!(ing.finish().is_ok());
    }

    /// A trace whose tail (SpeUser records after SpeStop) changes no
    /// intervals: the incremental-index bound is measurable.
    fn tailable_trace(spes: u8, users: usize) -> TraceFile {
        let mut t = trace(spes);
        for st in t.streams.iter_mut().skip(1) {
            // Continue the decrementer below the fixture's last value.
            let mut dec = (u32::MAX - 2410) as u64;
            for k in 0..users {
                dec -= 3;
                TraceRecord {
                    core: st.core,
                    code: EventCode::SpeUser,
                    timestamp: dec,
                    params: vec![9, (k % 2 + 1) as u64, 0],
                }
                .encode_into(&mut st.bytes);
            }
        }
        t
    }

    #[test]
    fn appending_a_small_tail_rebuilds_few_index_blocks() {
        let t = tailable_trace(4, 600);
        let mut s = IngestSession::new(t.header).with_parallelism(Parallelism::Workers(2));
        let ids: Vec<StreamId> = t
            .streams
            .iter()
            .map(|st| s.add_stream(st.core, st.dropped))
            .collect();
        s.set_ctx_names(t.ctx_names.clone());
        s.append(ids[0], &t.streams[0].bytes);
        s.close_stream(ids[0]);
        for (i, st) in t.streams.iter().enumerate().skip(1) {
            let head = st.bytes.len() * 99 / 100 / 16 * 16;
            s.append(ids[i], &st.bytes[..head]);
        }
        let _ = s.snapshot(); // builds the committed index
        for (i, st) in t.streams.iter().enumerate().skip(1) {
            let head = st.bytes.len() * 99 / 100 / 16 * 16;
            s.append(ids[i], &st.bytes[head..]);
        }
        s.finish();
        assert_matches_oneshot(&mut s, &t);
        let delta = s.last_delta().unwrap();
        assert!(!delta.full_rebuild, "tail append must extend, not rebuild");
        assert_eq!(delta.lanes_rebuilt, 0, "intervals unchanged");
        assert!(
            delta.rebuilt_fraction() <= 0.05,
            "rebuilt {}/{} blocks",
            delta.blocks_rebuilt,
            delta.blocks_total
        );
    }
}
