//! Zero-copy ingestion of serialized trace images.
//!
//! [`TraceImage`] parses a serialized PDT image (the byte format
//! written by [`TraceFile::to_bytes`]) without copying any record
//! bytes: only the header, the stream directory and the context-name
//! table are materialized, while every stream's records stay borrowed
//! windows into the caller's buffer. Analysis then feeds those windows
//! straight into the parallel decode workers, so a trace loaded from
//! disk is decoded exactly once, in place.
//!
//! For small traces the copy saved is negligible; for the multi-SPE
//! captures the analyzer targets it removes the single largest
//! allocation of the load path.

use std::path::Path;

use pdt::{FormatError, StreamMeta, TraceCore, TraceFile, TraceHeader, TraceStream};

use crate::analyze::{AnalyzeError, AnalyzedTrace};
use crate::loss::LossReport;
use crate::parallel::{analyze_sources, analyze_sources_lossy};

/// An owned trace image loaded from disk, memory-mapped when the
/// default-on `mmap` feature is enabled (falling back to a heap read
/// when it is off or the map fails). Both representations expose the
/// same `&[u8]`, so every parser ([`TraceImage::parse`],
/// [`crate::V2Trace::parse`], [`crate::is_v2_image`]) borrows from the
/// image without caring how it is backed — one load path for v1 and
/// v2 containers.
#[derive(Debug)]
pub struct MappedImage {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    #[cfg(feature = "mmap")]
    Mapped(memmap2::Mmap),
    Heap(Vec<u8>),
}

impl MappedImage {
    /// Loads the image at `path`, mapping it when possible.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be
    /// opened or read.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<MappedImage> {
        let path = path.as_ref();
        #[cfg(feature = "mmap")]
        {
            let file = std::fs::File::open(path)?;
            if let Ok(map) = memmap2::Mmap::map(&file) {
                return Ok(MappedImage {
                    repr: Repr::Mapped(map),
                });
            }
        }
        Ok(MappedImage {
            repr: Repr::Heap(std::fs::read(path)?),
        })
    }

    /// Wraps bytes already in memory (the heap representation).
    pub fn from_vec(bytes: Vec<u8>) -> MappedImage {
        MappedImage {
            repr: Repr::Heap(bytes),
        }
    }

    /// The image bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(feature = "mmap")]
            Repr::Mapped(m) => m,
            Repr::Heap(v) => v,
        }
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True when the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }
}

impl std::ops::Deref for MappedImage {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl AsRef<[u8]> for MappedImage {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

/// A parsed view over a serialized trace image. Record bytes are
/// borrowed from the underlying buffer, never copied.
#[derive(Debug, Clone)]
pub struct TraceImage<'a> {
    image: &'a [u8],
    header: TraceHeader,
    metas: Vec<StreamMeta>,
    ctx_names: Vec<(u32, String)>,
}

impl<'a> TraceImage<'a> {
    /// Parses the image's header, stream directory and context-name
    /// table, validating the overall layout. Record bytes are not
    /// inspected — corrupt records surface later, from
    /// [`analyze`](Self::analyze).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if the image is truncated or its
    /// header, directory or name table is malformed.
    pub fn parse(image: &'a [u8]) -> Result<Self, FormatError> {
        let header = TraceFile::scan_header(image)?;
        let metas = TraceFile::scan_stream_table(image)?;
        let ctx_names = TraceFile::scan_ctx_names(image)?;
        Ok(Self {
            image,
            header,
            metas,
            ctx_names,
        })
    }

    /// The trace header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Per-stream directory entries, in image order.
    pub fn streams(&self) -> &[StreamMeta] {
        &self.metas
    }

    /// The context-name table.
    pub fn ctx_names(&self) -> &[(u32, String)] {
        &self.ctx_names
    }

    /// The record bytes of stream `index`, borrowed from the image.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn stream_bytes(&self, index: usize) -> &'a [u8] {
        self.metas[index].slice(self.image)
    }

    /// Records dropped across all streams.
    pub fn total_dropped(&self) -> u64 {
        self.metas.iter().map(|m| m.dropped).sum()
    }

    /// Reconstructs the global timeline directly from the borrowed
    /// stream windows, using up to `threads` decode workers. The
    /// result is identical to `analyze(&TraceFile::from_bytes(image)?)`
    /// — same events, same order, same errors — without the
    /// intermediate per-stream copies.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] on corrupt records or missing sync
    /// anchors, with the serial path's stream-order precedence.
    pub fn analyze(&self, threads: usize) -> Result<AnalyzedTrace, AnalyzeError> {
        let sources: Vec<(TraceCore, &[u8])> = self
            .metas
            .iter()
            .map(|m| (m.core, m.slice(self.image)))
            .collect();
        analyze_sources(
            self.header,
            &sources,
            self.total_dropped(),
            self.ctx_names.clone(),
            threads,
        )
    }

    /// Reconstructs the global timeline from the borrowed windows,
    /// resynchronizing past corrupt records instead of failing. Lost
    /// ranges, tracer drops and discarded streams are quantified in the
    /// returned [`LossReport`]. On an uncorrupted image the trace is
    /// byte-identical to [`analyze`](Self::analyze).
    pub fn analyze_lossy(&self, threads: usize) -> (AnalyzedTrace, LossReport) {
        let sources: Vec<(TraceCore, &[u8], u64)> = self
            .metas
            .iter()
            .map(|m| (m.core, m.slice(self.image), m.dropped))
            .collect();
        analyze_sources_lossy(self.header, &sources, self.ctx_names.clone(), threads)
    }

    /// Materializes an owned [`TraceFile`], copying the record bytes.
    /// Useful when the backing buffer cannot outlive the trace.
    pub fn to_trace_file(&self) -> TraceFile {
        TraceFile {
            header: self.header,
            streams: self
                .metas
                .iter()
                .map(|m| TraceStream {
                    core: m.core,
                    bytes: m.slice(self.image).to_vec(),
                    dropped: m.dropped,
                })
                .collect(),
            ctx_names: self.ctx_names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use pdt::{EventCode, TraceRecord, TraceStream, VERSION};

    fn trace(spes: u8) -> TraceFile {
        let mut ppe = Vec::new();
        for spe in 0..spes {
            TraceRecord {
                core: TraceCore::Ppe(0),
                code: EventCode::PpeCtxRun,
                timestamp: 10 + spe as u64,
                params: vec![spe as u64, spe as u64, u32::MAX as u64],
            }
            .encode_into(&mut ppe);
        }
        let mut streams = vec![TraceStream {
            core: TraceCore::Ppe(0),
            bytes: ppe,
            dropped: 1,
        }];
        for spe in 0..spes {
            let mut bytes = Vec::new();
            let mut dec = u32::MAX;
            for (code, step, params) in [
                (EventCode::SpeCtxStart, 0u32, vec![spe as u64]),
                (EventCode::SpeDmaGet, 100, vec![0x1000, 0x100000, 4096, 1]),
                (EventCode::SpeStop, 900, vec![0]),
            ] {
                dec = dec.wrapping_sub(step);
                TraceRecord {
                    core: TraceCore::Spe(spe),
                    code,
                    timestamp: dec as u64,
                    params,
                }
                .encode_into(&mut bytes);
            }
            streams.push(TraceStream {
                core: TraceCore::Spe(spe),
                bytes,
                dropped: 0,
            });
        }
        TraceFile {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: spes,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            streams,
            ctx_names: (0..spes as u32).map(|c| (c, format!("k{c}"))).collect(),
        }
    }

    #[test]
    fn image_analysis_matches_owned_path() {
        let t = trace(4);
        let bytes = t.to_bytes();
        let image = TraceImage::parse(&bytes).unwrap();
        assert_eq!(image.header(), &t.header);
        assert_eq!(image.streams().len(), t.streams.len());
        assert_eq!(image.ctx_names(), t.ctx_names.as_slice());
        assert_eq!(image.total_dropped(), t.total_dropped());

        let serial = analyze(&t).unwrap();
        for threads in [1, 2, 8] {
            let got = image.analyze(threads).unwrap();
            assert_eq!(got.events, serial.events);
            assert_eq!(got.anchors, serial.anchors);
            assert_eq!(got.dropped, serial.dropped);
        }
    }

    #[test]
    fn image_lossy_analysis_matches_strict_when_clean() {
        let t = trace(3);
        let bytes = t.to_bytes();
        let image = TraceImage::parse(&bytes).unwrap();
        let strict = image.analyze(4).unwrap();
        let (lossy, report) = image.analyze_lossy(4);
        assert_eq!(lossy.events, strict.events);
        assert_eq!(report.total_gaps(), 0);
        assert_eq!(report.tracer_dropped(), t.total_dropped());
    }

    #[test]
    fn stream_bytes_are_borrowed_windows() {
        let t = trace(2);
        let bytes = t.to_bytes();
        let image = TraceImage::parse(&bytes).unwrap();
        let base = bytes.as_ptr() as usize;
        for (i, s) in t.streams.iter().enumerate() {
            let window = image.stream_bytes(i);
            assert_eq!(window, s.bytes.as_slice());
            let addr = window.as_ptr() as usize;
            assert!(addr >= base && addr + window.len() <= base + bytes.len());
        }
    }

    #[test]
    fn to_trace_file_round_trips() {
        let t = trace(3);
        let bytes = t.to_bytes();
        let image = TraceImage::parse(&bytes).unwrap();
        assert_eq!(image.to_trace_file(), t);
    }

    #[test]
    fn truncated_image_is_rejected_at_parse() {
        let t = trace(2);
        let bytes = t.to_bytes();
        assert!(TraceImage::parse(&bytes[..bytes.len() - 1]).is_err());
        assert!(TraceImage::parse(&bytes[..10]).is_err());
    }

    #[test]
    fn mapped_image_matches_heap_read() {
        let t = trace(2);
        let bytes = t.to_bytes();
        let path = std::env::temp_dir().join("ta_mapped_image_test.pdt");
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MappedImage::open(&path).unwrap();
        assert_eq!(mapped.bytes(), bytes.as_slice());
        assert_eq!(mapped.len(), bytes.len());
        assert!(!mapped.is_empty());
        let heap = MappedImage::from_vec(bytes);
        assert_eq!(&*mapped, &*heap);
        let image = TraceImage::parse(&mapped).unwrap();
        assert_eq!(image.to_trace_file(), t);
        let _ = std::fs::remove_file(&path);
    }
}
