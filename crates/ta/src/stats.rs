//! Per-core and DMA statistics derived from a trace.
//!
//! These are the numbers the Trace Analyzer's summary views show: per-
//! SPE activity breakdowns and utilization, and DMA traffic statistics
//! with observed completion latencies. Everything here is computed from
//! trace bytes alone; integration tests cross-check it against the
//! simulator's ground truth.

use std::collections::HashMap;

use pdt::{EventCode, TraceCore};

use crate::analyze::AnalyzedTrace;
use crate::columns::ColumnarTrace;
use crate::histogram::Log2Histogram;
use crate::intervals::{build_intervals, ActivityKind, SpeIntervals};

/// Activity summary for one SPE.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeActivity {
    /// The SPE index.
    pub spe: u8,
    /// Ticks from context start to stop.
    pub active_tb: u64,
    /// Ticks computing.
    pub compute_tb: u64,
    /// Ticks in tag-group waits.
    pub dma_wait_tb: u64,
    /// Ticks in mailbox waits.
    pub mbox_wait_tb: u64,
    /// Ticks in signal waits.
    pub signal_wait_tb: u64,
    /// Compute fraction of active time.
    pub utilization: f64,
}

impl SpeActivity {
    fn from_intervals(iv: &SpeIntervals) -> Self {
        SpeActivity {
            spe: iv.spe,
            active_tb: iv.active(),
            compute_tb: iv.total(ActivityKind::Compute),
            dma_wait_tb: iv.total(ActivityKind::DmaWait),
            mbox_wait_tb: iv.total(ActivityKind::MboxWait),
            signal_wait_tb: iv.total(ActivityKind::SignalWait),
            utilization: iv.utilization(),
        }
    }
}

/// One DMA command observed in the trace, with its completion as seen
/// at the closing tag wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedDma {
    /// The issuing SPE.
    pub spe: u8,
    /// True for GET (memory → LS).
    pub is_get: bool,
    /// Transfer bytes.
    pub bytes: u64,
    /// Issue time.
    pub issue_tb: u64,
    /// Completion observation time (`SpeTagWaitEnd` covering the tag),
    /// if any was seen.
    pub complete_tb: Option<u64>,
}

impl ObservedDma {
    /// Observed latency in ticks (issue to the wait that covered it).
    pub fn latency_tb(&self) -> Option<u64> {
        self.complete_tb.map(|c| c - self.issue_tb)
    }
}

/// DMA traffic summary for the whole trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DmaSummary {
    /// GET commands.
    pub gets: u64,
    /// PUT commands.
    pub puts: u64,
    /// Total bytes issued.
    pub bytes: u64,
    /// Every observed command.
    pub commands: Vec<ObservedDma>,
    /// Latency histogram (ticks), over commands with observed
    /// completion.
    pub latency_ticks: Log2Histogram,
    /// Size histogram (bytes).
    pub sizes: Log2Histogram,
}

impl DmaSummary {
    /// Appends another summary, preserving command order: per-SPE
    /// shard summaries absorbed in ascending SPE order reproduce the
    /// exact summary one sequential pass over all SPEs builds (the
    /// command list is a per-SPE concatenation; counters and
    /// histograms are commutative reductions).
    pub(crate) fn absorb(&mut self, mut other: DmaSummary) {
        self.gets += other.gets;
        self.puts += other.puts;
        self.bytes += other.bytes;
        self.commands.append(&mut other.commands);
        self.latency_ticks.merge(&other.latency_ticks);
        self.sizes.merge(&other.sizes);
    }

    /// Aggregate observed bandwidth in bytes per tick: total bytes of
    /// completed commands divided by the sum of their latencies.
    pub fn observed_bytes_per_tick(&self) -> f64 {
        let (b, t) = self
            .commands
            .iter()
            .filter_map(|c| c.latency_tb().map(|l| (c.bytes, l)))
            .fold((0u64, 0u64), |(b, t), (cb, cl)| (b + cb, t + cl));
        if t == 0 {
            0.0
        } else {
            b as f64 / t as f64
        }
    }
}

/// Event counts per code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventCounts {
    counts: HashMap<EventCode, u64>,
}

impl EventCounts {
    /// Count for one code.
    pub fn get(&self, code: EventCode) -> u64 {
        self.counts.get(&code).copied().unwrap_or(0)
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// All `(code, count)` pairs, sorted by descending count.
    pub fn sorted(&self) -> Vec<(EventCode, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(c, n)| (*c, *n)).collect();
        v.sort_by_key(|(c, n)| (std::cmp::Reverse(*n), c.raw()));
        v
    }
}

/// The full statistics bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Per-SPE activity.
    pub spes: Vec<SpeActivity>,
    /// DMA summary.
    pub dma: DmaSummary,
    /// Event counts.
    pub counts: EventCounts,
    /// Trace duration in ticks (first to last event).
    pub duration_tb: u64,
}

impl TraceStats {
    /// Activity for one SPE.
    pub fn spe(&self, spe: u8) -> Option<&SpeActivity> {
        self.spes.iter().find(|s| s.spe == spe)
    }

    /// Mean utilization over SPEs (0 when none).
    pub fn mean_utilization(&self) -> f64 {
        if self.spes.is_empty() {
            return 0.0;
        }
        self.spes.iter().map(|s| s.utilization).sum::<f64>() / self.spes.len() as f64
    }

    /// Load imbalance: max compute ticks / mean compute ticks over
    /// SPEs (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.spes.is_empty() {
            return 1.0;
        }
        let max = self.spes.iter().map(|s| s.compute_tb).max().unwrap_or(0) as f64;
        let mean =
            self.spes.iter().map(|s| s.compute_tb).sum::<u64>() as f64 / self.spes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Computes the statistics bundle for a trace.
///
/// New code should prefer [`Analysis::stats`](crate::session::Analysis::stats),
/// which shares one interval pass with the timeline and memoizes the
/// result; this function remains for compatibility.
pub fn compute_stats(trace: &AnalyzedTrace) -> TraceStats {
    compute_stats_with(trace, &build_intervals(trace))
}

/// Computes the statistics bundle from already-built intervals, so a
/// caller deriving several products (stats, timeline, …) from one
/// trace pays the interval pass once. [`compute_stats`] is this with a
/// fresh interval build.
pub fn compute_stats_with(trace: &AnalyzedTrace, intervals: &[SpeIntervals]) -> TraceStats {
    let spes = intervals.iter().map(SpeActivity::from_intervals).collect();

    let mut counts = EventCounts::default();
    for e in &trace.events {
        *counts.counts.entry(e.code).or_insert(0) += 1;
    }

    let dma = observe_dma(trace);
    TraceStats {
        spes,
        dma,
        counts,
        duration_tb: trace.end_tb().saturating_sub(trace.start_tb()),
    }
}

/// [`compute_stats_with`] over the columnar store: event counts come
/// from one walk of the code column and the DMA matcher iterates
/// per-SPE offset slices, with no per-event allocation. The session
/// uses this path; the row functions remain the differential oracles.
pub fn compute_stats_columns(trace: &ColumnarTrace, intervals: &[SpeIntervals]) -> TraceStats {
    compute_stats_columns_par(trace, intervals, crate::exec::Parallelism::Serial)
}

/// [`compute_stats_columns`] with the DMA observer's per-SPE shards
/// fanned out on the shared pool. The counts walk stays sequential
/// (one pass over the code column); the result is byte-identical to
/// the serial build.
pub(crate) fn compute_stats_columns_par(
    trace: &ColumnarTrace,
    intervals: &[SpeIntervals],
    par: crate::exec::Parallelism,
) -> TraceStats {
    let spes = intervals.iter().map(SpeActivity::from_intervals).collect();

    let mut counts = EventCounts::default();
    for code in trace.events.codes() {
        *counts.counts.entry(*code).or_insert(0) += 1;
    }

    let dma = observe_dma_columns_par(trace, par);
    TraceStats {
        spes,
        dma,
        counts,
        duration_tb: trace.end_tb().saturating_sub(trace.start_tb()),
    }
}

/// [`observe_dma`] over the columnar store: the same matching
/// algorithm, driven by per-SPE [`EventView`](crate::columns::EventView)s.
pub fn observe_dma_columns(trace: &ColumnarTrace) -> DmaSummary {
    observe_dma_columns_par(trace, crate::exec::Parallelism::Serial)
}

/// [`observe_dma_columns`] with the per-SPE shards fanned out on the
/// shared pool; partial summaries are absorbed in SPE order, so the
/// result is byte-identical to the sequential observer.
pub(crate) fn observe_dma_columns_par(
    trace: &ColumnarTrace,
    par: crate::exec::Parallelism,
) -> DmaSummary {
    let spes = trace.spes();
    let parts =
        crate::exec::map_indexed(par, spes.len(), |i| observe_spe_dma_columns(trace, spes[i]));
    let mut summary = DmaSummary::default();
    for p in parts {
        summary.absorb(p);
    }
    summary
}

/// One SPE's shard of [`observe_dma_columns`]: the DMA matcher is
/// entirely stream-local (tags never cross SPEs), so per-SPE partial
/// summaries absorbed in SPE order rebuild the whole-trace summary
/// byte-for-byte. The independent shard unit the parallel product
/// scheduler fans out per SPE.
pub(crate) fn observe_spe_dma_columns(trace: &ColumnarTrace, spe: u8) -> DmaSummary {
    let mut summary = DmaSummary::default();
    let mut outstanding: HashMap<u8, Vec<usize>> = HashMap::new();
    for v in trace.core_events(TraceCore::Spe(spe)) {
        match v.code {
            EventCode::SpeDmaGet | EventCode::SpeDmaPut => {
                let is_get = v.code == EventCode::SpeDmaGet;
                let bytes = v.params[2];
                let tag = (v.params[3] & 0xff) as u8;
                let idx = summary.commands.len();
                summary.commands.push(ObservedDma {
                    spe,
                    is_get,
                    bytes,
                    issue_tb: v.time_tb,
                    complete_tb: None,
                });
                outstanding.entry(tag).or_default().push(idx);
                if is_get {
                    summary.gets += 1;
                } else {
                    summary.puts += 1;
                }
                summary.bytes += bytes;
                summary.sizes.add(bytes);
            }
            EventCode::SpeTagWaitEnd => {
                let mask = v.params[0] as u32;
                for tag in 0..32u8 {
                    if mask & (1 << tag) != 0 {
                        if let Some(idxs) = outstanding.remove(&tag) {
                            for i in idxs {
                                summary.commands[i].complete_tb = Some(v.time_tb);
                                if let Some(l) = summary.commands[i].latency_tb() {
                                    summary.latency_ticks.add(l);
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    summary
}

/// Matches DMA issue records to the tag waits that observe their
/// completion.
pub fn observe_dma(trace: &AnalyzedTrace) -> DmaSummary {
    observe_dma_over(trace.spes(), |spe| trace.core_events(TraceCore::Spe(spe)))
}

/// [`observe_dma`] generalized over the event source, so the full-
/// trace path and the index-backed windowed path
/// ([`Analysis::dma_window`](crate::session::Analysis::dma_window))
/// share one matching algorithm: `events_of(spe)` yields that SPE's
/// events in time order, and only what it yields is observed.
pub fn observe_dma_over<'a, S, I>(spes: S, mut events_of: impl FnMut(u8) -> I) -> DmaSummary
where
    S: IntoIterator<Item = u8>,
    I: IntoIterator<Item = &'a crate::analyze::GlobalEvent>,
{
    let mut summary = DmaSummary::default();
    for spe in spes {
        // Outstanding command indices per tag.
        let mut outstanding: HashMap<u8, Vec<usize>> = HashMap::new();
        for e in events_of(spe) {
            match e.code {
                EventCode::SpeDmaGet | EventCode::SpeDmaPut => {
                    let is_get = e.code == EventCode::SpeDmaGet;
                    let bytes = e.params[2];
                    let tag = (e.params[3] & 0xff) as u8;
                    let idx = summary.commands.len();
                    summary.commands.push(ObservedDma {
                        spe,
                        is_get,
                        bytes,
                        issue_tb: e.time_tb,
                        complete_tb: None,
                    });
                    outstanding.entry(tag).or_default().push(idx);
                    if is_get {
                        summary.gets += 1;
                    } else {
                        summary.puts += 1;
                    }
                    summary.bytes += bytes;
                    summary.sizes.add(bytes);
                }
                EventCode::SpeTagWaitEnd => {
                    let mask = e.params[0] as u32;
                    for tag in 0..32u8 {
                        if mask & (1 << tag) != 0 {
                            if let Some(idxs) = outstanding.remove(&tag) {
                                for i in idxs {
                                    summary.commands[i].complete_tb = Some(e.time_tb);
                                    if let Some(l) = summary.commands[i].latency_tb() {
                                        summary.latency_ticks.add(l);
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::GlobalEvent;
    use pdt::{TraceHeader, VERSION};

    fn ev(t: u64, spe: u8, code: EventCode, params: Vec<u64>) -> GlobalEvent {
        GlobalEvent {
            time_tb: t,
            core: TraceCore::Spe(spe),
            code,
            params,
            stream_seq: t,
        }
    }

    fn trace(events: Vec<GlobalEvent>) -> AnalyzedTrace {
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 2,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events,
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        }
    }

    #[test]
    fn dma_issue_matches_to_covering_wait() {
        use EventCode::*;
        let t = trace(vec![
            ev(0, 0, SpeCtxStart, vec![0]),
            ev(10, 0, SpeDmaGet, vec![0x1000, 0, 4096, 2]),
            ev(12, 0, SpeDmaPut, vec![0x2000, 0, 128, 3]),
            ev(20, 0, SpeTagWaitBegin, vec![0b1100, 0]),
            ev(50, 0, SpeTagWaitEnd, vec![0b1100]),
            ev(90, 0, SpeStop, vec![0]),
        ]);
        let d = observe_dma(&t);
        assert_eq!(d.gets, 1);
        assert_eq!(d.puts, 1);
        assert_eq!(d.bytes, 4224);
        assert_eq!(d.commands.len(), 2);
        assert_eq!(d.commands[0].latency_tb(), Some(40));
        assert_eq!(d.commands[1].latency_tb(), Some(38));
        assert!(d.observed_bytes_per_tick() > 0.0);
    }

    #[test]
    fn unwaited_dma_has_no_latency() {
        use EventCode::*;
        let t = trace(vec![
            ev(0, 0, SpeCtxStart, vec![0]),
            ev(10, 0, SpeDmaGet, vec![0x1000, 0, 4096, 2]),
            ev(90, 0, SpeStop, vec![0]),
        ]);
        let d = observe_dma(&t);
        assert_eq!(d.commands[0].complete_tb, None);
        assert_eq!(d.latency_ticks.count(), 0);
        assert_eq!(d.sizes.count(), 1);
    }

    #[test]
    fn stats_aggregate_per_spe_and_imbalance() {
        use EventCode::*;
        let t = trace(vec![
            // SPE0: 100 ticks active, 40 in dma wait.
            ev(0, 0, SpeCtxStart, vec![0]),
            ev(10, 0, SpeTagWaitBegin, vec![1, 0]),
            ev(50, 0, SpeTagWaitEnd, vec![1]),
            ev(100, 0, SpeStop, vec![0]),
            // SPE1: 100 ticks active, all compute.
            ev(0, 1, SpeCtxStart, vec![0]),
            ev(100, 1, SpeStop, vec![0]),
        ]);
        let s = compute_stats(&t);
        assert_eq!(s.spes.len(), 2);
        let s0 = s.spe(0).unwrap();
        assert_eq!(s0.dma_wait_tb, 40);
        assert_eq!(s0.compute_tb, 60);
        assert!((s0.utilization - 0.6).abs() < 1e-12);
        let s1 = s.spe(1).unwrap();
        assert!((s1.utilization - 1.0).abs() < 1e-12);
        assert!((s.mean_utilization() - 0.8).abs() < 1e-12);
        // Imbalance: compute 60 vs 100 → max/mean = 100/80 = 1.25.
        assert!((s.imbalance() - 1.25).abs() < 1e-12);
        assert_eq!(s.duration_tb, 100);
        assert_eq!(s.counts.get(SpeCtxStart), 2);
        assert_eq!(s.counts.total(), 6);
    }

    #[test]
    fn columnar_stats_match_row_stats() {
        use EventCode::*;
        let t = trace(vec![
            ev(0, 0, SpeCtxStart, vec![0]),
            ev(10, 0, SpeDmaGet, vec![0x1000, 0, 4096, 2]),
            ev(12, 0, SpeDmaPut, vec![0x2000, 0, 128, 3]),
            ev(20, 0, SpeTagWaitBegin, vec![0b1100, 0]),
            ev(50, 0, SpeTagWaitEnd, vec![0b1100]),
            ev(90, 0, SpeStop, vec![0]),
            ev(0, 1, SpeCtxStart, vec![1]),
            ev(30, 1, SpeDmaGet, vec![0, 0, 2048, 5]),
            ev(100, 1, SpeStop, vec![0]),
        ]);
        let cols = ColumnarTrace::from_analyzed(&t);
        let iv = build_intervals(&t);
        assert_eq!(compute_stats_columns(&cols, &iv), compute_stats(&t));
        assert_eq!(observe_dma_columns(&cols), observe_dma(&t));
    }

    #[test]
    fn sorted_counts_descend() {
        use EventCode::*;
        let t = trace(vec![
            ev(0, 0, SpeUser, vec![1, 0, 0]),
            ev(1, 0, SpeUser, vec![1, 0, 0]),
            ev(2, 0, SpeStop, vec![0]),
        ]);
        let s = compute_stats(&t);
        let sorted = s.counts.sorted();
        assert_eq!(sorted[0], (SpeUser, 2));
        assert_eq!(sorted[1], (SpeStop, 1));
    }
}
