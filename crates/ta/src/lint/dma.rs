//! DMA transfer-lifetime reconstruction and the three tag-group rules.
//!
//! `dma-race` runs on the happens-before engine ([`crate::hb`]): the
//! rule builds one [`HbIndex`] per lint run (memoized in the rule
//! instance, shared across shards) and renders its [`RaceWitness`]es
//! as diagnostics — the two accesses, the exact byte intersection and
//! the absence-of-sync explanation. The pre-engine *window heuristic*
//! (issue → first covering `SpeTagWaitEnd`, overlapping windows +
//! overlapping local store + different tags + ≥1 GET) survives behind
//! the `scan-oracle` feature as [`dma_race_window_heuristic`], the
//! differential baseline the `hb_smoke` CI gate compares the engine
//! against — exactly how PR 3/5 kept the naive scans.
//!
//! `unwaited-tag-group` and `wait-without-dma` still replay transfer
//! lifetimes with [`sweep`], the single definition of the wait-window
//! semantics.

use std::sync::OnceLock;

use pdt::{EventCode, TraceCore};

use crate::columns::ColumnarTrace;
use crate::hb::{HbIndex, RaceWitness, Space};
#[cfg(feature = "scan-oracle")]
use crate::index::{IntervalTree, Span};

use super::{check_by_shards, spe_of_shard, Anchor, Diagnostic, Lint, LintContext, Severity};

/// Direction of a reconstructed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// GET: main storage → local store (writes LS).
    Get,
    /// PUT: local store → main storage (reads LS).
    Put,
}

/// One reconstructed DMA transfer on one SPE.
#[derive(Debug, Clone)]
struct Transfer {
    dir: Dir,
    lsa: u64,
    bytes: u64,
    tag: u8,
    /// Issue tick.
    start_tb: u64,
    /// First covering tag-wait end, or the lane's last tick when the
    /// transfer was never waited.
    end_tb: u64,
    waited: bool,
    anchor: Anchor,
}

impl Transfer {
    #[cfg(feature = "scan-oracle")]
    fn ls_overlaps(&self, other: &Transfer) -> bool {
        self.lsa < other.lsa + other.bytes && other.lsa < self.lsa + self.bytes
    }
}

/// A transfer's unsynchronized window plus its index in the history,
/// the payload the heuristic's interval tree carries.
#[cfg(feature = "scan-oracle")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TransferSpan {
    start_tb: u64,
    end_tb: u64,
    idx: u32,
}

#[cfg(feature = "scan-oracle")]
impl Span for TransferSpan {
    fn span(&self) -> (u64, u64) {
        (self.start_tb, self.end_tb)
    }
}

/// One SPE's reconstructed DMA history.
#[derive(Debug)]
struct SpeDmaHistory {
    spe: u8,
    transfers: Vec<Transfer>,
    /// `SpeTagWaitBegin` events whose mask covered zero outstanding
    /// transfers, with the offending mask.
    vacuous_waits: Vec<(Anchor, u32)>,
}

/// Replays one SPE's stream, tracking transfer lifetimes against the
/// tag-wait events. Shared by all three DMA rules so the lifetime
/// semantics have exactly one definition.
fn sweep(trace: &ColumnarTrace, spe: u8) -> SpeDmaHistory {
    // The group mask knows whether this SPE recorded any DMA or
    // tag-wait event at all; when it did not, the replay below cannot
    // produce anything, so skip the scan.
    if !trace.core_has_group(TraceCore::Spe(spe), pdt::EventGroup::SpeDma) {
        return SpeDmaHistory {
            spe,
            transfers: Vec::new(),
            vacuous_waits: Vec::new(),
        };
    }
    let mut transfers: Vec<Transfer> = Vec::new();
    let mut pending: Vec<usize> = Vec::new();
    let mut vacuous_waits = Vec::new();
    let mut last_tb = 0u64;
    for v in trace.core_events(TraceCore::Spe(spe)) {
        last_tb = last_tb.max(v.time_tb);
        match v.code {
            EventCode::SpeDmaGet | EventCode::SpeDmaPut => {
                if v.params.len() < 4 {
                    continue;
                }
                transfers.push(Transfer {
                    dir: if v.code == EventCode::SpeDmaGet {
                        Dir::Get
                    } else {
                        Dir::Put
                    },
                    lsa: v.params[1],
                    bytes: v.params[2],
                    tag: (v.params[3] & 0xff) as u8,
                    start_tb: v.time_tb,
                    end_tb: u64::MAX,
                    waited: false,
                    anchor: Anchor::at_view(&v),
                });
                pending.push(transfers.len() - 1);
            }
            EventCode::SpeTagWaitBegin => {
                let mask = v.params.first().copied().unwrap_or(0) as u32;
                let covers_any = pending
                    .iter()
                    .any(|&i| mask & (1u32 << transfers[i].tag) != 0);
                if !covers_any {
                    vacuous_waits.push((Anchor::at_view(&v), mask));
                }
            }
            EventCode::SpeTagWaitEnd => {
                let completed = v.params.first().copied().unwrap_or(0) as u32;
                pending.retain(|&i| {
                    if completed & (1u32 << transfers[i].tag) != 0 {
                        transfers[i].end_tb = v.time_tb;
                        transfers[i].waited = true;
                        false
                    } else {
                        true
                    }
                });
            }
            _ => {}
        }
    }
    // Transfers never covered by a wait stay open past the lane's end.
    for &i in &pending {
        transfers[i].end_tb = last_tb.max(transfers[i].start_tb).saturating_add(1);
    }
    // Guard degenerate clocks: a window is never empty.
    for t in &mut transfers {
        t.end_tb = t.end_tb.max(t.start_tb + 1);
    }
    SpeDmaHistory {
        spe,
        transfers,
        vacuous_waits,
    }
}

/// `dma-race`: overlapping DMA accesses with no happens-before
/// ordering path, at least one writing the shared bytes.
pub(super) struct DmaRace {
    /// The engine's race index, built once per lint run on first use
    /// and shared by every shard (rule instances are created fresh per
    /// run by `default_rules`, so the cache can never go stale).
    hb: OnceLock<HbIndex>,
}

impl DmaRace {
    pub(super) fn new() -> Self {
        DmaRace {
            hb: OnceLock::new(),
        }
    }

    fn index(&self, ctx: &LintContext<'_>) -> &HbIndex {
        self.hb.get_or_init(|| HbIndex::build(ctx.trace, ctx.edges))
    }
}

impl Lint for DmaRace {
    fn id(&self) -> &'static str {
        "dma-race"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn docs(&self) -> &'static str {
        "Two DMA accesses touch the same bytes (in one SPE's local store or \
         in main memory), at least one writes them, and no happens-before \
         path — tag wait, MFC barrier, or synchronization observed through \
         mailbox/signal traffic — orders the issues. The final contents \
         depend on transfer timing. Detected by vector-clock analysis over \
         the trace's synchronization events; same-tag pairs race too (the \
         MFC orders nothing within a tag group absent a wait or barrier)."
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        check_by_shards(self, ctx)
    }

    /// One shard per `(spe, tag)` pair with at least one transfer; a
    /// race is checked in the shard of its later (anchor) access.
    fn shards(&self, ctx: &LintContext<'_>) -> usize {
        self.index(ctx).shard_count()
    }

    fn check_shard(&self, ctx: &LintContext<'_>, shard: usize) -> Vec<Diagnostic> {
        let index = self.index(ctx);
        index
            .races_in_shard(shard)
            .iter()
            .map(|w| {
                let mut d = race_diagnostic(w);
                // A degraded propagation (cycle through skewed sync
                // edges) or damage on the *other* endpoint's stream
                // makes the verdict conservative, not firm. The runner
                // post-pass handles the anchor's own stream.
                d.suspect = index.degraded()
                    || ctx.stream_truncated(TraceCore::Spe(w.first.spe))
                    || ctx.stream_truncated(TraceCore::Spe(w.second.spe));
                d
            })
            .collect()
    }
}

/// Renders one engine witness: both endpoints, the byte intersection,
/// and why no ordering exists. Anchored at the later access with the
/// earlier one related, like every pairwise rule.
fn race_diagnostic(w: &RaceWitness) -> Diagnostic {
    let anchor = |a: &crate::hb::Access| Anchor {
        core: TraceCore::Spe(a.spe),
        seq: a.seq,
        time_tb: a.time_tb,
    };
    let (space, f_lo, f_hi, s_lo, s_hi) = match w.space {
        Space::LocalStore => (
            "LS",
            w.first.lsa,
            w.first.lsa + w.first.bytes,
            w.second.lsa,
            w.second.lsa + w.second.bytes,
        ),
        Space::MainMemory => (
            "EA",
            w.first.ea,
            w.first.ea + w.first.bytes,
            w.second.ea,
            w.second.ea + w.second.bytes,
        ),
    };
    let other = if w.first.spe == w.second.spe {
        String::new()
    } else {
        format!("SPE{} ", w.first.spe)
    };
    let why = match (w.space, w.same_tag) {
        (Space::LocalStore, true) => {
            "same tag group — the MFC orders nothing within a group; \
             no wait or barrier between the issues"
        }
        (Space::LocalStore, false) => "no tag wait or MFC barrier between the issues",
        (Space::MainMemory, _) => {
            "no synchronization path (tag wait observed via \
             mailbox/signal) orders the transfers"
        }
    };
    Diagnostic {
        rule: "dma-race",
        severity: Severity::Error,
        suspect: false,
        anchor: Some(anchor(&w.second)),
        related: vec![anchor(&w.first)],
        message: format!(
            "SPE{}: {} tag {} [{space} {:#x}..{:#x}) races {}{} tag {} \
             [{space} {:#x}..{:#x}) on bytes [{:#x}..{:#x}) — {why}",
            w.second.spe,
            w.second.dir.name(),
            w.second.tag,
            s_lo,
            s_hi,
            other,
            w.first.dir.name(),
            w.first.tag,
            f_lo,
            f_hi,
            w.lo,
            w.hi,
        ),
    }
}

/// The pre-engine `dma-race` heuristic, kept as the differential
/// oracle for the `hb_smoke` CI gate: transfers whose issue→wait
/// windows overlap in time and local store, from different tag groups,
/// with at least one GET. Misses same-tag races and flags overlaps
/// that mailbox/signal/barrier traffic actually orders — the
/// imprecision the engine exists to remove.
#[cfg(feature = "scan-oracle")]
pub fn dma_race_window_heuristic(trace: &ColumnarTrace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for spe in trace.spes() {
        let hist = sweep(trace, spe);
        if hist.transfers.len() < 2 {
            continue;
        }
        // The unsynchronized windows, indexed by the shared tree.
        let tree = IntervalTree::new(
            hist.transfers
                .iter()
                .enumerate()
                .map(|(i, t)| TransferSpan {
                    start_tb: t.start_tb,
                    end_tb: t.end_tb,
                    idx: i as u32,
                })
                .collect(),
        );
        for (i, t) in hist.transfers.iter().enumerate() {
            for span in tree.range(t.start_tb, t.end_tb) {
                let j = span.idx as usize;
                // Each unordered pair once, reported at the later issue.
                if j >= i {
                    continue;
                }
                let o = &hist.transfers[j];
                if o.tag != t.tag && t.ls_overlaps(o) && (t.dir == Dir::Get || o.dir == Dir::Get) {
                    out.push(Diagnostic {
                        rule: "dma-race",
                        severity: Severity::Error,
                        suspect: false,
                        anchor: Some(t.anchor),
                        related: vec![o.anchor],
                        message: format!(
                            "SPE{}: {} tag {} [LS {:#x}..{:#x}) races {} tag {} \
                             [LS {:#x}..{:#x}) — no tag wait orders them",
                            hist.spe,
                            dir_name(t.dir),
                            t.tag,
                            t.lsa,
                            t.lsa + t.bytes,
                            dir_name(o.dir),
                            o.tag,
                            o.lsa,
                            o.lsa + o.bytes,
                        ),
                    });
                }
            }
        }
    }
    out
}

fn dir_name(d: Dir) -> &'static str {
    match d {
        Dir::Get => "GET",
        Dir::Put => "PUT",
    }
}

/// `unwaited-tag-group`: DMA issued but never covered by a tag wait.
pub(super) struct UnwaitedTagGroup;

impl Lint for UnwaitedTagGroup {
    fn id(&self) -> &'static str {
        "unwaited-tag-group"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn docs(&self) -> &'static str {
        "A DMA transfer was issued but no subsequent tag wait ever covered its \
         tag group, so the program never learned whether the data moved — \
         reads of the target are unordered with the transfer."
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        check_by_shards(self, ctx)
    }

    fn shards(&self, ctx: &LintContext<'_>) -> usize {
        ctx.trace.spes().len()
    }

    fn check_shard(&self, ctx: &LintContext<'_>, shard: usize) -> Vec<Diagnostic> {
        let hist = sweep(ctx.trace, spe_of_shard(ctx, shard));
        let mut out = Vec::new();
        // One diagnostic per (spe, tag): anchored at the first
        // unwaited issue, the rest related.
        let mut tags: Vec<u8> = hist
            .transfers
            .iter()
            .filter(|t| !t.waited)
            .map(|t| t.tag)
            .collect();
        tags.sort_unstable();
        tags.dedup();
        for tag in tags {
            let unwaited: Vec<&Transfer> = hist
                .transfers
                .iter()
                .filter(|t| !t.waited && t.tag == tag)
                .collect();
            let first = unwaited[0];
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.severity(),
                suspect: false,
                anchor: Some(first.anchor),
                related: unwaited.iter().skip(1).take(4).map(|t| t.anchor).collect(),
                message: format!(
                    "SPE{}: {} transfer(s) on tag {} issued but never waited \
                     (first: {} of {} bytes at LS {:#x})",
                    hist.spe,
                    unwaited.len(),
                    tag,
                    dir_name(first.dir),
                    first.bytes,
                    first.lsa,
                ),
            });
        }
        out
    }
}

/// `wait-without-dma`: tag wait naming only tags with zero outstanding
/// transfers — the paper's misused-tag-group case.
pub(super) struct WaitWithoutDma;

impl Lint for WaitWithoutDma {
    fn id(&self) -> &'static str {
        "wait-without-dma"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn docs(&self) -> &'static str {
        "A tag wait's mask covered no outstanding transfer, so it completed \
         vacuously. Usually a wrong mask (waiting on the tag the program \
         meant to use, not the one it did) or a stale wait left over from \
         refactoring."
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        check_by_shards(self, ctx)
    }

    fn shards(&self, ctx: &LintContext<'_>) -> usize {
        ctx.trace.spes().len()
    }

    fn check_shard(&self, ctx: &LintContext<'_>, shard: usize) -> Vec<Diagnostic> {
        let hist = sweep(ctx.trace, spe_of_shard(ctx, shard));
        let mut out = Vec::new();
        for (anchor, mask) in &hist.vacuous_waits {
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.severity(),
                suspect: false,
                anchor: Some(*anchor),
                related: Vec::new(),
                message: format!(
                    "SPE{}: tag wait on mask {:#x} with zero outstanding \
                     transfers on those tags — the wait is vacuous",
                    hist.spe, mask,
                ),
            });
        }
        out
    }
}

// The sweep itself is covered through the rule tests in
// `tests/golden_lints.rs` and the synthetic-trace tests in
// `lint::tests` (mod.rs side), which exercise every lifetime case:
// waited, never-waited, partial completion masks, and vacuous waits.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{AnalyzedTrace, GlobalEvent};
    use crate::loss::LossReport;
    use pdt::{TraceHeader, VERSION};

    fn header() -> TraceHeader {
        TraceHeader {
            version: VERSION,
            num_ppe_threads: 1,
            num_spes: 1,
            core_hz: 3_200_000_000,
            timebase_divider: 120,
            dec_start: u32::MAX,
            group_mask: u32::MAX,
            spe_buffer_bytes: 2048,
        }
    }

    fn ev(t: u64, code: EventCode, params: Vec<u64>, seq: u64) -> GlobalEvent {
        GlobalEvent {
            time_tb: t,
            core: TraceCore::Spe(0),
            code,
            params,
            stream_seq: seq,
        }
    }

    /// A transfer with a distinct EA per issue tick, so local-store
    /// cases stay pure LS tests (overlapping EAs are their own race).
    fn dma(t: u64, code: EventCode, lsa: u64, size: u64, tag: u64, seq: u64) -> GlobalEvent {
        ev(t, code, vec![0x100000 + 0x10000 * t, lsa, size, tag], seq)
    }

    fn trace_of(events: Vec<GlobalEvent>) -> AnalyzedTrace {
        AnalyzedTrace {
            header: header(),
            events,
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        }
    }

    fn run_rule(rule: &dyn Lint, t: &AnalyzedTrace) -> Vec<Diagnostic> {
        let cols = crate::columns::ColumnarTrace::from_analyzed(t);
        let loss = LossReport::default();
        let config = super::super::LintConfig::default();
        let edges = crate::causality::sync_edges_columns(&cols, &loss);
        let ctx = LintContext {
            trace: &cols,
            intervals: &[],
            loss: &loss,
            suspects: &[],
            edges: &edges,
            config: &config,
        };
        rule.check(&ctx)
    }

    #[test]
    fn overlapping_gets_on_different_tags_race() {
        use EventCode::*;
        let t = trace_of(vec![
            ev(0, SpeCtxStart, vec![0], 0),
            dma(10, SpeDmaGet, 0x1000, 4096, 0, 1),
            dma(20, SpeDmaGet, 0x1800, 4096, 1, 2), // overlaps [0x1800,0x2000)
            ev(30, SpeTagWaitBegin, vec![0b11, 0], 3),
            ev(40, SpeTagWaitEnd, vec![0b11], 4),
            ev(50, SpeStop, vec![0], 5),
        ]);
        let d = run_rule(&DmaRace::new(), &t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].anchor.unwrap().seq, 2, "anchored at the later issue");
        assert_eq!(d[0].related[0].seq, 1);
        assert!(d[0].message.contains("on bytes [0x1800..0x2000)"));
    }

    #[test]
    fn wait_between_transfers_orders_them() {
        use EventCode::*;
        let t = trace_of(vec![
            dma(10, SpeDmaGet, 0x1000, 4096, 0, 0),
            ev(20, SpeTagWaitBegin, vec![0b1, 0], 1),
            ev(30, SpeTagWaitEnd, vec![0b1], 2),
            dma(40, SpeDmaGet, 0x1000, 4096, 1, 3),
            ev(50, SpeTagWaitBegin, vec![0b10, 0], 4),
            ev(60, SpeTagWaitEnd, vec![0b10], 5),
        ]);
        assert!(run_rule(&DmaRace::new(), &t).is_empty());
    }

    #[test]
    fn same_tag_overlap_races_without_intervening_wait() {
        use EventCode::*;
        // The MFC orders nothing within one tag group: two same-tag
        // GETs into the same buffer inside one wait window race. The
        // window heuristic structurally misses this (it skips same-tag
        // pairs); the engine reports it.
        let t = trace_of(vec![
            dma(10, SpeDmaGet, 0x1000, 4096, 0, 0),
            dma(20, SpeDmaGet, 0x1000, 4096, 0, 1),
            ev(30, SpeTagWaitBegin, vec![0b1, 0], 2),
            ev(40, SpeTagWaitEnd, vec![0b1], 3),
        ]);
        let d = run_rule(&DmaRace::new(), &t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("same tag group"), "{}", d[0].message);
        #[cfg(feature = "scan-oracle")]
        assert!(
            dma_race_window_heuristic(&crate::columns::ColumnarTrace::from_analyzed(&t)).is_empty(),
            "the heuristic misses same-tag races"
        );
    }

    #[test]
    fn concurrent_puts_do_not_race() {
        use EventCode::*;
        // Two PUTs read local store; with disjoint EAs nothing is
        // doubly written, so there is no race anywhere.
        let t = trace_of(vec![
            dma(10, SpeDmaPut, 0x1000, 4096, 0, 0),
            dma(20, SpeDmaPut, 0x1000, 4096, 1, 1),
            ev(30, SpeTagWaitBegin, vec![0b11, 0], 2),
            ev(40, SpeTagWaitEnd, vec![0b11], 3),
        ]);
        assert!(run_rule(&DmaRace::new(), &t).is_empty());
        // A PUT against a concurrent overlapping GET does race.
        let t = trace_of(vec![
            dma(10, SpeDmaPut, 0x1000, 4096, 0, 0),
            dma(20, SpeDmaGet, 0x1000, 4096, 1, 1),
            ev(30, SpeTagWaitBegin, vec![0b11, 0], 2),
            ev(40, SpeTagWaitEnd, vec![0b11], 3),
        ]);
        assert_eq!(run_rule(&DmaRace::new(), &t).len(), 1);
    }

    #[test]
    fn concurrent_puts_to_one_ea_range_race_in_main_memory() {
        use EventCode::*;
        // Disjoint local store, same effective address: both PUTs
        // write the same main-memory bytes with no ordering between
        // them — a race the LS-only heuristic never looked for.
        let t = trace_of(vec![
            ev(10, SpeDmaPut, vec![0x100000, 0x1000, 4096, 0], 0),
            ev(20, SpeDmaPut, vec![0x100000, 0x3000, 4096, 1], 1),
            ev(30, SpeTagWaitBegin, vec![0b11, 0], 2),
            ev(40, SpeTagWaitEnd, vec![0b11], 3),
        ]);
        let d = run_rule(&DmaRace::new(), &t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("[EA 0x100000..0x101000)"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn disjoint_ls_ranges_do_not_race() {
        use EventCode::*;
        let t = trace_of(vec![
            dma(10, SpeDmaGet, 0x1000, 0x800, 0, 0),
            dma(20, SpeDmaGet, 0x1800, 0x800, 1, 1), // adjacent, no overlap
            ev(30, SpeTagWaitBegin, vec![0b11, 0], 2),
            ev(40, SpeTagWaitEnd, vec![0b11], 3),
        ]);
        assert!(run_rule(&DmaRace::new(), &t).is_empty());
    }

    #[test]
    fn unwaited_transfers_group_per_tag() {
        use EventCode::*;
        let t = trace_of(vec![
            dma(10, SpeDmaGet, 0x1000, 256, 3, 0),
            dma(20, SpeDmaGet, 0x2000, 256, 3, 1),
            dma(30, SpeDmaPut, 0x3000, 256, 4, 2),
            ev(40, SpeTagWaitBegin, vec![1 << 4, 0], 3),
            ev(50, SpeTagWaitEnd, vec![1 << 4], 4),
            ev(60, SpeStop, vec![0], 5),
        ]);
        let d = run_rule(&UnwaitedTagGroup, &t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("2 transfer(s) on tag 3"));
        assert_eq!(d[0].anchor.unwrap().seq, 0);
        assert_eq!(d[0].related.len(), 1);
    }

    #[test]
    fn partial_completion_mask_releases_only_named_tags() {
        use EventCode::*;
        // Wait-any completes tag 0 but leaves tag 1 outstanding.
        let t = trace_of(vec![
            dma(10, SpeDmaGet, 0x1000, 256, 0, 0),
            dma(20, SpeDmaGet, 0x2000, 256, 1, 1),
            ev(30, SpeTagWaitBegin, vec![0b11, 1], 2),
            ev(40, SpeTagWaitEnd, vec![0b01], 3),
            ev(50, SpeStop, vec![0], 4),
        ]);
        let d = run_rule(&UnwaitedTagGroup, &t);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("tag 1"));
    }

    #[test]
    fn vacuous_wait_is_flagged() {
        use EventCode::*;
        let t = trace_of(vec![
            dma(10, SpeDmaGet, 0x1000, 256, 0, 0),
            ev(20, SpeTagWaitBegin, vec![1 << 5, 0], 1), // wrong tag
            ev(30, SpeTagWaitEnd, vec![1 << 5], 2),
            ev(40, SpeTagWaitBegin, vec![1, 0], 3), // right tag
            ev(50, SpeTagWaitEnd, vec![1], 4),
        ]);
        let d = run_rule(&WaitWithoutDma, &t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].anchor.unwrap().seq, 1);
        assert!(d[0].message.contains("0x20"));
    }
}
