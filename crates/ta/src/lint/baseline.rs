//! `.talint.toml` baseline files: a hand-rolled parser for the small
//! TOML subset the lint engine accepts (the workspace vendors no TOML
//! library).
//!
//! Accepted grammar, line-oriented:
//!
//! ```toml
//! # comments and blank lines
//! overhead-threshold = 0.4            # float
//! min-overhead-ticks = 512            # integer
//! allow = ["wait-without-dma"]        # string array
//! deny  = ["unbalanced-intervals"]
//!
//! [[suppress]]                        # one table per suppression
//! rule = "dma-race"
//! core = "spe1"                       # optional: "spe<N>" or "ppe<N>"
//! reason = "double-buffer slack is proven elsewhere"
//! ```
//!
//! Keys may be spelled with `-` or `_`. Anything outside this subset
//! (nested tables, multi-line values, non-string arrays) is a
//! [`ConfigError`] naming the line, not a silent skip.

use pdt::TraceCore;

use super::{LintConfig, Suppression};

/// A `.talint.toml` parse failure, carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, ".talint.toml line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strips a trailing `# comment` that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a `"..."` literal, returning the content.
fn parse_string(raw: &str, line: usize) -> Result<String, ConfigError> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected a \"string\", got `{raw}`")))?;
    if inner.contains('"') {
        return Err(err(line, "escapes inside strings are not supported"));
    }
    Ok(inner.to_string())
}

/// Parses `["a", "b"]` into its elements.
fn parse_string_array(raw: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| {
            err(
                line,
                format!("expected a [\"string\", ...] array, got `{raw}`"),
            )
        })?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| parse_string(item, line))
        .collect()
}

/// Parses `"spe3"` / `"ppe0"` into a [`TraceCore`].
fn parse_core(s: &str, line: usize) -> Result<TraceCore, ConfigError> {
    let lower = s.to_ascii_lowercase();
    let parsed = lower
        .strip_prefix("spe")
        .map(|n| (true, n))
        .or_else(|| lower.strip_prefix("ppe").map(|n| (false, n)));
    if let Some((is_spe, digits)) = parsed {
        if let Ok(n) = digits.parse::<u8>() {
            return Ok(if is_spe {
                TraceCore::Spe(n)
            } else {
                TraceCore::Ppe(n)
            });
        }
    }
    Err(err(
        line,
        format!("expected a core like \"spe1\" or \"ppe0\", got `{s}`"),
    ))
}

/// A `[[suppress]]` table under construction.
#[derive(Default)]
struct PartialSuppression {
    start_line: usize,
    rule: Option<String>,
    core: Option<TraceCore>,
    reason: Option<String>,
}

impl PartialSuppression {
    fn finish(self) -> Result<Suppression, ConfigError> {
        let rule = self
            .rule
            .ok_or_else(|| err(self.start_line, "[[suppress]] entry is missing `rule`"))?;
        let reason = self
            .reason
            .filter(|r| !r.trim().is_empty())
            .ok_or_else(|| {
                err(
                self.start_line,
                "[[suppress]] entry needs a non-empty `reason` (baselines must stay reviewable)",
            )
            })?;
        Ok(Suppression {
            rule,
            core: self.core,
            reason,
        })
    }
}

pub(super) fn parse(text: &str) -> Result<LintConfig, ConfigError> {
    let mut config = LintConfig::default();
    let mut current: Option<PartialSuppression> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if line != "[[suppress]]" {
                return Err(err(
                    lineno,
                    format!("unknown section `{line}` (only [[suppress]] is accepted)"),
                ));
            }
            if let Some(prev) = current.take() {
                config.suppress.push(prev.finish()?);
            }
            current = Some(PartialSuppression {
                start_line: lineno,
                ..Default::default()
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
        let key = key.trim().replace('-', "_");
        let value = value.trim();
        if let Some(sup) = current.as_mut() {
            match key.as_str() {
                "rule" => sup.rule = Some(parse_string(value, lineno)?),
                "core" => sup.core = Some(parse_core(&parse_string(value, lineno)?, lineno)?),
                "reason" => sup.reason = Some(parse_string(value, lineno)?),
                other => return Err(err(lineno, format!("unknown [[suppress]] key `{other}`"))),
            }
        } else {
            match key.as_str() {
                "allow" => config.allow = parse_string_array(value, lineno)?,
                "deny" => config.deny = parse_string_array(value, lineno)?,
                "overhead_threshold" => {
                    config.overhead_threshold = value
                        .parse::<f64>()
                        .map_err(|_| err(lineno, format!("expected a float, got `{value}`")))?;
                    if !(0.0..=1.0).contains(&config.overhead_threshold) {
                        return Err(err(lineno, "overhead-threshold must be in [0, 1]"));
                    }
                }
                "min_overhead_ticks" => {
                    config.min_overhead_ticks = value
                        .parse::<u64>()
                        .map_err(|_| err(lineno, format!("expected an integer, got `{value}`")))?;
                }
                other => return Err(err(lineno, format!("unknown key `{other}`"))),
            }
        }
    }
    if let Some(prev) = current.take() {
        config.suppress.push(prev.finish()?);
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_example_round_trips() {
        let text = r#"
            # baseline for the racy demo trace
            overhead-threshold = 0.4
            min_overhead_ticks = 512      # underscore spelling works too
            allow = ["wait-without-dma", "overhead-hotspot"]
            deny = []

            [[suppress]]
            rule = "dma-race"
            core = "spe1"
            reason = "seeded by the racy workload on purpose"

            [[suppress]]
            rule = "unbalanced-intervals"
            reason = "kernel tail is cut by design"
        "#;
        let c = LintConfig::from_toml_str(text).unwrap();
        assert_eq!(c.overhead_threshold, 0.4);
        assert_eq!(c.min_overhead_ticks, 512);
        assert_eq!(c.allow, vec!["wait-without-dma", "overhead-hotspot"]);
        assert!(c.deny.is_empty());
        assert_eq!(c.suppress.len(), 2);
        assert_eq!(c.suppress[0].rule, "dma-race");
        assert_eq!(c.suppress[0].core, Some(TraceCore::Spe(1)));
        assert_eq!(c.suppress[1].core, None);
    }

    #[test]
    fn empty_and_comment_only_inputs_yield_defaults() {
        let c = LintConfig::from_toml_str("# nothing here\n\n").unwrap();
        assert_eq!(c, LintConfig::default());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = LintConfig::from_toml_str("allow = [\"x\"]\nbogus = 3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown key `bogus`"));

        let e = LintConfig::from_toml_str("overhead-threshold = \"high\"").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected a float"));

        let e = LintConfig::from_toml_str("overhead-threshold = 1.5").unwrap_err();
        assert!(e.message.contains("[0, 1]"));
    }

    #[test]
    fn suppress_requires_rule_and_reason() {
        let e = LintConfig::from_toml_str("[[suppress]]\nrule = \"dma-race\"\n").unwrap_err();
        assert!(e.message.contains("non-empty `reason`"));
        assert_eq!(e.line, 1);

        let e = LintConfig::from_toml_str("[[suppress]]\nreason = \"why\"\n").unwrap_err();
        assert!(e.message.contains("missing `rule`"));

        let e = LintConfig::from_toml_str(
            "[[suppress]]\nrule = \"r\"\ncore = \"gpu0\"\nreason = \"x\"\n",
        )
        .unwrap_err();
        assert!(e.message.contains("expected a core"));
    }

    #[test]
    fn unknown_sections_and_bare_words_are_rejected() {
        let e = LintConfig::from_toml_str("[general]\n").unwrap_err();
        assert!(e.message.contains("unknown section"));
        let e = LintConfig::from_toml_str("allow\n").unwrap_err();
        assert!(e.message.contains("key = value"));
    }
}
