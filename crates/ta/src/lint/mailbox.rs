//! `mailbox-deadlock-shape`: cyclic blocked-on-mailbox wait chains.
//!
//! A deadlocked SPE shows up in a trace as an open mailbox (or signal)
//! read at the end of its stream: the begin event is recorded, the end
//! never arrives. One blocked SPE is a stall; a *cycle* of blocked
//! SPEs, each waiting on a word only another blocked SPE would
//! produce, is the deadlock shape the rule hunts.
//!
//! Whether a blocked SPE is genuinely starved is decided with the
//! FIFO pairing from [`causality::causal_edges`]: if the trace holds
//! an inbound write (or signal send) the blocked read never consumed,
//! a word is still in flight and the SPE would have woken — no
//! deadlock. Who a starved SPE waits *on* is reconstructed from the
//! trace's own traffic: signal reads wait on their historical
//! senders ([`SpeSignalSend`] carries the target), and inbound
//! mailbox words are attributed through the PPE relay pattern — a
//! `PpeMboxWrite` to SPE *b* issued after the PPE last read from SPE
//! *y* makes *b* wait on *y*.
//!
//! [`causality::causal_edges`]: crate::causality::causal_edges
//! [`SpeSignalSend`]: pdt::EventCode::SpeSignalSend

use std::collections::HashMap;

use pdt::{EventCode, TraceCore};

use crate::causality::EdgeKind;
use crate::columns::EventView;

use super::{Anchor, Diagnostic, Lint, LintContext, Severity};

/// What a blocked SPE is stuck reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Mbox,
    Signal,
}

#[derive(Debug, Clone)]
struct Blocked {
    kind: BlockKind,
    begin: Anchor,
}

/// Finds the open read at the end of one SPE's stream, if any.
fn blocked_wait<'a>(events: impl Iterator<Item = EventView<'a>>) -> Option<Blocked> {
    let mut open: Option<Blocked> = None;
    for e in events {
        match e.code {
            EventCode::SpeMboxReadBegin => {
                open = Some(Blocked {
                    kind: BlockKind::Mbox,
                    begin: Anchor::at_view(&e),
                });
            }
            EventCode::SpeSignalReadBegin => {
                open = Some(Blocked {
                    kind: BlockKind::Signal,
                    begin: Anchor::at_view(&e),
                });
            }
            EventCode::SpeMboxReadEnd | EventCode::SpeSignalReadEnd | EventCode::SpeStop => {
                open = None;
            }
            _ => {}
        }
    }
    open
}

pub(super) struct MailboxDeadlockShape;

impl Lint for MailboxDeadlockShape {
    fn id(&self) -> &'static str {
        "mailbox-deadlock-shape"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn docs(&self) -> &'static str {
        "Multiple SPEs end the trace blocked in mailbox/signal reads with no \
         word in flight, and the historical producer relationships between \
         them form a cycle — the classic deadlock shape: everyone waits on a \
         word only another waiter would send."
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let trace = ctx.trace;
        // SPEs ending the trace inside an open mailbox/signal read.
        let mut blocked: HashMap<u8, Blocked> = HashMap::new();
        for spe in trace.spes() {
            if let Some(b) = blocked_wait(trace.core_events(TraceCore::Spe(spe))) {
                blocked.insert(spe, b);
            }
        }
        if blocked.len() < 2 {
            return Vec::new();
        }

        // In-flight words rule out starvation: count unconsumed
        // producer events via the FIFO pairing of the run's shared
        // sync-edge set (extracted once, not per rule).
        let ctx_spe: HashMap<u32, u8> = trace.anchors.iter().map(|a| (a.ctx, a.spe)).collect();
        let paired_inbound: HashMap<u8, usize> = ctx
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::InboundMbox)
            .fold(HashMap::new(), |mut m, e| {
                if let TraceCore::Spe(s) = trace.events.core(e.later) {
                    *m.entry(s).or_default() += 1;
                }
                m
            });
        let mut inbound_writes: HashMap<u8, usize> = HashMap::new();
        let mut signal_sends: HashMap<u8, Vec<u8>> = HashMap::new(); // target -> senders
        let mut signal_reads: HashMap<u8, usize> = HashMap::new();
        // PPE relay attribution: last SPE the PPE read a word from.
        let mut last_ppe_read: Option<u8> = None;
        let mut relay_producers: HashMap<u8, Vec<u8>> = HashMap::new();
        for e in trace.events.iter() {
            match (e.core, e.code) {
                (TraceCore::Ppe(_), EventCode::PpeMboxRead)
                | (TraceCore::Ppe(_), EventCode::PpeIntrMboxRead) => {
                    if let Some(&s) = e.params.first().and_then(|c| ctx_spe.get(&(*c as u32))) {
                        last_ppe_read = Some(s);
                    }
                }
                (TraceCore::Ppe(_), EventCode::PpeMboxWrite) => {
                    if let Some(&b) = e.params.first().and_then(|c| ctx_spe.get(&(*c as u32))) {
                        *inbound_writes.entry(b).or_default() += 1;
                        if let Some(y) = last_ppe_read {
                            if y != b {
                                relay_producers.entry(b).or_default().push(y);
                            }
                        }
                    }
                }
                (TraceCore::Spe(s), EventCode::SpeSignalSend) => {
                    if let Some(&t) = e.params.first() {
                        signal_sends.entry(t as u8).or_default().push(s);
                    }
                }
                (TraceCore::Spe(s), EventCode::SpeSignalReadEnd) => {
                    *signal_reads.entry(s).or_default() += 1;
                }
                _ => {}
            }
        }

        // Starved = blocked with nothing in flight.
        let starved: HashMap<u8, &Blocked> = blocked
            .iter()
            .filter(|(spe, b)| match b.kind {
                BlockKind::Mbox => {
                    let written = inbound_writes.get(spe).copied().unwrap_or(0);
                    let consumed = paired_inbound.get(spe).copied().unwrap_or(0);
                    written <= consumed
                }
                BlockKind::Signal => {
                    let sent = signal_sends.get(spe).map_or(0, Vec::len);
                    let read = signal_reads.get(spe).copied().unwrap_or(0);
                    sent <= read
                }
            })
            .map(|(s, b)| (*s, b))
            .collect();
        if starved.len() < 2 {
            return Vec::new();
        }

        // waits-on edges between starved SPEs.
        let waits_on = |b: u8| -> Vec<u8> {
            let src = match starved[&b].kind {
                BlockKind::Mbox => relay_producers.get(&b),
                BlockKind::Signal => signal_sends.get(&b),
            };
            let mut v: Vec<u8> = src
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|y| starved.contains_key(y))
                        .collect()
                })
                .unwrap_or_default();
            v.sort_unstable();
            v.dedup();
            v
        };

        // Cycle detection: walk from each starved SPE along waits-on
        // edges; a walk returning to a visited node names a cycle.
        // Cycles are canonicalized (rotated to their minimum SPE) so
        // each is reported once.
        let mut cycles: Vec<Vec<u8>> = Vec::new();
        let mut spes: Vec<u8> = starved.keys().copied().collect();
        spes.sort_unstable();
        for &start in &spes {
            let mut path = vec![start];
            let mut cur = start;
            loop {
                let next = waits_on(cur);
                let Some(&n) = next.first() else { break };
                if let Some(pos) = path.iter().position(|&p| p == n) {
                    let mut cyc = path[pos..].to_vec();
                    let min_i = (0..cyc.len()).min_by_key(|&i| cyc[i]).unwrap_or(0);
                    cyc.rotate_left(min_i);
                    if !cycles.contains(&cyc) {
                        cycles.push(cyc);
                    }
                    break;
                }
                path.push(n);
                cur = n;
            }
        }

        cycles
            .into_iter()
            .map(|cyc| {
                let chain = cyc
                    .iter()
                    .map(|s| format!("SPE{s}"))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                let anchors: Vec<Anchor> = cyc.iter().map(|s| starved[s].begin).collect();
                Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    suspect: false,
                    anchor: anchors.first().copied(),
                    related: anchors.into_iter().skip(1).collect(),
                    message: format!(
                        "blocked wait cycle: {chain} -> SPE{} — every SPE in the \
                         chain ends the trace starved in a mailbox/signal read \
                         whose historical producer is also blocked",
                        cyc[0],
                    ),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{AnalyzedTrace, GlobalEvent, SpeAnchor};
    use pdt::{TraceHeader, VERSION};

    fn header(spes: u8) -> TraceHeader {
        TraceHeader {
            version: VERSION,
            num_ppe_threads: 1,
            num_spes: spes,
            core_hz: 3_200_000_000,
            timebase_divider: 120,
            dec_start: u32::MAX,
            group_mask: u32::MAX,
            spe_buffer_bytes: 2048,
        }
    }

    fn ev(t: u64, core: TraceCore, code: EventCode, params: Vec<u64>, seq: u64) -> GlobalEvent {
        GlobalEvent {
            time_tb: t,
            core,
            code,
            params,
            stream_seq: seq,
        }
    }

    fn run(t: &AnalyzedTrace) -> Vec<Diagnostic> {
        let cols = crate::columns::ColumnarTrace::from_analyzed(t);
        let loss = crate::loss::LossReport::default();
        let config = super::super::LintConfig::default();
        let edges = crate::causality::sync_edges_columns(&cols, &loss);
        let ctx = LintContext {
            trace: &cols,
            intervals: &[],
            loss: &loss,
            suspects: &[],
            edges: &edges,
            config: &config,
        };
        MailboxDeadlockShape.check(&ctx)
    }

    /// Two SPEs cross-blocked on signal reads, each the other's only
    /// historical sender.
    fn signal_deadlock() -> AnalyzedTrace {
        use EventCode::*;
        let (s0, s1) = (TraceCore::Spe(0), TraceCore::Spe(1));
        let mut events = vec![
            ev(10, s0, SpeCtxStart, vec![0], 0),
            ev(10, s1, SpeCtxStart, vec![1], 0),
            // A completed handshake establishes who signals whom.
            ev(20, s0, SpeSignalSend, vec![1, 1, 7], 1),
            ev(25, s1, SpeSignalReadBegin, vec![1], 1),
            ev(30, s1, SpeSignalReadEnd, vec![7], 2),
            ev(35, s1, SpeSignalSend, vec![0, 1, 8], 3),
            ev(40, s0, SpeSignalReadBegin, vec![1], 2),
            ev(45, s0, SpeSignalReadEnd, vec![8], 3),
            // Both re-enter reads that never complete.
            ev(50, s0, SpeSignalReadBegin, vec![1], 4),
            ev(55, s1, SpeSignalReadBegin, vec![1], 5),
        ];
        events.sort_by_key(|e| (e.time_tb, e.core.tag(), e.stream_seq));
        AnalyzedTrace {
            header: header(2),
            events,
            ctx_names: vec![],
            anchors: vec![
                SpeAnchor {
                    spe: 0,
                    ctx: 0,
                    run_tb: 0,
                    dec_start: u32::MAX,
                },
                SpeAnchor {
                    spe: 1,
                    ctx: 1,
                    run_tb: 0,
                    dec_start: u32::MAX,
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn cross_blocked_signal_readers_form_a_cycle() {
        let d = run(&signal_deadlock());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SPE0 -> SPE1") || d[0].message.contains("SPE1 -> SPE0"));
        assert_eq!(d[0].anchor.unwrap().seq, 4, "anchored at SPE0's open read");
        assert_eq!(d[0].related.len(), 1);
    }

    #[test]
    fn in_flight_signal_defuses_the_shape() {
        use EventCode::*;
        let mut t = signal_deadlock();
        // SPE1 sent one more signal to SPE0 than SPE0 consumed: SPE0
        // would wake, so there is no deadlock.
        let n = t.events.len() as u64;
        t.events
            .push(ev(60, TraceCore::Spe(1), SpeSignalSend, vec![0, 1, 9], n));
        t.events
            .sort_by_key(|e| (e.time_tb, e.core.tag(), e.stream_seq));
        assert!(run(&t).is_empty());
    }

    #[test]
    fn single_blocked_spe_is_not_a_cycle() {
        use EventCode::*;
        let s0 = TraceCore::Spe(0);
        let t = AnalyzedTrace {
            header: header(1),
            events: vec![
                ev(10, s0, SpeCtxStart, vec![0], 0),
                ev(20, s0, SpeMboxReadBegin, vec![], 1),
            ],
            ctx_names: vec![],
            anchors: vec![SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 0,
                dec_start: u32::MAX,
            }],
            dropped: 0,
        };
        assert!(run(&t).is_empty());
    }

    #[test]
    fn completed_streams_never_report() {
        use EventCode::*;
        let s0 = TraceCore::Spe(0);
        let t = AnalyzedTrace {
            header: header(1),
            events: vec![
                ev(10, s0, SpeCtxStart, vec![0], 0),
                ev(20, s0, SpeMboxReadBegin, vec![], 1),
                ev(30, s0, SpeMboxReadEnd, vec![5], 2),
                ev(40, s0, SpeStop, vec![0], 3),
            ],
            ctx_names: vec![],
            anchors: vec![SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 0,
                dec_start: u32::MAX,
            }],
            dropped: 0,
        };
        assert!(run(&t).is_empty());
    }

    /// Two SPEs blocked on inbound mailbox reads, where the PPE relay
    /// pattern (read from one, write to the other) ties them into a
    /// ring.
    #[test]
    fn ppe_relayed_mailbox_ring_is_detected() {
        use EventCode::*;
        let ppe = TraceCore::Ppe(0);
        let (s0, s1) = (TraceCore::Spe(0), TraceCore::Spe(1));
        let mut events = vec![
            ev(10, s0, SpeCtxStart, vec![0], 0),
            ev(10, s1, SpeCtxStart, vec![1], 0),
            // Round 1 completes: PPE reads s0's word, forwards to s1;
            // reads s1's word, forwards to s0.
            ev(20, s0, SpeMboxWrite, vec![1], 1),
            ev(25, ppe, PpeMboxRead, vec![0, 1], 0),
            ev(30, ppe, PpeMboxWrite, vec![1, 1], 1),
            ev(35, s1, SpeMboxReadBegin, vec![], 1),
            ev(40, s1, SpeMboxReadEnd, vec![1], 2),
            ev(45, s1, SpeMboxWrite, vec![2], 3),
            ev(50, ppe, PpeMboxRead, vec![1, 2], 2),
            ev(55, ppe, PpeMboxWrite, vec![0, 2], 3),
            ev(60, s0, SpeMboxReadBegin, vec![], 2),
            ev(65, s0, SpeMboxReadEnd, vec![2], 3),
            // Round 2 hangs: both SPEs block, no words in flight.
            ev(70, s0, SpeMboxReadBegin, vec![], 4),
            ev(75, s1, SpeMboxReadBegin, vec![], 4),
        ];
        events.sort_by_key(|e| (e.time_tb, e.core.tag(), e.stream_seq));
        let t = AnalyzedTrace {
            header: header(2),
            events,
            ctx_names: vec![],
            anchors: vec![
                SpeAnchor {
                    spe: 0,
                    ctx: 0,
                    run_tb: 0,
                    dec_start: u32::MAX,
                },
                SpeAnchor {
                    spe: 1,
                    ctx: 1,
                    run_tb: 0,
                    dec_start: u32::MAX,
                },
            ],
            dropped: 0,
        };
        let d = run(&t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("blocked wait cycle"));
    }
}
