//! The trace lint engine: rule-based static analysis over decoded
//! traces.
//!
//! The paper's central claim is that a PDT trace is enough to find
//! bugs *after the fact* — misused tag groups, serialization stalls,
//! racy double-buffering — without rerunning the workload. This module
//! is that workflow made mechanical: a registry of [`Lint`] rules runs
//! over an [`AnalyzedTrace`] (pure inspection, no re-execution) and
//! emits structured, event-anchored [`Diagnostic`]s.
//!
//! ## Rules
//!
//! | id | severity | detects |
//! |----|----------|---------|
//! | `dma-race` | error | overlapping DMA accesses (local store or main memory) with no happens-before ordering path, ≥1 write — the [`crate::hb`] vector-clock engine |
//! | `unwaited-tag-group` | error | DMA issued but never covered by a tag wait |
//! | `wait-without-dma` | warn | tag wait naming only tags with zero outstanding transfers |
//! | `unbalanced-intervals` | warn | begin without end / end without begin per core |
//! | `mailbox-deadlock-shape` | error | cyclic blocked-on-mailbox/signal wait chains across SPEs |
//! | `overhead-hotspot` | warn | instrumentation overhead above a threshold fraction of an interval |
//!
//! ## Gap awareness
//!
//! Rules are downgraded, not silenced, by trace damage: a diagnostic
//! whose anchor falls inside a decode-gap [`SuspectRange`], or whose
//! stream lost records, keeps its severity but gains
//! [`Diagnostic::suspect`] — CI gating counts only *firm* diagnostics,
//! so a truncated trace never fails a build over an artifact of the
//! truncation. A [`.talint.toml`](LintConfig::from_toml_str) baseline
//! file can further allow/deny rules and suppress known findings.

mod dma;
mod mailbox;
mod overhead;
mod render;
mod structure;

mod baseline;

use pdt::TraceCore;

use crate::analyze::{AnalyzedTrace, GlobalEvent};
use crate::causality::{sync_edges_columns, CausalEdge};
use crate::columns::{ColumnarTrace, EventView};
use crate::exec::{self, Parallelism};
use crate::index::{compute_suspect_ranges_columns, SuspectRange};
use crate::intervals::SpeIntervals;
use crate::loss::LossReport;

pub use baseline::ConfigError;
#[cfg(feature = "scan-oracle")]
pub use dma::dma_race_window_heuristic;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth a look, not actionable by itself.
    Info,
    /// Suspicious pattern; may be benign.
    Warn,
    /// A defect the trace proves (up to reconstruction fidelity).
    Error,
}

impl Severity {
    /// Stable lowercase label (`"error"`, `"warn"`, `"info"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// A position in the trace a diagnostic points at: the producing core,
/// the event's per-stream sequence number and its reconstructed
/// timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// The core whose stream recorded the event.
    pub core: TraceCore,
    /// The event's sequence number within its stream.
    pub seq: u64,
    /// The reconstructed timebase tick.
    pub time_tb: u64,
}

impl Anchor {
    /// Anchors at `event`.
    pub fn at(event: &GlobalEvent) -> Self {
        Anchor {
            core: event.core,
            seq: event.stream_seq,
            time_tb: event.time_tb,
        }
    }

    /// Anchors at a columnar event view.
    pub fn at_view(view: &EventView<'_>) -> Self {
        Anchor {
            core: view.core,
            seq: view.stream_seq,
            time_tb: view.time_tb,
        }
    }
}

/// One finding: a rule id, a severity, a primary anchor (plus related
/// events) and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The reporting rule's id.
    pub rule: &'static str,
    /// Effective severity (after any `--deny` promotion).
    pub severity: Severity,
    /// True when the finding may be an artifact of trace damage: the
    /// anchor falls in a decode-gap [`SuspectRange`] or the anchored
    /// stream lost records. Suspect diagnostics never gate CI.
    pub suspect: bool,
    /// The primary event the finding points at, when one exists.
    pub anchor: Option<Anchor>,
    /// Secondary events involved (e.g. the other half of a race).
    pub related: Vec<Anchor>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic for `rule` anchored at `event`.
    pub fn new(
        rule: &'static str,
        severity: Severity,
        event: &GlobalEvent,
        message: String,
    ) -> Self {
        Diagnostic {
            rule,
            severity,
            suspect: false,
            anchor: Some(Anchor::at(event)),
            related: Vec::new(),
            message,
        }
    }

    /// Same, without an anchor (trace-level findings).
    pub fn unanchored(rule: &'static str, severity: Severity, message: String) -> Self {
        Diagnostic {
            rule,
            severity,
            suspect: false,
            anchor: None,
            related: Vec::new(),
            message,
        }
    }

    /// Adds a related event.
    pub fn with_related(mut self, event: &GlobalEvent) -> Self {
        self.related.push(Anchor::at(event));
        self
    }

    /// True for a firm (non-suspect) error — the kind that gates CI.
    pub fn is_firm_error(&self) -> bool {
        self.severity == Severity::Error && !self.suspect
    }
}

/// A known finding to drop from the report (the `[[suppress]]` entries
/// of a `.talint.toml`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule id to suppress.
    pub rule: String,
    /// Restrict the suppression to diagnostics anchored on this core
    /// (`None` suppresses the rule everywhere).
    pub core: Option<TraceCore>,
    /// Why the finding is acceptable — required, so baselines stay
    /// reviewable.
    pub reason: String,
}

/// Tunables and baseline state for a lint run.
#[derive(Debug, Clone, PartialEq)]
pub struct LintConfig {
    /// Rule ids to skip entirely.
    pub allow: Vec<String>,
    /// Rule ids whose diagnostics are promoted to [`Severity::Error`].
    pub deny: Vec<String>,
    /// `overhead-hotspot` fires when instrumentation overhead exceeds
    /// this fraction of an interval.
    pub overhead_threshold: f64,
    /// Intervals shorter than this many ticks are ignored by
    /// `overhead-hotspot` (tiny denominators make noisy ratios).
    pub min_overhead_ticks: u64,
    /// Baseline suppressions.
    pub suppress: Vec<Suppression>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            allow: Vec::new(),
            deny: Vec::new(),
            overhead_threshold: 0.25,
            min_overhead_ticks: 256,
            suppress: Vec::new(),
        }
    }
}

impl LintConfig {
    /// Parses a `.talint.toml` baseline file (a small TOML subset; see
    /// the crate docs for the accepted grammar).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the offending line on syntax or
    /// type errors.
    pub fn from_toml_str(text: &str) -> Result<Self, ConfigError> {
        baseline::parse(text)
    }

    fn suppresses(&self, d: &Diagnostic) -> bool {
        self.suppress.iter().any(|s| {
            s.rule == d.rule
                && match (s.core, &d.anchor) {
                    (None, _) => true,
                    (Some(c), Some(a)) => a.core == c,
                    (Some(_), None) => false,
                }
        })
    }
}

/// A lint rule: stable id, default severity, one-paragraph docs, and
/// the check itself. Rules are stateless (`Send + Sync`) so the
/// parallel runner can sweep shards of several rules concurrently.
pub trait Lint: Send + Sync {
    /// Stable kebab-case id (`"dma-race"`).
    fn id(&self) -> &'static str;
    /// Default severity of this rule's diagnostics.
    fn severity(&self) -> Severity;
    /// What the rule detects and why it matters — rendered into SARIF
    /// rule metadata.
    fn docs(&self) -> &'static str;
    /// Runs the rule, returning its diagnostics (unsorted; the runner
    /// orders and post-processes them).
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic>;
    /// How many independent shards [`Lint::check`] decomposes into for
    /// parallel execution. Contract: concatenating the results of
    /// `check_shard(ctx, 0..shards(ctx))` in shard order must equal
    /// `check(ctx)` exactly. Whole-trace rules keep the default of 1.
    fn shards(&self, ctx: &LintContext<'_>) -> usize {
        let _ = ctx;
        1
    }
    /// Runs one shard (see [`Lint::shards`]). Per-SPE rules map a
    /// shard index to one SPE's sweep; the default delegates the only
    /// shard to [`Lint::check`].
    fn check_shard(&self, ctx: &LintContext<'_>, shard: usize) -> Vec<Diagnostic> {
        debug_assert_eq!(shard, 0, "rules with one shard only have shard 0");
        self.check(ctx)
    }
}

impl std::fmt::Debug for dyn Lint + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lint({})", self.id())
    }
}

/// The SPE a shard index denotes: shard `k` is the `k`-th SPE in the
/// trace's stable SPE order, for every per-SPE-sharded rule.
pub(super) fn spe_of_shard(ctx: &LintContext<'_>, shard: usize) -> u8 {
    ctx.trace
        .spes()
        .into_iter()
        .nth(shard)
        .expect("shard index within the trace's SPE count")
}

/// The serial `check` of a sharded rule: concatenate the shards in
/// shard order. The sharding contract makes this the definition of
/// `check`, so serial and parallel runs share one code path.
pub(super) fn check_by_shards(rule: &dyn Lint, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
    (0..rule.shards(ctx))
        .flat_map(|s| rule.check_shard(ctx, s))
        .collect()
}

/// Everything a rule may inspect.
#[derive(Debug)]
pub struct LintContext<'a> {
    /// The reconstructed trace, in columnar form: rules iterate
    /// [`EventView`]s off the shared column slices rather than
    /// row structs.
    pub trace: &'a ColumnarTrace,
    /// Reconstructed per-SPE activity intervals.
    pub intervals: &'a [SpeIntervals],
    /// Ingestion loss accounting (empty when none ran).
    pub loss: &'a LossReport,
    /// Decode-gap time ranges derived from `loss`.
    pub suspects: &'a [SuspectRange],
    /// The trace's full synchronization-edge set (see
    /// [`sync_edges_columns`]) — extracted once per run and shared by
    /// every rule and shard, so neither the happens-before engine nor
    /// the mailbox rules re-derive pairings.
    pub edges: &'a [CausalEdge],
    /// The run's configuration.
    pub config: &'a LintConfig,
}

impl LintContext<'_> {
    /// Whether findings anchored on `core` should be downgraded to
    /// suspect: the core's stream (or, for SPEs, the PPE stream its
    /// reconstruction depends on) lost records, or the tracer dropped
    /// records trace-wide.
    pub fn stream_truncated(&self, core: TraceCore) -> bool {
        if self.trace.dropped > 0 {
            return true;
        }
        match core {
            TraceCore::Spe(s) => self.loss.suspect(s),
            TraceCore::Ppe(_) => self
                .loss
                .streams
                .iter()
                .any(|l| !l.core.is_spe() && !l.is_clean()),
        }
    }

    /// Whether `t` falls inside any decode-gap suspect range.
    pub fn tick_suspect(&self, t: u64) -> bool {
        self.suspects
            .iter()
            .any(|r| r.overlaps(t, t.saturating_add(1)))
    }
}

/// Metadata of a rule that ran (for report renderers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// The rule id.
    pub id: &'static str,
    /// Its default severity.
    pub severity: Severity,
    /// Its documentation string.
    pub docs: &'static str,
}

/// The outcome of a lint run: ordered diagnostics plus the rule set
/// that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// All surviving diagnostics, most severe first, then by anchor
    /// time.
    pub diagnostics: Vec<Diagnostic>,
    /// The rules that ran (allow-listed rules are absent).
    pub rules: Vec<RuleInfo>,
    /// Diagnostics dropped by baseline suppressions.
    pub suppressed: usize,
}

impl LintReport {
    /// Firm (non-suspect) error-severity diagnostics — what a CI gate
    /// should count.
    pub fn firm_errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_firm_error())
    }

    /// True when no firm error survived.
    pub fn is_clean(&self) -> bool {
        self.firm_errors().next().is_none()
    }

    /// Diagnostics of one rule.
    pub fn of_rule<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Plain-text rendering, one line per diagnostic.
    pub fn render_text(&self) -> String {
        render::to_text(self)
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> String {
        render::to_json(self)
    }

    /// SARIF 2.1.0 rendering, for CI code-scanning upload.
    pub fn to_sarif(&self) -> String {
        render::to_sarif(self)
    }
}

/// The built-in rule registry, in documentation order.
pub fn default_rules() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(dma::DmaRace::new()),
        Box::new(dma::UnwaitedTagGroup),
        Box::new(dma::WaitWithoutDma),
        Box::new(structure::UnbalancedIntervals),
        Box::new(mailbox::MailboxDeadlockShape),
        Box::new(overhead::OverheadHotspot),
    ]
}

/// Runs the default rule registry over a reconstructed trace.
///
/// `intervals` must be the trace's reconstructed activity intervals
/// and `loss` its ingestion loss accounting (use
/// [`LossReport::default`] when none ran). Prefer
/// [`Analysis::lint`](crate::Analysis::lint), which wires the session's
/// memoized products in.
pub fn lint_trace(
    trace: &AnalyzedTrace,
    intervals: &[SpeIntervals],
    loss: &LossReport,
    config: &LintConfig,
) -> LintReport {
    lint_columns(
        &ColumnarTrace::from_analyzed(trace),
        intervals,
        loss,
        config,
    )
}

/// [`lint_trace`] over the columnar store — the engine proper. The
/// row entry point converts and delegates here; the session calls this
/// directly so linting shares the columns with every other product.
pub fn lint_columns(
    trace: &ColumnarTrace,
    intervals: &[SpeIntervals],
    loss: &LossReport,
    config: &LintConfig,
) -> LintReport {
    let edges = sync_edges_columns(trace, loss);
    lint_columns_with_edges(trace, intervals, loss, &edges, config)
}

/// [`lint_columns`] with the sync-edge set supplied by the caller —
/// the session path, where [`Analysis`](crate::Analysis) memoizes the
/// extraction once per snapshot instead of once per lint run.
pub fn lint_columns_with_edges(
    trace: &ColumnarTrace,
    intervals: &[SpeIntervals],
    loss: &LossReport,
    edges: &[CausalEdge],
    config: &LintConfig,
) -> LintReport {
    let suspects = compute_suspect_ranges_columns(trace, loss);
    let ctx = LintContext {
        trace,
        intervals,
        loss,
        suspects: &suspects,
        edges,
        config,
    };
    let mut diagnostics = Vec::new();
    let mut rules = Vec::new();
    let mut suppressed = 0usize;
    for rule in default_rules() {
        if config.allow.iter().any(|a| a == rule.id()) {
            continue;
        }
        rules.push(RuleInfo {
            id: rule.id(),
            severity: rule.severity(),
            docs: rule.docs(),
        });
        for mut d in rule.check(&ctx) {
            if config.deny.iter().any(|a| a == d.rule) {
                d.severity = Severity::Error;
            }
            if let Some(a) = &d.anchor {
                d.suspect |= ctx.tick_suspect(a.time_tb) || ctx.stream_truncated(a.core);
            }
            if config.suppresses(&d) {
                suppressed += 1;
                continue;
            }
            diagnostics.push(d);
        }
    }
    diagnostics.sort_by_key(|d| {
        (
            std::cmp::Reverse(d.severity),
            d.anchor.map(|a| (a.time_tb, a.core.tag(), a.seq)),
            d.rule,
        )
    });
    LintReport {
        diagnostics,
        rules,
        suppressed,
    }
}

/// [`lint_columns`] with shard-parallel rule sweeps: every
/// `(rule, shard)` pair — per-SPE sweeps for the DMA and structure
/// rules, per-lane for `overhead-hotspot`, whole-trace for
/// `mailbox-deadlock-shape` — becomes one task on the shared
/// work-stealing pool. Shard results are assembled in `(rule, shard)`
/// order, which is exactly the serial runner's push order, then
/// post-processed (deny promotion, suspect downgrade, suppression)
/// and sorted identically, so the report is byte-identical to
/// [`lint_columns`] under every [`Parallelism`].
pub fn lint_columns_sharded(
    trace: &ColumnarTrace,
    intervals: &[SpeIntervals],
    loss: &LossReport,
    config: &LintConfig,
    par: Parallelism,
) -> LintReport {
    let edges = sync_edges_columns(trace, loss);
    lint_columns_sharded_with_edges(trace, intervals, loss, &edges, config, par)
}

/// [`lint_columns_sharded`] with a caller-supplied sync-edge set (the
/// memoized session path).
pub fn lint_columns_sharded_with_edges(
    trace: &ColumnarTrace,
    intervals: &[SpeIntervals],
    loss: &LossReport,
    edges: &[CausalEdge],
    config: &LintConfig,
    par: Parallelism,
) -> LintReport {
    let suspects = compute_suspect_ranges_columns(trace, loss);
    let ctx = LintContext {
        trace,
        intervals,
        loss,
        suspects: &suspects,
        edges,
        config,
    };
    let rules: Vec<Box<dyn Lint>> = default_rules()
        .into_iter()
        .filter(|r| !config.allow.iter().any(|a| a == r.id()))
        .collect();
    let pairs: Vec<(usize, usize)> = rules
        .iter()
        .enumerate()
        .flat_map(|(ri, r)| (0..r.shards(&ctx)).map(move |s| (ri, s)))
        .collect();
    let sweeps = exec::map_indexed(par, pairs.len(), |i| {
        let (ri, shard) = pairs[i];
        rules[ri].check_shard(&ctx, shard)
    });

    let rule_infos = rules
        .iter()
        .map(|r| RuleInfo {
            id: r.id(),
            severity: r.severity(),
            docs: r.docs(),
        })
        .collect();
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for sweep in sweeps {
        for mut d in sweep {
            if config.deny.iter().any(|a| a == d.rule) {
                d.severity = Severity::Error;
            }
            if let Some(a) = &d.anchor {
                d.suspect |= ctx.tick_suspect(a.time_tb) || ctx.stream_truncated(a.core);
            }
            if config.suppresses(&d) {
                suppressed += 1;
                continue;
            }
            diagnostics.push(d);
        }
    }
    diagnostics.sort_by_key(|d| {
        (
            std::cmp::Reverse(d.severity),
            d.anchor.map(|a| (a.time_tb, a.core.tag(), a.seq)),
            d.rule,
        )
    });
    LintReport {
        diagnostics,
        rules: rule_infos,
        suppressed,
    }
}
