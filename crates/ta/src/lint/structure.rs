//! `unbalanced-intervals`: begin/end pairing per core.
//!
//! The analyzer reconstructs activity intervals from begin/end event
//! pairs; a begin without an end (or vice versa) means an interval
//! boundary was never recorded — a crashed kernel, instrumentation
//! placed on one side of a branch only, or plain trace truncation.
//! Truncation is the benign case, so diagnostics on streams that
//! [`LossReport`](crate::loss::LossReport) knows lost records are
//! downgraded to suspect by the runner rather than reported firm.

use pdt::{EventCode, TraceCore};

use crate::columns::EventView;

use super::{check_by_shards, spe_of_shard, Anchor, Diagnostic, Lint, LintContext, Severity};

/// The begin/end families tracked per SPE stream.
const FAMILIES: [(&str, EventCode, EventCode); 3] = [
    (
        "tag-wait",
        EventCode::SpeTagWaitBegin,
        EventCode::SpeTagWaitEnd,
    ),
    (
        "mbox-read",
        EventCode::SpeMboxReadBegin,
        EventCode::SpeMboxReadEnd,
    ),
    (
        "signal-read",
        EventCode::SpeSignalReadBegin,
        EventCode::SpeSignalReadEnd,
    ),
];

pub(super) struct UnbalancedIntervals;

impl Lint for UnbalancedIntervals {
    fn id(&self) -> &'static str {
        "unbalanced-intervals"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn docs(&self) -> &'static str {
        "A begin event has no matching end (or an end no begin) on one core, \
         beyond what trace truncation explains — an interval boundary the \
         instrumentation never recorded."
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        check_by_shards(self, ctx)
    }

    fn shards(&self, ctx: &LintContext<'_>) -> usize {
        ctx.trace.spes().len()
    }

    fn check_shard(&self, ctx: &LintContext<'_>, shard: usize) -> Vec<Diagnostic> {
        let spe = spe_of_shard(ctx, shard);
        let mut out = Vec::new();
        // Only pairing-relevant codes matter below; pre-filter on
        // the code column so dense traces (user-event storms) do
        // not materialize a view per event.
        let cols = &ctx.trace.events;
        let events: Vec<EventView<'_>> = ctx
            .trace
            .core_slice(TraceCore::Spe(spe))
            .iter()
            .filter(|&&o| {
                matches!(
                    cols.codes()[o as usize],
                    EventCode::SpeTagWaitBegin
                        | EventCode::SpeTagWaitEnd
                        | EventCode::SpeMboxReadBegin
                        | EventCode::SpeMboxReadEnd
                        | EventCode::SpeSignalReadBegin
                        | EventCode::SpeSignalReadEnd
                        | EventCode::SpeCtxStart
                        | EventCode::SpeStop
                )
            })
            .map(|&o| cols.view(o as usize))
            .collect();
        for (name, begin, end) in FAMILIES {
            let mut open: Option<Anchor> = None;
            for e in &events {
                if e.code == begin {
                    if let Some(prev) = open {
                        out.push(self.diag(
                            spe,
                            prev,
                            format!(
                                "SPE{spe}: {name} begin at seq {} has no end \
                                 before the next begin",
                                prev.seq
                            ),
                        ));
                    }
                    open = Some(Anchor::at_view(e));
                } else if e.code == end && open.take().is_none() {
                    out.push(self.diag(
                        spe,
                        Anchor::at_view(e),
                        format!("SPE{spe}: {name} end at seq {} has no begin", e.stream_seq),
                    ));
                }
            }
            // An open wait at a *stopped* SPE's end is a real
            // imbalance; on a still-running (blocked) SPE it is the
            // deadlock rule's business, and on a truncated stream
            // the runner downgrades it to suspect anyway.
            let stopped = events.iter().any(|e| e.code == EventCode::SpeStop);
            if let (Some(prev), true) = (open, stopped) {
                out.push(self.diag(
                    spe,
                    prev,
                    format!(
                        "SPE{spe}: {name} begin at seq {} still open at SPE stop",
                        prev.seq
                    ),
                ));
            }
        }
        // Lifecycle pairing: a start without a stop (beyond
        // truncation) or a stop without a start.
        let start = events.iter().find(|e| e.code == EventCode::SpeCtxStart);
        let stop = events.iter().find(|e| e.code == EventCode::SpeStop);
        match (start, stop) {
            (Some(_), Some(_)) | (None, None) => {}
            (Some(s), None) => out.push(self.diag(
                spe,
                Anchor::at_view(s),
                format!("SPE{spe}: context started but never stopped"),
            )),
            (None, Some(s)) => out.push(self.diag(
                spe,
                Anchor::at_view(s),
                format!("SPE{spe}: stop recorded without a context start"),
            )),
        }
        out
    }
}

impl UnbalancedIntervals {
    fn diag(&self, _spe: u8, anchor: Anchor, message: String) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            severity: self.severity(),
            suspect: false,
            anchor: Some(anchor),
            related: Vec::new(),
            message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{AnalyzedTrace, GlobalEvent};
    use pdt::{TraceHeader, VERSION};

    fn ev(t: u64, code: EventCode, params: Vec<u64>, seq: u64) -> GlobalEvent {
        GlobalEvent {
            time_tb: t,
            core: TraceCore::Spe(0),
            code,
            params,
            stream_seq: seq,
        }
    }

    fn trace_of(events: Vec<GlobalEvent>) -> AnalyzedTrace {
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events,
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        }
    }

    fn run(t: &AnalyzedTrace) -> Vec<Diagnostic> {
        let cols = crate::columns::ColumnarTrace::from_analyzed(t);
        let loss = crate::loss::LossReport::default();
        let config = super::super::LintConfig::default();
        let ctx = LintContext {
            trace: &cols,
            intervals: &[],
            loss: &loss,
            suspects: &[],
            edges: &[],
            config: &config,
        };
        UnbalancedIntervals.check(&ctx)
    }

    #[test]
    fn balanced_stream_is_silent() {
        use EventCode::*;
        let t = trace_of(vec![
            ev(0, SpeCtxStart, vec![0], 0),
            ev(10, SpeTagWaitBegin, vec![1, 0], 1),
            ev(20, SpeTagWaitEnd, vec![1], 2),
            ev(30, SpeMboxReadBegin, vec![], 3),
            ev(40, SpeMboxReadEnd, vec![9], 4),
            ev(50, SpeStop, vec![0], 5),
        ]);
        assert!(run(&t).is_empty());
    }

    #[test]
    fn nested_begin_and_orphan_end_are_reported() {
        use EventCode::*;
        let t = trace_of(vec![
            ev(0, SpeCtxStart, vec![0], 0),
            ev(10, SpeTagWaitBegin, vec![1, 0], 1),
            ev(20, SpeTagWaitBegin, vec![2, 0], 2), // begin while open
            ev(30, SpeTagWaitEnd, vec![2], 3),
            ev(40, SpeMboxReadEnd, vec![9], 4), // end without begin
            ev(50, SpeStop, vec![0], 5),
        ]);
        let d = run(&t);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("no end before the next begin"));
        assert_eq!(d[0].anchor.unwrap().seq, 1);
        assert!(d[1].message.contains("has no begin"));
        assert_eq!(d[1].anchor.unwrap().seq, 4);
    }

    #[test]
    fn open_wait_at_stop_is_reported_but_blocked_spe_is_not() {
        use EventCode::*;
        // Open wait then SpeStop: imbalance.
        let t = trace_of(vec![
            ev(0, SpeCtxStart, vec![0], 0),
            ev(10, SpeTagWaitBegin, vec![1, 0], 1),
            ev(20, SpeStop, vec![0], 2),
        ]);
        let d = run(&t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("still open at SPE stop"));
        // Open read with no stop: the SPE is blocked, not unbalanced
        // (mailbox-deadlock-shape territory) — but the missing stop
        // itself is flagged.
        let t = trace_of(vec![
            ev(0, SpeCtxStart, vec![0], 0),
            ev(10, SpeMboxReadBegin, vec![], 1),
        ]);
        let d = run(&t);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("never stopped"));
    }
}
