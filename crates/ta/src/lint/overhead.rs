//! `overhead-hotspot`: instrumentation cost versus interval length.
//!
//! Tracing is not free — the paper prices an SPE event at ~100 ns —
//! and a loop that records events densely enough spends a meaningful
//! fraction of its time in the tracer, skewing exactly the intervals
//! being measured. This rule prices every SPE event with the default
//! [`OverheadModel`], converts cycles to timebase ticks with the
//! trace's own divider, and flags compute intervals whose estimated
//! instrumentation share exceeds the configured threshold.

use pdt::{OverheadModel, TraceCore};

use crate::intervals::ActivityKind;

use super::{check_by_shards, Anchor, Diagnostic, Lint, LintContext, Severity};

pub(super) struct OverheadHotspot;

impl Lint for OverheadHotspot {
    fn id(&self) -> &'static str {
        "overhead-hotspot"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn docs(&self) -> &'static str {
        "Estimated instrumentation overhead (default cost model, priced per \
         recorded event) exceeds the configured fraction of a compute \
         interval — the measurement is perturbing what it measures."
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        check_by_shards(self, ctx)
    }

    fn shards(&self, ctx: &LintContext<'_>) -> usize {
        ctx.intervals.len()
    }

    fn check_shard(&self, ctx: &LintContext<'_>, shard: usize) -> Vec<Diagnostic> {
        let model = OverheadModel::default();
        let divider = ctx.trace.header.timebase_divider.max(1) as f64;
        let mut out = Vec::new();
        {
            let lane = &ctx.intervals[shard];
            let cols = &ctx.trace.events;
            let offs = ctx.trace.core_slice(TraceCore::Spe(lane.spe));
            // Prefix sums of per-event cost in ticks, over the lane's
            // time-sorted events, so each interval resolves with two
            // binary searches. Reads the time and params columns
            // directly — no per-event view materialization.
            let times: Vec<u64> = offs.iter().map(|&o| cols.times()[o as usize]).collect();
            let mut prefix = Vec::with_capacity(offs.len() + 1);
            prefix.push(0f64);
            for &o in offs {
                let cycles = model.spe_cost(cols.params(o as usize).len(), false);
                prefix.push(prefix.last().unwrap() + cycles as f64 / divider);
            }
            for iv in &lane.intervals {
                if iv.kind != ActivityKind::Compute {
                    continue;
                }
                let len = iv.end_tb.saturating_sub(iv.start_tb);
                if len < ctx.config.min_overhead_ticks {
                    continue;
                }
                let lo = times.partition_point(|&t| t < iv.start_tb);
                let hi = times.partition_point(|&t| t < iv.end_tb);
                let overhead_tb = prefix[hi] - prefix[lo];
                let frac = overhead_tb / len as f64;
                if frac > ctx.config.overhead_threshold {
                    let anchor = offs
                        .get(lo)
                        .map(|&o| Anchor::at_view(&cols.view(o as usize)))
                        .unwrap_or(Anchor {
                            core: TraceCore::Spe(lane.spe),
                            seq: 0,
                            time_tb: iv.start_tb,
                        });
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: self.severity(),
                        suspect: false,
                        anchor: Some(anchor),
                        related: Vec::new(),
                        message: format!(
                            "SPE{}: ~{:.0}% of compute interval [{}, {}) is \
                             instrumentation overhead ({} events in {} ticks)",
                            lane.spe,
                            frac * 100.0,
                            iv.start_tb,
                            iv.end_tb,
                            hi - lo,
                            len,
                        ),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{AnalyzedTrace, GlobalEvent};
    use crate::intervals::{Interval, SpeIntervals};
    use pdt::{EventCode, TraceHeader, VERSION};

    fn trace_of(events: Vec<GlobalEvent>) -> AnalyzedTrace {
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events,
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        }
    }

    fn lane(intervals: Vec<Interval>) -> SpeIntervals {
        SpeIntervals {
            spe: 0,
            start_tb: 0,
            stop_tb: 100_000,
            intervals,
        }
    }

    fn run(
        t: &AnalyzedTrace,
        lanes: &[SpeIntervals],
        config: &super::super::LintConfig,
    ) -> Vec<Diagnostic> {
        let cols = crate::columns::ColumnarTrace::from_analyzed(t);
        let loss = crate::loss::LossReport::default();
        let ctx = LintContext {
            trace: &cols,
            intervals: lanes,
            loss: &loss,
            suspects: &[],
            edges: &[],
            config,
        };
        OverheadHotspot.check(&ctx)
    }

    #[test]
    fn dense_user_events_in_a_compute_interval_are_flagged() {
        // 200 SpeUser events (3 params → 186 cycles ≈ 1.55 ticks each)
        // inside a 1000-tick compute interval: ~31% overhead.
        let mut events = Vec::new();
        for k in 0..200u64 {
            events.push(GlobalEvent {
                time_tb: 1000 + k * 5,
                core: TraceCore::Spe(0),
                code: EventCode::SpeUser,
                params: vec![1, k, 0],
                stream_seq: k,
            });
        }
        let t = trace_of(events);
        let lanes = [lane(vec![Interval {
            start_tb: 1000,
            end_tb: 2000,
            kind: ActivityKind::Compute,
        }])];
        let config = super::super::LintConfig::default();
        let d = run(&t, &lanes, &config);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("instrumentation overhead"));
        assert_eq!(d[0].anchor.unwrap().time_tb, 1000);
    }

    #[test]
    fn sparse_events_and_short_intervals_stay_quiet() {
        let events = vec![GlobalEvent {
            time_tb: 1500,
            core: TraceCore::Spe(0),
            code: EventCode::SpeUser,
            params: vec![1, 0, 0],
            stream_seq: 0,
        }];
        let t = trace_of(events);
        let config = super::super::LintConfig::default();
        // One event in 1000 ticks: ~0.2%.
        let lanes = [lane(vec![Interval {
            start_tb: 1000,
            end_tb: 2000,
            kind: ActivityKind::Compute,
        }])];
        assert!(run(&t, &lanes, &config).is_empty());
        // A 10-tick interval is below min_overhead_ticks even though
        // the ratio would be huge.
        let lanes = [lane(vec![Interval {
            start_tb: 1498,
            end_tb: 1508,
            kind: ActivityKind::Compute,
        }])];
        assert!(run(&t, &lanes, &config).is_empty());
        // Wait intervals are never priced.
        let lanes = [lane(vec![Interval {
            start_tb: 1000,
            end_tb: 2000,
            kind: ActivityKind::DmaWait,
        }])];
        assert!(run(&t, &lanes, &config).is_empty());
    }
}
