//! Text, JSON and SARIF renderings of a [`LintReport`].
//!
//! Both machine formats are emitted by hand (the workspace vendors no
//! JSON library): strings go through a strict escaper, numbers are
//! emitted as decimal, and the SARIF output follows the minimal 2.1.0
//! shape code-scanning services ingest — `tool.driver.rules` carrying
//! the rule metadata, one `result` per diagnostic, anchors expressed
//! as logical locations (a trace has no files to point at). A
//! diagnostic's witness anchors — e.g. the *other* access of a DMA
//! race — are emitted as `relatedLocations` so viewers link both
//! endpoints of the pair.

use super::{Anchor, Diagnostic, LintReport, Severity};

/// Escapes `s` into a JSON string literal (without the quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn anchor_json(a: &Anchor) -> String {
    format!(
        "{{\"core\":\"{}\",\"seq\":{},\"time_tb\":{}}}",
        esc(&a.core.to_string()),
        a.seq,
        a.time_tb
    )
}

pub(super) fn to_text(r: &LintReport) -> String {
    let mut out = String::new();
    for d in &r.diagnostics {
        let suspect = if d.suspect {
            " (suspect: trace damage)"
        } else {
            ""
        };
        let at = match &d.anchor {
            Some(a) => format!(" [{} seq {} @{}]", a.core, a.seq, a.time_tb),
            None => String::new(),
        };
        out.push_str(&format!(
            "{}[{}]{}: {}{}\n",
            d.severity.label(),
            d.rule,
            at,
            d.message,
            suspect
        ));
    }
    let firm = r.firm_errors().count();
    out.push_str(&format!(
        "{} diagnostic(s), {} firm error(s), {} suppressed\n",
        r.diagnostics.len(),
        firm,
        r.suppressed
    ));
    out
}

pub(super) fn to_json(r: &LintReport) -> String {
    let diags: Vec<String> = r
        .diagnostics
        .iter()
        .map(|d: &Diagnostic| {
            let anchor = d
                .anchor
                .as_ref()
                .map(anchor_json)
                .unwrap_or_else(|| "null".into());
            let related: Vec<String> = d.related.iter().map(anchor_json).collect();
            format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"suspect\":{},\"anchor\":{},\
                 \"related\":[{}],\"message\":\"{}\"}}",
                esc(d.rule),
                d.severity.label(),
                d.suspect,
                anchor,
                related.join(","),
                esc(&d.message)
            )
        })
        .collect();
    format!(
        "{{\"version\":1,\"firm_errors\":{},\"suppressed\":{},\"diagnostics\":[{}]}}\n",
        r.firm_errors().count(),
        r.suppressed,
        diags.join(",")
    )
}

fn sarif_level(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warn => "warning",
        Severity::Info => "note",
    }
}

pub(super) fn to_sarif(r: &LintReport) -> String {
    let rules: Vec<String> = r
        .rules
        .iter()
        .map(|ri| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
                 \"defaultConfiguration\":{{\"level\":\"{}\"}}}}",
                esc(ri.id),
                esc(ri.docs),
                sarif_level(ri.severity)
            )
        })
        .collect();
    let results: Vec<String> = r
        .diagnostics
        .iter()
        .map(|d| {
            let loc = |a: &Anchor| {
                format!(
                    "{{\"logicalLocations\":[{{\"name\":\"{}\"}}],\
                     \"properties\":{{\"seq\":{},\"time_tb\":{}}}}}",
                    esc(&a.core.to_string()),
                    a.seq,
                    a.time_tb
                )
            };
            let locations = d.anchor.iter().map(loc).collect::<Vec<_>>();
            let related = d.related.iter().map(loc).collect::<Vec<_>>();
            let related_field = if related.is_empty() {
                String::new()
            } else {
                format!(",\"relatedLocations\":[{}]", related.join(","))
            };
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{}]{}\
                 ,\"properties\":{{\"suspect\":{}}}}}",
                esc(d.rule),
                sarif_level(d.severity),
                esc(&d.message),
                locations.join(","),
                related_field,
                d.suspect
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"talint\",\
         \"informationUri\":\"https://example.invalid/talint\",\"rules\":[{}]}}}},\
         \"results\":[{}]}}]}}\n",
        rules.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::RuleInfo;
    use pdt::TraceCore;

    fn report() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "dma-race",
                    severity: Severity::Error,
                    suspect: false,
                    anchor: Some(Anchor {
                        core: TraceCore::Spe(0),
                        seq: 7,
                        time_tb: 1234,
                    }),
                    related: vec![Anchor {
                        core: TraceCore::Spe(0),
                        seq: 5,
                        time_tb: 1200,
                    }],
                    message: "a \"quoted\" race\nsecond line".into(),
                },
                Diagnostic {
                    rule: "wait-without-dma",
                    severity: Severity::Warn,
                    suspect: true,
                    anchor: None,
                    related: vec![],
                    message: "vacuous".into(),
                },
            ],
            rules: vec![RuleInfo {
                id: "dma-race",
                severity: Severity::Error,
                docs: "races",
            }],
            suppressed: 1,
        }
    }

    #[test]
    fn text_lists_every_diagnostic_and_totals() {
        let t = to_text(&report());
        assert!(t.contains("error[dma-race] [SPE0 seq 7 @1234]"));
        assert!(t.contains("(suspect: trace damage)"));
        assert!(t.contains("2 diagnostic(s), 1 firm error(s), 1 suppressed"));
    }

    #[test]
    fn json_escapes_and_anchors() {
        let j = to_json(&report());
        assert!(j.contains("\\\"quoted\\\" race\\nsecond line"));
        assert!(j.contains("\"anchor\":{\"core\":\"SPE0\",\"seq\":7,\"time_tb\":1234}"));
        assert!(j.contains("\"anchor\":null"));
        assert!(j.contains("\"firm_errors\":1"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sarif_has_rules_and_results() {
        let s = to_sarif(&report());
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"talint\""));
        assert!(s.contains("\"ruleId\":\"dma-race\""));
        assert!(s.contains("\"level\":\"warning\""));
        assert!(s.contains("\"suspect\":true"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn sarif_related_anchors_become_related_locations() {
        let s = to_sarif(&report());
        // The race's witness partner (seq 5) lives in relatedLocations,
        // not in the result's primary locations array.
        assert!(s.contains(
            "\"relatedLocations\":[{\"logicalLocations\":[{\"name\":\"SPE0\"}],\
             \"properties\":{\"seq\":5,\"time_tb\":1200}}]"
        ));
        assert!(s.contains(
            "\"locations\":[{\"logicalLocations\":[{\"name\":\"SPE0\"}],\
             \"properties\":{\"seq\":7,\"time_tb\":1234}}]"
        ));
        // A diagnostic without witnesses omits the field entirely.
        assert_eq!(s.matches("relatedLocations").count(), 1);
    }
}
