//! Before/after trace comparison.
//!
//! The Trace Analyzer's workflow is iterative: trace, fix, trace again,
//! compare. [`compare_traces`] lines up two traces of the same
//! application and reports what changed — runtime, per-SPE activity
//! breakdowns, DMA behaviour and event demography — which is how the
//! paper's use cases present their fixes.

use crate::analyze::AnalyzedTrace;
use crate::stats::{compute_stats, TraceStats};

/// Per-SPE before/after deltas (milliseconds unless noted).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeDelta {
    /// The SPE.
    pub spe: u8,
    /// Active time, before.
    pub before_active_ms: f64,
    /// Active time, after.
    pub after_active_ms: f64,
    /// DMA-wait fraction, before (0..=1).
    pub before_dma_frac: f64,
    /// DMA-wait fraction, after.
    pub after_dma_frac: f64,
    /// Utilization, before.
    pub before_util: f64,
    /// Utilization, after.
    pub after_util: f64,
}

/// The comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Whole-trace span before, ms.
    pub before_ms: f64,
    /// Whole-trace span after, ms.
    pub after_ms: f64,
    /// `before / after`.
    pub speedup: f64,
    /// Imbalance before.
    pub before_imbalance: f64,
    /// Imbalance after.
    pub after_imbalance: f64,
    /// SPEs present in both traces.
    pub spes: Vec<SpeDelta>,
    /// Total events before/after.
    pub events: (u64, u64),
    /// DMA bytes before/after.
    pub dma_bytes: (u64, u64),
}

impl Comparison {
    /// Renders a comparison table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "runtime: {:.3} ms -> {:.3} ms ({:.2}x)\n\
             imbalance: {:.2} -> {:.2}\n\
             events: {} -> {}, DMA bytes: {} -> {}\n\n",
            self.before_ms,
            self.after_ms,
            self.speedup,
            self.before_imbalance,
            self.after_imbalance,
            self.events.0,
            self.events.1,
            self.dma_bytes.0,
            self.dma_bytes.1
        );
        out.push_str(&format!(
            "{:<5} {:>12} {:>12} {:>10} {:>10} {:>8} {:>8}\n",
            "spe", "active(ms)", "active'(ms)", "dma%", "dma%'", "util", "util'"
        ));
        for d in &self.spes {
            out.push_str(&format!(
                "SPE{:<2} {:>12.3} {:>12.3} {:>9.1}% {:>9.1}% {:>7.1}% {:>7.1}%\n",
                d.spe,
                d.before_active_ms,
                d.after_active_ms,
                d.before_dma_frac * 100.0,
                d.after_dma_frac * 100.0,
                d.before_util * 100.0,
                d.after_util * 100.0
            ));
        }
        out
    }
}

fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Compares two analyzed traces of the same application.
pub fn compare_traces(before: &AnalyzedTrace, after: &AnalyzedTrace) -> Comparison {
    let sb = compute_stats(before);
    let sa = compute_stats(after);
    compare_stats(before, &sb, after, &sa)
}

/// Compares from precomputed statistics.
pub fn compare_stats(
    before: &AnalyzedTrace,
    sb: &TraceStats,
    after: &AnalyzedTrace,
    sa: &TraceStats,
) -> Comparison {
    let before_ms = before.tb_to_ns(sb.duration_tb) / 1e6;
    let after_ms = after.tb_to_ns(sa.duration_tb) / 1e6;
    let mut spes = Vec::new();
    for b in &sb.spes {
        if let Some(a) = sa.spe(b.spe) {
            spes.push(SpeDelta {
                spe: b.spe,
                before_active_ms: before.tb_to_ns(b.active_tb) / 1e6,
                after_active_ms: after.tb_to_ns(a.active_tb) / 1e6,
                before_dma_frac: frac(b.dma_wait_tb, b.active_tb),
                after_dma_frac: frac(a.dma_wait_tb, a.active_tb),
                before_util: b.utilization,
                after_util: a.utilization,
            });
        }
    }
    Comparison {
        before_ms,
        after_ms,
        speedup: if after_ms > 0.0 {
            before_ms / after_ms
        } else {
            0.0
        },
        before_imbalance: sb.imbalance(),
        after_imbalance: sa.imbalance(),
        spes,
        events: (sb.counts.total(), sa.counts.total()),
        dma_bytes: (sb.dma.bytes, sa.dma.bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::GlobalEvent;
    use pdt::{EventCode, TraceCore, TraceHeader, VERSION};

    fn trace(active: u64, dma_wait: u64) -> AnalyzedTrace {
        use EventCode::*;
        let mk = |t: u64, code, params: Vec<u64>| GlobalEvent {
            time_tb: t,
            core: TraceCore::Spe(0),
            code,
            params,
            stream_seq: t,
        };
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events: vec![
                mk(0, SpeCtxStart, vec![0]),
                mk(5, SpeDmaGet, vec![0, 0, 4096, 1]),
                mk(10, SpeTagWaitBegin, vec![2, 0]),
                mk(10 + dma_wait, SpeTagWaitEnd, vec![2]),
                mk(active, SpeStop, vec![0]),
            ],
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        }
    }

    #[test]
    fn comparison_measures_improvement() {
        let before = trace(1000, 600);
        let after = trace(500, 100);
        let c = compare_traces(&before, &after);
        assert!((c.speedup - 2.0).abs() < 1e-9);
        assert_eq!(c.spes.len(), 1);
        let d = &c.spes[0];
        assert!((d.before_dma_frac - 0.6).abs() < 1e-9);
        assert!((d.after_dma_frac - 0.2).abs() < 1e-9);
        assert!(d.after_util > d.before_util);
        let txt = c.render();
        assert!(txt.contains("2.00x"));
        assert!(txt.contains("SPE0"));
    }

    #[test]
    fn disjoint_spes_are_skipped() {
        let mut after = trace(500, 100);
        for e in &mut after.events {
            e.core = TraceCore::Spe(3);
        }
        let c = compare_traces(&trace(1000, 600), &after);
        assert!(c.spes.is_empty());
        assert_eq!(c.events, (5, 5));
    }
}
