//! The analysis session: one ingestion, every product.
//!
//! [`Analysis`] is the analyzer's front door. It owns a reconstructed
//! trace and memoizes every derived product — intervals, statistics,
//! timeline, DMA occupancy, user phases — so each is computed at most
//! once per session no matter how many views ask for it. Ingestion
//! runs through the parallel engine
//! ([`analyze_parallel`](crate::parallel::analyze_parallel)), which
//! produces output identical to the serial path.
//!
//! ```
//! use cellsim::{Machine, MachineConfig, PpeThreadId, SpmdDriver, SpeJob, SpuScript, SpuAction};
//! use pdt::{TraceSession, TracingConfig};
//! use ta::Analysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::default().with_num_spes(2))?;
//! let session = TraceSession::install(TracingConfig::default(), &mut machine)?;
//! machine.set_ppe_program(
//!     PpeThreadId::new(0),
//!     Box::new(SpmdDriver::new(vec![
//!         SpeJob::new("a", Box::new(SpuScript::new(vec![SpuAction::Compute(50_000)]))),
//!         SpeJob::new("b", Box::new(SpuScript::new(vec![SpuAction::Compute(80_000)]))),
//!     ])),
//! );
//! machine.run()?;
//! let trace = session.collect(&machine);
//!
//! let analysis = Analysis::of(&trace).parallelism(ta::Parallelism::Workers(4)).run()?;
//! assert_eq!(analysis.stats().spes.len(), 2);
//! assert!(analysis.svg(&ta::SvgOptions::default()).contains("</svg>"));
//! # Ok(())
//! # }
//! ```

use std::sync::{Arc, OnceLock};

use pdt::TraceFile;

use crate::analyze::{AnalyzeError, AnalyzedTrace, GlobalEvent};
use crate::causality::{sync_edges_columns, CausalEdge};
use crate::columns::ColumnarTrace;
use crate::exec::{self, Parallelism, Scope};
use crate::index::{TraceIndex, WindowSummary};
use crate::intervals::{build_intervals_columns, build_spe_intervals_columns, SpeIntervals};
use crate::lint::{
    lint_columns_sharded_with_edges, lint_columns_with_edges, LintConfig, LintReport,
};
use crate::loss::{DecodePolicy, LossReport};
use crate::occupancy::{dma_occupancy_columns, dma_occupancy_columns_par, SpeOccupancy};
use crate::parallel::{analyze_parallel, analyze_parallel_lossy};
use crate::phases::{user_phases_columns, PhaseReport};
use crate::query::EventFilter;
use crate::report::{RenderOptions, ReportKind};
use crate::stats::{compute_stats_columns, compute_stats_columns_par, TraceStats};
use crate::stats::{observe_dma_over, DmaSummary};
use crate::summary::render_summary_with;
use crate::svg::SvgOptions;
use crate::timeline::{build_timeline_columns, build_timeline_where, Timeline};

use pdt::TraceCore;

/// Configures and launches an [`Analysis`]; created by
/// [`Analysis::of`].
#[derive(Debug)]
pub struct AnalysisBuilder<'t> {
    trace: &'t TraceFile,
    par: Parallelism,
    filter: Option<EventFilter>,
    policy: DecodePolicy,
}

impl AnalysisBuilder<'_> {
    /// Sets the session's concurrency — the single knob covering both
    /// ingestion fan-out and the product scheduler. Defaults to
    /// [`Parallelism::Auto`] (the machine's available parallelism).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Restricts the session to events passing `filter`. Applied after
    /// timestamp reconstruction, before any product is derived, so
    /// every accessor sees the filtered view.
    pub fn filter(mut self, filter: EventFilter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Aborts the analysis on the first malformed record instead of
    /// resynchronizing past it (the pre-loss-accounting behavior).
    pub fn strict(mut self) -> Self {
        self.policy = DecodePolicy::Strict;
        self
    }

    /// Resynchronizes past corrupt records and quantifies what was
    /// skipped in the session's [`LossReport`]. This is the default.
    pub fn lossy(mut self) -> Self {
        self.policy = DecodePolicy::Lossy;
        self
    }

    /// Ingests the trace and returns the session.
    ///
    /// # Errors
    ///
    /// Under the default [lossy](Self::lossy) policy this never fails:
    /// corruption becomes decode gaps in the session's [`LossReport`].
    /// Under [`strict`](Self::strict) it returns [`AnalyzeError`] on
    /// corrupt records or missing sync anchors — the same errors, in
    /// the same precedence, as the serial
    /// [`analyze`](crate::analyze::analyze).
    pub fn run(self) -> Result<Analysis, AnalyzeError> {
        let threads = self.par.workers();
        let (mut analyzed, loss) = match self.policy {
            DecodePolicy::Strict => (
                analyze_parallel(self.trace, threads)?,
                LossReport::default(),
            ),
            DecodePolicy::Lossy => analyze_parallel_lossy(self.trace, threads),
        };
        if let Some(f) = &self.filter {
            analyzed.events.retain(|e| f.matches(e));
        }
        let mut a = Analysis::from_analyzed(analyzed);
        a.loss = loss;
        a.par = self.par;
        Ok(a)
    }
}

/// An analysis session over one trace: parallel ingestion up front,
/// memoized products on demand.
///
/// Internally the session is columnar: the ingested rows are
/// transposed once into a [`ColumnarTrace`] (struct-of-arrays event
/// columns plus a string interner for context names), every derived
/// product iterates those shared columns, and the row-oriented
/// [`AnalyzedTrace`] is materialized lazily only when an accessor
/// actually needs `&[GlobalEvent]` — so row-free workloads never pay
/// for per-event `Vec` allocations.
///
/// The columns sit behind an [`Arc`] so a streaming
/// [`IngestSession`](crate::stream::IngestSession) can hand out
/// `Analysis` snapshots that share the committed store with the
/// ingestion side instead of copying it per epoch.
#[derive(Debug)]
pub struct Analysis {
    columns: Arc<ColumnarTrace>,
    rows: OnceLock<AnalyzedTrace>,
    loss: LossReport,
    par: Parallelism,
    intervals: OnceLock<Vec<SpeIntervals>>,
    stats: OnceLock<TraceStats>,
    timeline: OnceLock<Timeline>,
    occupancy: OnceLock<Vec<SpeOccupancy>>,
    phases: OnceLock<PhaseReport>,
    index: OnceLock<TraceIndex>,
    sync_edges: OnceLock<Vec<CausalEdge>>,
    lint: OnceLock<LintReport>,
}

impl Analysis {
    /// Starts building an analysis of `trace`.
    pub fn of(trace: &TraceFile) -> AnalysisBuilder<'_> {
        AnalysisBuilder {
            trace,
            par: Parallelism::Auto,
            filter: None,
            policy: DecodePolicy::default(),
        }
    }

    /// Wraps an already-reconstructed trace in a session, so code
    /// holding an [`AnalyzedTrace`] (e.g. from the serial path) gets
    /// the memoized accessors too.
    pub fn from_analyzed(analyzed: AnalyzedTrace) -> Self {
        Self::from_columns(ColumnarTrace::from_rows(analyzed))
    }

    /// Wraps an already-built columnar store in a session — the
    /// zero-copy entry point for code that interns its own columns.
    pub fn from_columns(columns: ColumnarTrace) -> Self {
        Self::from_shared(
            Arc::new(columns),
            LossReport::default(),
            Parallelism::Serial,
        )
    }

    /// Wraps a shared columnar store: the snapshot entry point used by
    /// [`IngestSession`](crate::stream::IngestSession), which keeps the
    /// committed store alive on its side of the `Arc`.
    pub(crate) fn from_shared(
        columns: Arc<ColumnarTrace>,
        loss: LossReport,
        par: Parallelism,
    ) -> Self {
        Self {
            columns,
            rows: OnceLock::new(),
            loss,
            par,
            intervals: OnceLock::new(),
            stats: OnceLock::new(),
            timeline: OnceLock::new(),
            occupancy: OnceLock::new(),
            phases: OnceLock::new(),
            index: OnceLock::new(),
            sync_edges: OnceLock::new(),
            lint: OnceLock::new(),
        }
    }

    /// Seeds the memoized intervals (snapshot reuse across epochs when
    /// an SPE's events did not change). A no-op if already built.
    pub(crate) fn preset_intervals(&self, intervals: Vec<SpeIntervals>) {
        let _ = self.intervals.set(intervals);
    }

    /// Seeds the memoized query index (snapshot reuse of the
    /// incrementally maintained index). A no-op if already built.
    pub(crate) fn preset_index(&self, index: TraceIndex) {
        let _ = self.index.set(index);
    }

    /// The reconstructed trace as rows. Materialized from the columns
    /// on first call and memoized; products never depend on it.
    pub fn analyzed(&self) -> &AnalyzedTrace {
        self.rows.get_or_init(|| self.columns.materialize())
    }

    /// The columnar event store every product is derived from.
    pub fn columns(&self) -> &ColumnarTrace {
        &self.columns
    }

    /// Loss accounting from ingestion. Populated by the (default)
    /// lossy decode policy; empty under [`strict`](AnalysisBuilder::strict)
    /// or when the session was built from an [`AnalyzedTrace`].
    pub fn loss(&self) -> &LossReport {
        &self.loss
    }

    /// The globally ordered event list, materialized from the columns
    /// on first call (see [`analyzed`](Self::analyzed)).
    pub fn events(&self) -> &[GlobalEvent] {
        &self.analyzed().events
    }

    /// Per-SPE activity intervals (computed once, shared by
    /// [`stats`](Self::stats) and [`timeline`](Self::timeline)).
    pub fn intervals(&self) -> &[SpeIntervals] {
        self.intervals
            .get_or_init(|| build_intervals_columns(&self.columns))
    }

    /// Per-SPE utilization, DMA traffic and event-count statistics.
    pub fn stats(&self) -> &TraceStats {
        self.stats
            .get_or_init(|| compute_stats_columns(&self.columns, self.intervals()))
    }

    /// The Gantt timeline model.
    pub fn timeline(&self) -> &Timeline {
        self.timeline
            .get_or_init(|| build_timeline_columns(&self.columns, self.intervals()))
    }

    /// Outstanding-DMA occupancy per SPE.
    pub fn occupancy(&self) -> &[SpeOccupancy] {
        self.occupancy
            .get_or_init(|| dma_occupancy_columns(&self.columns))
    }

    /// User-marked phase report.
    pub fn phases(&self) -> &PhaseReport {
        self.phases
            .get_or_init(|| user_phases_columns(&self.columns))
    }

    /// Builds every memoized product through the shared work-stealing
    /// pool ([`crate::exec`]) at the given [`Parallelism`], then
    /// returns the session for chaining.
    ///
    /// The work is decomposed into fine-grained shard tasks — one
    /// interval build per SPE, one DMA-occupancy lane per SPE, one
    /// lint sweep per `(rule, shard)` pair, the index's chunked scans —
    /// with a dependency layer on top: products that only need the
    /// columns (phases, occupancy) start immediately, while the
    /// interval shards count down a shared latch and the *last* shard
    /// to finish assembles the lanes and releases the
    /// interval-dependent products (stats, timeline, lint, index) into
    /// the same pool scope. Every product is byte-identical to a
    /// serial build; calling any accessor afterwards returns the
    /// already-built value.
    pub fn build_products(&self, par: Parallelism) -> &Self {
        if par.workers() <= 1 {
            // The serial warm-up, in plain accessor order.
            let _ = self.intervals();
            let _ = self.index();
            let _ = self.lint();
            let _ = self.stats();
            let _ = self.timeline();
            let _ = self.occupancy();
            let _ = self.phases();
            return self;
        }
        exec::pool().scope(par, |s: &Scope<'_>| {
            // Column-only products: no dependencies, start at once.
            s.spawn(|_| {
                let _ = self.phases();
            });
            s.spawn(move |_| {
                let _ = self
                    .occupancy
                    .get_or_init(|| dma_occupancy_columns_par(&self.columns, par));
            });
            if self.intervals.get().is_some() {
                // Seeded by a streaming snapshot — nothing gates the
                // dependents.
                self.spawn_interval_dependents(s, par);
                return;
            }
            // Per-SPE interval shards; the countdown's final holder
            // assembles the lanes in SPE order and releases the
            // products that consume them.
            let spes = self.columns.spes();
            if spes.is_empty() {
                let _ = self.intervals.set(Vec::new());
                self.spawn_interval_dependents(s, par);
                return;
            }
            let slots: Arc<Vec<std::sync::Mutex<Option<SpeIntervals>>>> =
                Arc::new(spes.iter().map(|_| std::sync::Mutex::new(None)).collect());
            let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(spes.len()));
            for (i, spe) in spes.into_iter().enumerate() {
                let slots = Arc::clone(&slots);
                let remaining = Arc::clone(&remaining);
                s.spawn(move |s| {
                    let lane = build_spe_intervals_columns(&self.columns, spe);
                    if let Some(lane) = lane {
                        *slots[i].lock().unwrap() = Some(lane);
                    }
                    if remaining.fetch_sub(1, std::sync::atomic::Ordering::AcqRel) == 1 {
                        let intervals: Vec<SpeIntervals> = slots
                            .iter()
                            .filter_map(|c| c.lock().unwrap().take())
                            .collect();
                        let _ = self.intervals.set(intervals);
                        self.spawn_interval_dependents(s, par);
                    }
                });
            }
        });
        self
    }

    /// Spawns the interval-consuming products into `s` — the release
    /// edge of the dependency layer. `self.intervals` must be set.
    fn spawn_interval_dependents<'s>(&'s self, s: &Scope<'s>, par: Parallelism) {
        s.spawn(move |_| {
            let _ = self
                .stats
                .get_or_init(|| compute_stats_columns_par(&self.columns, self.intervals(), par));
        });
        s.spawn(|_| {
            let _ = self.timeline();
        });
        s.spawn(move |_| {
            let _ = self.lint.get_or_init(|| {
                lint_columns_sharded_with_edges(
                    &self.columns,
                    self.intervals(),
                    &self.loss,
                    self.sync_edges(),
                    &LintConfig::default(),
                    par,
                )
            });
        });
        s.spawn(move |_| {
            let _ = self.index.get_or_init(|| {
                TraceIndex::build_columns(
                    &self.columns,
                    self.intervals(),
                    &self.loss,
                    par.workers(),
                )
            });
        });
    }

    /// The query index: per-core binary-searchable event offsets, an
    /// interval tree per SPE and the zoom pyramid of pre-aggregated
    /// buckets. Built once (in parallel, with the session's
    /// [`Parallelism`]) and memoized like the other products.
    pub fn index(&self) -> &TraceIndex {
        self.index.get_or_init(|| {
            TraceIndex::build_columns(
                &self.columns,
                self.intervals(),
                &self.loss,
                self.par.workers(),
            )
        })
    }

    /// The trace's full synchronization-edge set (context starts,
    /// mailbox FIFO pairs, signal-notify pairs) — see
    /// [`sync_edges_columns`]. Extracted once per snapshot and shared
    /// by every lint run, so re-linting (or linting after streaming
    /// appends) never re-derives the pairings.
    pub fn sync_edges(&self) -> &[CausalEdge] {
        self.sync_edges
            .get_or_init(|| sync_edges_columns(&self.columns, &self.loss))
    }

    /// Runs the default lint rule registry with the default
    /// [`LintConfig`], memoized like the other products. The rules see
    /// the session's memoized intervals, its memoized
    /// [sync edges](Self::sync_edges) and its ingestion
    /// [`LossReport`], so diagnostics anchored in damaged regions are
    /// downgraded to suspect rather than reported firm.
    pub fn lint(&self) -> &LintReport {
        self.lint.get_or_init(|| {
            lint_columns_with_edges(
                &self.columns,
                self.intervals(),
                &self.loss,
                self.sync_edges(),
                &LintConfig::default(),
            )
        })
    }

    /// Runs the lint rules with a caller-provided configuration
    /// (baseline suppressions, allow/deny lists, thresholds). Not
    /// memoized — each call re-runs the rules with `config` (the
    /// sync-edge extraction is still shared via [`Self::sync_edges`]).
    pub fn lint_with(&self, config: &LintConfig) -> LintReport {
        lint_columns_with_edges(
            &self.columns,
            self.intervals(),
            &self.loss,
            self.sync_edges(),
            config,
        )
    }

    /// Applies `filter` through the [index](Self::index): window
    /// bounds resolve by binary search and core restrictions walk only
    /// the named cores' offset lists. Result order and content are
    /// identical to a linear scan.
    pub fn query(&self, filter: &EventFilter) -> Vec<&GlobalEvent> {
        self.index().query(self.analyzed(), filter)
    }

    /// Exact aggregate of the half-open window `[start_tb, end_tb)`:
    /// per-core event counts, per-SPE activity occupancy and the
    /// gap-suspicion flag, resolved from ~O(levels) pyramid bucket
    /// reads plus two exact edge buckets.
    pub fn summarize(&self, start_tb: u64, end_tb: u64) -> WindowSummary {
        self.index().summarize(self.analyzed(), start_tb, end_tb)
    }

    /// Every SPE's activity intervals clipped to `[start_tb, end_tb)`
    /// via the interval tree — identical to
    /// [`SpeIntervals::clip`] on the full sets.
    pub fn intervals_window(&self, start_tb: u64, end_tb: u64) -> Vec<SpeIntervals> {
        self.index().clip_all(start_tb, end_tb)
    }

    /// The timeline model restricted to `[start_tb, end_tb)`: the same
    /// lane set as [`timeline`](Self::timeline), with segments clipped
    /// by the interval tree and markers extracted by binary search.
    pub fn timeline_window(&self, start_tb: u64, end_tb: u64) -> Timeline {
        build_timeline_where(self.analyzed(), self.index(), start_tb, end_tb)
    }

    /// Outstanding-DMA occupancy restricted to `[start_tb, end_tb)`,
    /// derived from the memoized full series by binary search with a
    /// carry-in step at the window start.
    pub fn occupancy_window(&self, start_tb: u64, end_tb: u64) -> Vec<SpeOccupancy> {
        self.occupancy()
            .iter()
            .map(|o| o.window(start_tb, end_tb))
            .collect()
    }

    /// DMA traffic observed within `[start_tb, end_tb)`: commands
    /// issued in the window, completions only when the covering tag
    /// wait also falls inside it. Events are extracted through the
    /// index.
    pub fn dma_window(&self, start_tb: u64, end_tb: u64) -> DmaSummary {
        let idx = self.index();
        let rows = self.analyzed();
        observe_dma_over(rows.spes(), |spe| {
            idx.core_events_in(&rows.events, TraceCore::Spe(spe), start_tb, end_tb)
        })
    }

    /// Renders the session through the unified [`Report`] interface —
    /// the front door to all four exporters.
    ///
    /// [`Report`]: crate::report::Report
    pub fn render(&self, kind: ReportKind, opts: &RenderOptions) -> String {
        kind.report().render(self, opts)
    }

    /// Renders the timeline as SVG. Convenience for
    /// [`render`](Self::render) with [`ReportKind::Svg`].
    pub fn svg(&self, opts: &SvgOptions) -> String {
        self.render(ReportKind::Svg, &RenderOptions::default().with_svg(*opts))
    }

    /// Renders the timeline as ASCII art, `width` columns wide.
    /// Convenience for [`render`](Self::render) with
    /// [`ReportKind::Ascii`].
    pub fn ascii(&self, width: usize) -> String {
        self.render(
            ReportKind::Ascii,
            &RenderOptions::default().with_ascii_width(width),
        )
    }

    /// Renders the plain-text summary report, including the loss
    /// section when loss accounting ran.
    pub fn summary(&self) -> String {
        render_summary_with(self.analyzed(), self.stats(), Some(&self.loss))
    }

    /// Renders the standalone HTML report. Convenience for
    /// [`render`](Self::render) with [`ReportKind::Html`].
    pub fn html(&self, title: &str) -> String {
        self.render(
            ReportKind::Html,
            &RenderOptions::default()
                .with_title(title)
                .with_svg(SvgOptions {
                    width: 1100,
                    ..SvgOptions::default()
                }),
        )
    }

    /// Consumes the session, returning the reconstructed trace (the
    /// memoized row materialization when one exists, otherwise a fresh
    /// one).
    pub fn into_analyzed(self) -> AnalyzedTrace {
        let Self { columns, rows, .. } = self;
        rows.into_inner().unwrap_or_else(|| columns.materialize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::intervals::build_intervals;
    use crate::stats::compute_stats;
    use crate::timeline::build_timeline;
    use pdt::{EventCode, TraceCore, TraceHeader, TraceRecord, TraceStream, VERSION};

    fn trace(spes: u8) -> TraceFile {
        let mut ppe = Vec::new();
        for spe in 0..spes {
            TraceRecord {
                core: TraceCore::Ppe(0),
                code: EventCode::PpeCtxRun,
                timestamp: 100 + spe as u64,
                params: vec![spe as u64, spe as u64, u32::MAX as u64],
            }
            .encode_into(&mut ppe);
        }
        let mut streams = vec![TraceStream {
            core: TraceCore::Ppe(0),
            bytes: ppe,
            dropped: 0,
        }];
        for spe in 0..spes {
            let mut bytes = Vec::new();
            let mut dec = u32::MAX;
            for (code, step, params) in [
                (EventCode::SpeCtxStart, 0u32, vec![spe as u64]),
                (EventCode::SpeDmaGet, 500, vec![0x1000, 0x100000, 4096, 1]),
                (EventCode::SpeTagWaitBegin, 10, vec![2, 0]),
                (EventCode::SpeTagWaitEnd, 800, vec![2]),
                (EventCode::SpeUser, 100, vec![7, 1, 0]),
                (EventCode::SpeStop, 1000, vec![0]),
            ] {
                dec = dec.wrapping_sub(step);
                TraceRecord {
                    core: TraceCore::Spe(spe),
                    code,
                    timestamp: dec as u64,
                    params,
                }
                .encode_into(&mut bytes);
            }
            streams.push(TraceStream {
                core: TraceCore::Spe(spe),
                bytes,
                dropped: 0,
            });
        }
        TraceFile {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: spes,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            streams,
            ctx_names: (0..spes as u32).map(|c| (c, format!("k{c}"))).collect(),
        }
    }

    #[test]
    fn session_products_match_free_functions() {
        let t = trace(3);
        let a = Analysis::of(&t)
            .parallelism(Parallelism::Workers(4))
            .run()
            .unwrap();
        let serial = analyze(&t).unwrap();
        assert_eq!(a.events(), serial.events.as_slice());
        assert_eq!(a.intervals(), build_intervals(&serial).as_slice());
        let stats = compute_stats(&serial);
        assert_eq!(a.stats().spes, stats.spes);
        assert_eq!(a.stats().duration_tb, stats.duration_tb);
        assert_eq!(a.timeline(), &build_timeline(&serial));
    }

    #[test]
    fn products_are_memoized() {
        let t = trace(2);
        let a = Analysis::of(&t).run().unwrap();
        let first: *const _ = a.stats();
        let second: *const _ = a.stats();
        assert_eq!(first, second);
        let iv1: *const _ = a.intervals();
        let iv2: *const _ = a.intervals();
        assert_eq!(iv1, iv2);
    }

    #[test]
    fn filter_restricts_every_product() {
        let t = trace(2);
        let full = Analysis::of(&t).run().unwrap();
        let only_spe0 = Analysis::of(&t)
            .filter(EventFilter::new().on_core(TraceCore::Spe(0)))
            .run()
            .unwrap();
        assert!(only_spe0.events().len() < full.events().len());
        assert!(only_spe0
            .events()
            .iter()
            .all(|e| e.core == TraceCore::Spe(0)));
        assert_eq!(only_spe0.stats().spes.len(), 1);
    }

    #[test]
    fn index_is_memoized_and_query_matches_scan() {
        let t = trace(3);
        let a = Analysis::of(&t)
            .parallelism(Parallelism::Workers(4))
            .run()
            .unwrap();
        let i1: *const _ = a.index();
        let i2: *const _ = a.index();
        assert_eq!(i1, i2);
        let f = EventFilter::new()
            .in_window(0, u64::MAX)
            .on_core(TraceCore::Spe(1));
        let indexed = a.query(&f);
        let scanned: Vec<_> = a.events().iter().filter(|e| f.matches(e)).collect();
        assert_eq!(indexed, scanned);
        assert_eq!(f.apply(&a), scanned);
    }

    #[test]
    fn windowed_products_agree_with_full_recomputation() {
        let t = trace(2);
        let a = Analysis::of(&t).run().unwrap();
        let (t0, t1) = {
            let s = a.index().start_tb();
            let e = a.index().end_tb();
            (s + (e - s) / 4, s + 3 * (e - s) / 4)
        };

        // Clipped intervals equal SpeIntervals::clip on the full sets.
        let clipped = a.intervals_window(t0, t1);
        let expect: Vec<_> = a.intervals().iter().map(|iv| iv.clip(t0, t1)).collect();
        assert_eq!(clipped, expect);

        // The windowed timeline keeps the lane set and clips content.
        let tl = a.timeline_window(t0, t1);
        assert_eq!(tl.lanes.len(), a.timeline().lanes.len());
        assert_eq!((tl.start_tb, tl.end_tb), (t0, t1));
        for (lane, full) in tl.lanes.iter().zip(&a.timeline().lanes) {
            assert_eq!(lane.label, full.label);
            assert!(lane
                .markers
                .iter()
                .all(|m| m.time_tb >= t0 && m.time_tb < t1));
            assert!(lane
                .segments
                .iter()
                .all(|s| s.start_tb >= t0 && s.end_tb <= t1));
        }

        // Windowed summary equals the brute-force oracle.
        #[cfg(feature = "scan-oracle")]
        {
            let oracle = crate::index::oracle::window_summary(
                a.analyzed(),
                a.intervals(),
                a.index().suspect_ranges(),
                t0,
                t1,
            );
            assert_eq!(a.summarize(t0, t1), oracle);
        }

        // Windowed DMA equals the matcher run over scan-filtered events.
        let dma = a.dma_window(t0, t1);
        let scan_dma = crate::stats::observe_dma_over(a.analyzed().spes(), |spe| {
            a.events()
                .iter()
                .filter(move |e| e.core == TraceCore::Spe(spe) && e.time_tb >= t0 && e.time_tb < t1)
                .collect::<Vec<_>>()
        });
        assert_eq!(dma, scan_dma);

        // Windowed occupancy derives from the memoized full series.
        let occ = a.occupancy_window(t0, t1);
        assert_eq!(occ.len(), a.occupancy().len());
        for (w, full) in occ.iter().zip(a.occupancy()) {
            assert_eq!(*w, full.window(t0, t1));
        }
    }

    #[test]
    fn windowed_renders_dispatch_through_reports() {
        let t = trace(2);
        let a = Analysis::of(&t).run().unwrap();
        let (s, e) = (a.index().start_tb(), a.index().end_tb());
        let mid = (s + e) / 2;
        let opts = RenderOptions::default().with_window(s, mid);
        // Windowed events CSV holds exactly the in-window rows.
        let csv = a.render(ReportKind::Csv, &opts);
        let full_csv = a.render(ReportKind::Csv, &RenderOptions::default());
        assert!(csv.lines().count() < full_csv.lines().count());
        let in_window = a.query(&EventFilter::new().in_window(s, mid)).len();
        assert_eq!(csv.lines().count(), in_window + 1, "header + rows");
        // The other exporters accept the window too.
        assert!(a
            .render(
                ReportKind::Svg,
                &opts.clone().with_svg(SvgOptions::default())
            )
            .contains("</svg>"));
        assert!(a.render(ReportKind::Html, &opts).contains("</html>"));
        assert!(!a.render(ReportKind::Ascii, &opts).is_empty());
    }

    #[test]
    fn parallel_products_equal_serial_products() {
        let t = trace(4);
        let serial = Analysis::of(&t)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        serial.build_products(Parallelism::Serial);
        for workers in [2, 4, 8] {
            let parallel = Analysis::of(&t)
                .parallelism(Parallelism::Serial)
                .run()
                .unwrap();
            parallel.build_products(Parallelism::Workers(workers));
            assert_eq!(parallel.intervals(), serial.intervals());
            assert_eq!(parallel.stats(), serial.stats());
            assert_eq!(parallel.timeline(), serial.timeline());
            assert_eq!(parallel.occupancy(), serial.occupancy());
            assert_eq!(parallel.phases(), serial.phases());
            assert_eq!(parallel.index(), serial.index());
            assert_eq!(parallel.lint(), serial.lint());
            assert_eq!(parallel.events(), serial.events());
        }
    }

    #[test]
    fn build_products_memoizes_like_serial_access() {
        let t = trace(2);
        let a = Analysis::of(&t).run().unwrap();
        a.build_products(Parallelism::Workers(4));
        // Accessors now return the already-built products.
        let s1: *const _ = a.stats();
        let i1: *const _ = a.index();
        a.build_products(Parallelism::Workers(4)); // idempotent
        assert_eq!(s1, a.stats() as *const _);
        assert_eq!(i1, a.index() as *const _);
    }

    #[test]
    fn interner_dedups_under_concurrent_product_builds() {
        // Two contexts share one name: the interner holds a single
        // symbol for it, and concurrent product builds (which resolve
        // labels through the shared interner) see consistent strings.
        let mut t = trace(3);
        t.ctx_names = vec![(0, "kern".into()), (1, "kern".into()), (2, "other".into())];
        let a = Analysis::of(&t).run().unwrap();
        a.build_products(Parallelism::Workers(4));
        assert_eq!(a.columns().interner().len(), 2);
        assert_eq!(a.columns().ctx_name(0), Some("kern"));
        assert_eq!(a.columns().ctx_name(1), Some("kern"));
        assert_eq!(a.columns().ctx_name(2), Some("other"));
        let labels: Vec<&str> = a
            .timeline()
            .lanes
            .iter()
            .map(|l| l.label.as_str())
            .collect();
        assert!(labels.contains(&"SPE0 (kern)"), "{labels:?}");
        assert!(labels.contains(&"SPE2 (other)"), "{labels:?}");
    }

    #[test]
    fn build_products_serial_and_parallel_agree_with_accessors() {
        let t = trace(3);
        let a = Analysis::of(&t)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        a.build_products(Parallelism::Serial);
        let b = Analysis::of(&t)
            .parallelism(Parallelism::Serial)
            .run()
            .unwrap();
        b.build_products(Parallelism::Workers(4));
        assert_eq!(a.intervals(), b.intervals());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.timeline(), b.timeline());
        assert_eq!(a.occupancy(), b.occupancy());
        assert_eq!(a.phases(), b.phases());
        assert_eq!(a.index(), b.index());
        assert_eq!(a.lint(), b.lint());
    }

    #[test]
    fn renders_through_session() {
        let t = trace(1);
        let a = Analysis::of(&t).run().unwrap();
        assert!(a.svg(&SvgOptions::default()).ends_with("</svg>\n"));
        assert!(a.ascii(60).contains("legend"));
        assert!(a.summary().contains("SPE"));
        assert!(a.html("t").contains("<html"));
        assert!(!a.occupancy().is_empty());
        let _ = a.phases();
        let analyzed = a.into_analyzed();
        assert!(!analyzed.events.is_empty());
    }
}
