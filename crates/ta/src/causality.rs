//! Cross-core event-order verification and skew correction.
//!
//! The paper's PDT "maintains the sequential order of events". Within
//! one core that is free (records are appended in program order), but
//! *across* cores the analyzer reconstructs SPE time from decrementer
//! snapshots anchored at the PPE's run call — a few microseconds early
//! (E10). That skew can make causally-ordered events appear reversed
//! on the merged timeline: an SPE's mailbox-read-end may land *before*
//! the PPE write that produced the word.
//!
//! This module extracts the happens-before edges that the trace itself
//! proves — context run → context start, k-th inbound-mailbox write →
//! k-th inbound read-end, k-th outbound write → k-th outbound PPE read
//! — reports the violations, and estimates a per-SPE time shift that
//! restores causal order: the classic message-based clock alignment,
//! which is how trace tools tightened exactly this kind of anchor.

use std::collections::HashMap;

use pdt::{EventCode, TraceCore};

use crate::analyze::AnalyzedTrace;
use crate::columns::ColumnarTrace;
use crate::loss::LossReport;

/// What kind of proof an edge rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `PpeCtxRun` must precede the matching `SpeCtxStart`.
    CtxStart,
    /// A PPE inbound-mailbox write must precede the SPE read that
    /// consumed the same (k-th) word.
    InboundMbox,
    /// An SPE outbound-mailbox write must precede the PPE read that
    /// consumed the same (k-th) word.
    OutboundMbox,
    /// A signal-notify send (SPE `sndsig` or PPE register write) must
    /// precede the k-th completed read of the same `(target, register)`
    /// pair. Only emitted by [`sync_edges_columns`]: the skew machinery
    /// ([`violations`], [`estimate_skew`]) deliberately ignores signal
    /// traffic, so [`causal_edges`] never returns this kind.
    Signal,
}

fn kind_rank(k: EdgeKind) -> u8 {
    match k {
        EdgeKind::CtxStart => 0,
        EdgeKind::InboundMbox => 1,
        EdgeKind::OutboundMbox => 2,
        EdgeKind::Signal => 3,
    }
}

/// One happens-before edge between two events (indices into
/// [`AnalyzedTrace::events`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalEdge {
    /// The event that must come first.
    pub earlier: usize,
    /// The event that must come later.
    pub later: usize,
    /// The proof kind.
    pub kind: EdgeKind,
}

/// A violated edge: the "later" event carries an earlier timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The violated edge.
    pub edge: CausalEdge,
    /// By how many ticks the order is reversed.
    pub margin_tb: u64,
    /// Per-stream sequence number of the edge's earlier event, so the
    /// offending record can be located without re-deriving global
    /// indices.
    pub earlier_seq: u64,
    /// Per-stream sequence number of the edge's later event.
    pub later_seq: u64,
}

/// Per-SPE skew estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewEstimate {
    /// The SPE.
    pub spe: u8,
    /// Ticks to shift this SPE's events forward.
    pub shift_tb: u64,
    /// Incoming-edge violations that forced the shift.
    pub forced_by: usize,
    /// Upper bound allowed by outgoing edges (shift is clamped to it).
    pub allowed_tb: u64,
}

fn ctx_to_spe(trace: &AnalyzedTrace) -> HashMap<u32, u8> {
    trace.anchors.iter().map(|a| (a.ctx, a.spe)).collect()
}

/// Extracts the provable happens-before edges from a trace, assuming
/// no records were lost.
///
/// Equivalent to [`causal_edges_with_loss`] with an empty
/// [`LossReport`]; prefer the loss-aware variant when ingestion ran
/// with accounting.
pub fn causal_edges(trace: &AnalyzedTrace) -> Vec<CausalEdge> {
    causal_edges_with_loss(trace, &LossReport::default())
}

/// Extracts the provable happens-before edges, refusing to fabricate
/// mailbox pairings across trace damage.
///
/// FIFO pairing matches the k-th consume to the k-th produce — but a
/// decode gap can swallow a write or a read, shifting k and pairing
/// unrelated events. So for any SPE whose reconstruction is suspect
/// (its own stream lost records, or a PPE stream has gaps that may
/// hide mailbox writes), mailbox edges are dropped entirely.
/// `CtxStart` edges survive: they pair by context id, not by count.
pub fn causal_edges_with_loss(trace: &AnalyzedTrace, loss: &LossReport) -> Vec<CausalEdge> {
    let ctx_spe = ctx_to_spe(trace);
    let mut q = SyncQueues::default();
    for (i, e) in trace.events.iter().enumerate() {
        q.observe(i, e.core, e.code, &e.params, &ctx_spe);
    }
    q.emit(loss, false)
}

/// [`causal_edges_with_loss`] over the columnar store: the same
/// single-pass queue construction and FIFO pairing, reading the core /
/// code / params columns directly. Edge indices point into the global
/// event order, which is shared by the columns and any materialized
/// row vector. The lint rules use this path; the row function remains
/// the differential oracle.
pub fn causal_edges_columns(trace: &ColumnarTrace, loss: &LossReport) -> Vec<CausalEdge> {
    let ctx_spe: HashMap<u32, u8> = trace.anchors.iter().map(|a| (a.ctx, a.spe)).collect();
    let mut q = SyncQueues::default();
    for (i, v) in trace.events.iter().enumerate() {
        q.observe(i, v.core, v.code, v.params, &ctx_spe);
    }
    q.emit(loss, false)
}

/// The full synchronization-edge set of a trace — the shared extraction
/// behind [`causal_edges_columns`] plus the signal-notify pairings the
/// skew machinery ignores. This is the edge set the happens-before
/// race engine ([`crate::hb`]) propagates vector clocks over, and what
/// [`crate::session::Analysis`] memoizes once per trace so the lint
/// rules stop re-deriving pairings per rule, per shard, and per
/// streaming snapshot epoch.
///
/// Output is sorted by `(later, earlier, kind)`, so repeated extraction
/// over identical columns is byte-identical regardless of internal map
/// iteration order.
pub fn sync_edges_columns(trace: &ColumnarTrace, loss: &LossReport) -> Vec<CausalEdge> {
    let ctx_spe: HashMap<u32, u8> = trace.anchors.iter().map(|a| (a.ctx, a.spe)).collect();
    let mut q = SyncQueues::default();
    for (i, v) in trace.events.iter().enumerate() {
        q.observe(i, v.core, v.code, v.params, &ctx_spe);
    }
    let mut edges = q.emit(loss, true);
    edges.sort_unstable_by_key(|e| (e.later, e.earlier, kind_rank(e.kind)));
    edges
}

/// Producer/consumer queues for every synchronization pairing the
/// trace proves, harvested in one pass over any event sequence (rows
/// or columns). The single definition of the FIFO pairing semantics —
/// [`causal_edges_with_loss`], [`causal_edges_columns`] and
/// [`sync_edges_columns`] all feed it.
/// One recorded signal send: event index plus the sending SPE
/// (`None` for PPE register writes).
type SigSend = (usize, Option<u8>);

#[derive(Default)]
struct SyncQueues {
    /// spe → `PpeCtxRun` event.
    run_by_spe: HashMap<u8, usize>,
    /// spe → `SpeCtxStart` event.
    starts: HashMap<u8, usize>,
    /// Inbound mailbox: PPE writes / SPE read-ends per SPE.
    in_writes: HashMap<u8, Vec<usize>>,
    in_reads: HashMap<u8, Vec<usize>>,
    /// Outbound mailbox: SPE writes / PPE reads per SPE.
    out_writes: HashMap<u8, Vec<usize>>,
    out_reads: HashMap<u8, Vec<usize>>,
    /// Signal sends per `(target spe, register)`, each tagged with the
    /// sending SPE (`None` for PPE register writes).
    sig_sends: HashMap<(u8, u8), Vec<SigSend>>,
    /// Completed signal reads per `(spe, register)`.
    sig_reads: HashMap<(u8, u8), Vec<usize>>,
    /// Register named by the currently open `SpeSignalReadBegin` per
    /// SPE — read-end records carry only the value, so the bracket
    /// supplies the register.
    open_sig_reg: HashMap<u8, u8>,
}

impl SyncQueues {
    fn observe(
        &mut self,
        i: usize,
        core: TraceCore,
        code: EventCode,
        params: &[u64],
        ctx_spe: &HashMap<u32, u8>,
    ) {
        let ctx_target = |k: usize| {
            params
                .get(k)
                .and_then(|c| ctx_spe.get(&(*c as u32)))
                .copied()
        };
        match (core, code) {
            (TraceCore::Ppe(_), EventCode::PpeCtxRun) => {
                if let Some(&spe) = params.get(1) {
                    self.run_by_spe.insert(spe as u8, i);
                }
            }
            (TraceCore::Spe(s), EventCode::SpeCtxStart) => {
                self.starts.insert(s, i);
            }
            (TraceCore::Ppe(_), EventCode::PpeMboxWrite) => {
                if let Some(spe) = ctx_target(0) {
                    self.in_writes.entry(spe).or_default().push(i);
                }
            }
            (TraceCore::Spe(s), EventCode::SpeMboxReadEnd) => {
                self.in_reads.entry(s).or_default().push(i);
            }
            (TraceCore::Spe(s), EventCode::SpeMboxWrite) => {
                self.out_writes.entry(s).or_default().push(i);
            }
            (TraceCore::Ppe(_), EventCode::PpeMboxRead) => {
                if let Some(spe) = ctx_target(0) {
                    self.out_reads.entry(spe).or_default().push(i);
                }
            }
            (TraceCore::Spe(s), EventCode::SpeSignalSend) => {
                if let (Some(&target), Some(&reg)) = (params.first(), params.get(1)) {
                    self.sig_sends
                        .entry((target as u8, reg as u8))
                        .or_default()
                        .push((i, Some(s)));
                }
            }
            (TraceCore::Ppe(_), EventCode::PpeSignalWrite) => {
                if let (Some(spe), Some(&reg)) = (ctx_target(0), params.get(1)) {
                    self.sig_sends
                        .entry((spe, reg as u8))
                        .or_default()
                        .push((i, None));
                }
            }
            (TraceCore::Spe(s), EventCode::SpeSignalReadBegin) => {
                if let Some(&reg) = params.first() {
                    self.open_sig_reg.insert(s, reg as u8);
                }
            }
            (TraceCore::Spe(s), EventCode::SpeSignalReadEnd) => {
                let reg = self.open_sig_reg.get(&s).copied().unwrap_or(0);
                self.sig_reads.entry((s, reg)).or_default().push(i);
            }
            _ => {}
        }
    }

    /// Pairs the queues into edges. Mailboxes and signal registers are
    /// FIFO: the k-th consume pairs with the k-th produce. (Events
    /// within one core are already in recording order, and the global
    /// sort is stable on stream order, so index order in each queue is
    /// the k order.) Pairings that trace damage could have shifted
    /// off-by-k are dropped, not fabricated; `CtxStart` edges survive
    /// because they pair by context id, not by count. Iteration is over
    /// sorted keys so the emission order is deterministic.
    fn emit(&self, loss: &LossReport, signals: bool) -> Vec<CausalEdge> {
        let mut edges = Vec::new();
        let sorted_keys = |m: &HashMap<u8, Vec<usize>>| {
            let mut keys: Vec<u8> = m.keys().copied().collect();
            keys.sort_unstable();
            keys
        };
        let mut start_spes: Vec<u8> = self.starts.keys().copied().collect();
        start_spes.sort_unstable();
        for spe in start_spes {
            if let Some(run) = self.run_by_spe.get(&spe) {
                edges.push(CausalEdge {
                    earlier: *run,
                    later: self.starts[&spe],
                    kind: EdgeKind::CtxStart,
                });
            }
        }
        for (queue, reads, kind) in [
            (&self.in_writes, &self.in_reads, EdgeKind::InboundMbox),
            (&self.out_writes, &self.out_reads, EdgeKind::OutboundMbox),
        ] {
            for spe in sorted_keys(queue) {
                if loss.suspect(spe) {
                    continue;
                }
                if let Some(reads) = reads.get(&spe) {
                    for (w, r) in queue[&spe].iter().zip(reads) {
                        edges.push(CausalEdge {
                            earlier: *w,
                            later: *r,
                            kind,
                        });
                    }
                }
            }
        }
        if signals {
            let mut sig_keys: Vec<(u8, u8)> = self.sig_sends.keys().copied().collect();
            sig_keys.sort_unstable();
            for key in sig_keys {
                let sends = &self.sig_sends[&key];
                // A lost send or read shifts k for the whole register,
                // and a suspect *sender* may have sent words the trace
                // no longer shows — drop the register's pairings if any
                // involved stream is suspect.
                if loss.suspect(key.0)
                    || sends
                        .iter()
                        .any(|(_, sender)| sender.is_some_and(|s| loss.suspect(s)))
                {
                    continue;
                }
                if let Some(reads) = self.sig_reads.get(&key) {
                    for ((w, _), r) in sends.iter().zip(reads) {
                        edges.push(CausalEdge {
                            earlier: *w,
                            later: *r,
                            kind: EdgeKind::Signal,
                        });
                    }
                }
            }
        }
        edges
    }
}

/// Reports the edges whose reconstructed timestamps are reversed.
pub fn violations(trace: &AnalyzedTrace) -> Vec<Violation> {
    causal_edges(trace)
        .into_iter()
        .filter_map(|edge| {
            let early = &trace.events[edge.earlier];
            let late = &trace.events[edge.later];
            (late.time_tb < early.time_tb).then(|| Violation {
                edge,
                margin_tb: early.time_tb - late.time_tb,
                earlier_seq: early.stream_seq,
                later_seq: late.stream_seq,
            })
        })
        .collect()
}

/// Estimates the forward shift each SPE's clock needs so that no
/// provable edge is violated, clamped so that no *outgoing* edge
/// (SPE → PPE) becomes violated instead.
pub fn estimate_skew(trace: &AnalyzedTrace) -> Vec<SkewEstimate> {
    let edges = causal_edges(trace);
    let mut needed: HashMap<u8, (u64, usize)> = HashMap::new();
    let mut allowed: HashMap<u8, u64> = HashMap::new();
    for e in &edges {
        let earlier = &trace.events[e.earlier];
        let later = &trace.events[e.later];
        match (earlier.core, later.core) {
            (TraceCore::Ppe(_), TraceCore::Spe(s)) if later.time_tb < earlier.time_tb => {
                let m = earlier.time_tb - later.time_tb;
                let entry = needed.entry(s).or_insert((0, 0));
                entry.0 = entry.0.max(m);
                entry.1 += 1;
            }
            (TraceCore::Spe(s), TraceCore::Ppe(_)) => {
                let slack = later.time_tb.saturating_sub(earlier.time_tb);
                let a = allowed.entry(s).or_insert(u64::MAX);
                *a = (*a).min(slack);
            }
            _ => {}
        }
    }
    let mut out: Vec<SkewEstimate> = trace
        .spes()
        .into_iter()
        .filter_map(|spe| {
            let (need, forced_by) = needed.get(&spe).copied().unwrap_or((0, 0));
            if need == 0 {
                return None;
            }
            let allow = allowed.get(&spe).copied().unwrap_or(u64::MAX);
            Some(SkewEstimate {
                spe,
                shift_tb: need.min(allow),
                forced_by,
                allowed_tb: allow,
            })
        })
        .collect();
    out.sort_by_key(|s| s.spe);
    out
}

/// Applies skew corrections: shifts each listed SPE's events forward
/// and re-sorts the global order (stable on per-core sequence).
pub fn apply_skew(trace: &AnalyzedTrace, corrections: &[SkewEstimate]) -> AnalyzedTrace {
    let by_spe: HashMap<u8, u64> = corrections.iter().map(|c| (c.spe, c.shift_tb)).collect();
    let mut out = trace.clone();
    for e in &mut out.events {
        if let TraceCore::Spe(s) = e.core {
            if let Some(shift) = by_spe.get(&s) {
                e.time_tb += shift;
            }
        }
    }
    for a in &mut out.anchors {
        if let Some(shift) = by_spe.get(&a.spe) {
            a.run_tb += shift;
        }
    }
    out.events
        .sort_by_key(|a| (a.time_tb, a.core, a.stream_seq));
    out
}

/// Convenience: detect, estimate and apply in one step. Returns the
/// corrected trace and the estimates used.
pub fn align_clocks(trace: &AnalyzedTrace) -> (AnalyzedTrace, Vec<SkewEstimate>) {
    let est = estimate_skew(trace);
    let fixed = apply_skew(trace, &est);
    (fixed, est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{GlobalEvent, SpeAnchor};
    use pdt::{TraceHeader, VERSION};

    fn ev(t: u64, core: TraceCore, code: EventCode, params: Vec<u64>, seq: u64) -> GlobalEvent {
        GlobalEvent {
            time_tb: t,
            core,
            code,
            params,
            stream_seq: seq,
        }
    }

    /// A PPE writes a word at t=100; with a −30-tick anchor skew the
    /// SPE's read-end lands at t=80 on the reconstructed timeline.
    fn skewed_trace() -> AnalyzedTrace {
        use EventCode::*;
        let ppe = TraceCore::Ppe(0);
        let spe = TraceCore::Spe(0);
        AnalyzedTrace {
            header: TraceHeader {
                version: VERSION,
                num_ppe_threads: 1,
                num_spes: 1,
                core_hz: 3_200_000_000,
                timebase_divider: 120,
                dec_start: u32::MAX,
                group_mask: u32::MAX,
                spe_buffer_bytes: 2048,
            },
            events: vec![
                ev(50, ppe, PpeCtxRun, vec![0, 0, u32::MAX as u64], 0),
                ev(50, spe, SpeCtxStart, vec![0], 0),
                ev(60, spe, SpeMboxReadBegin, vec![], 1),
                ev(80, spe, SpeMboxReadEnd, vec![7], 2),
                ev(100, ppe, PpeMboxWrite, vec![0, 7], 1),
                ev(150, spe, SpeMboxWrite, vec![9], 3),
                ev(200, ppe, PpeMboxRead, vec![0, 9], 2),
                ev(220, spe, SpeStop, vec![0], 4),
            ],
            ctx_names: vec![],
            anchors: vec![SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 50,
                dec_start: u32::MAX,
            }],
            dropped: 0,
        }
    }

    #[test]
    fn edges_and_violations_are_detected() {
        let t = skewed_trace();
        let edges = causal_edges(&t);
        assert_eq!(edges.len(), 3, "{edges:?}");
        let v = violations(&t);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].edge.kind, EdgeKind::InboundMbox);
        assert_eq!(v[0].margin_tb, 20);
        // The violation names both offending records by their
        // per-stream sequence numbers.
        assert_eq!(v[0].earlier_seq, 1, "PPE write is its stream's record 1");
        assert_eq!(v[0].later_seq, 2, "SPE read-end is its stream's record 2");
    }

    #[test]
    fn decode_gaps_drop_mailbox_edges_but_keep_ctx_start() {
        use crate::loss::StreamLoss;
        use pdt::{DecodeGap, RecordError};
        let t = skewed_trace();
        let lossy = |core| StreamLoss {
            core,
            decoded_records: 4,
            tracer_dropped: 0,
            gaps: vec![DecodeGap {
                offset: 16,
                len: 32,
                est_records: 2,
                records_before: 1,
                cause: RecordError::ZeroLength,
            }],
            unanchored: false,
        };
        // A gap in SPE0's own stream: its mailbox pairings may be
        // off-by-k, so only the ctx-start edge (paired by context id,
        // not count) survives.
        let loss = LossReport {
            streams: vec![lossy(TraceCore::Spe(0))],
        };
        let edges = causal_edges_with_loss(&t, &loss);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].kind, EdgeKind::CtxStart);
        // A gap in a PPE stream may hide mailbox writes for any SPE:
        // same result.
        let loss = LossReport {
            streams: vec![lossy(TraceCore::Ppe(0))],
        };
        let edges = causal_edges_with_loss(&t, &loss);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].kind, EdgeKind::CtxStart);
        // A gap in some *other* SPE's stream taints nothing here.
        let loss = LossReport {
            streams: vec![lossy(TraceCore::Spe(5))],
        };
        assert_eq!(causal_edges_with_loss(&t, &loss).len(), 3);
        // And the unaware helper is the empty-loss special case.
        assert_eq!(causal_edges(&t).len(), 3);
    }

    #[test]
    fn columnar_edges_match_row_edges() {
        use crate::columns::ColumnarTrace;
        // Edge order depends on HashMap iteration, so compare as sets.
        let key = |e: &CausalEdge| (e.earlier, e.later, kind_rank(e.kind));
        let sorted = |mut v: Vec<CausalEdge>| {
            v.sort_by_key(key);
            v
        };
        let t = skewed_trace();
        let cols = ColumnarTrace::from_analyzed(&t);
        let empty = LossReport::default();
        assert_eq!(
            sorted(causal_edges_columns(&cols, &empty)),
            sorted(causal_edges_with_loss(&t, &empty))
        );
        // With a lossy SPE stream the mailbox pairings drop on both
        // representations alike.
        use crate::loss::StreamLoss;
        let loss = LossReport {
            streams: vec![StreamLoss {
                core: TraceCore::Spe(0),
                decoded_records: 4,
                tracer_dropped: 3,
                gaps: vec![],
                unanchored: false,
            }],
        };
        assert_eq!(
            sorted(causal_edges_columns(&cols, &loss)),
            sorted(causal_edges_with_loss(&t, &loss))
        );
    }

    /// SPE1 `sndsig`s SPE0 twice on register 1, the PPE writes
    /// register 2 once; SPE0 completes two reads of reg 1 and one of
    /// reg 2.
    fn signal_trace() -> AnalyzedTrace {
        use EventCode::*;
        let ppe = TraceCore::Ppe(0);
        let spe0 = TraceCore::Spe(0);
        let spe1 = TraceCore::Spe(1);
        let mut t = skewed_trace();
        t.header.num_spes = 2;
        t.events = vec![
            ev(10, ppe, PpeCtxRun, vec![0, 0, u32::MAX as u64], 0),
            ev(12, ppe, PpeCtxRun, vec![1, 1, u32::MAX as u64], 1),
            ev(15, spe0, SpeCtxStart, vec![0], 0),
            ev(16, spe1, SpeCtxStart, vec![1], 0),
            ev(20, spe1, SpeSignalSend, vec![0, 1, 7], 1),
            ev(25, spe0, SpeSignalReadBegin, vec![1], 1),
            ev(30, spe0, SpeSignalReadEnd, vec![7], 2),
            ev(40, ppe, PpeSignalWrite, vec![0, 2, 9], 2),
            ev(45, spe0, SpeSignalReadBegin, vec![2], 3),
            ev(50, spe0, SpeSignalReadEnd, vec![9], 4),
            ev(60, spe1, SpeSignalSend, vec![0, 1, 8], 2),
            ev(65, spe0, SpeSignalReadBegin, vec![1], 5),
            ev(70, spe0, SpeSignalReadEnd, vec![8], 6),
        ];
        t.anchors = vec![
            SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 10,
                dec_start: u32::MAX,
            },
            SpeAnchor {
                spe: 1,
                ctx: 1,
                run_tb: 12,
                dec_start: u32::MAX,
            },
        ];
        t
    }

    #[test]
    fn sync_edges_pair_signals_by_register_fifo() {
        use crate::columns::ColumnarTrace;
        let t = signal_trace();
        let cols = ColumnarTrace::from_analyzed(&t);
        let empty = LossReport::default();
        // The skew path never sees signal traffic...
        assert!(causal_edges_columns(&cols, &empty)
            .iter()
            .all(|e| e.kind != EdgeKind::Signal));
        // ...but the full sync-edge set pairs each send with the k-th
        // completed read of the same (target, register).
        let edges = sync_edges_columns(&cols, &empty);
        let sig: Vec<(usize, usize)> = edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Signal)
            .map(|e| (e.earlier, e.later))
            .collect();
        // reg1: send@4 → read-end@6, send@10 → read-end@12;
        // reg2: ppe-write@7 → read-end@9.
        assert_eq!(sig, vec![(4, 6), (7, 9), (10, 12)], "{edges:?}");
        // Output is sorted by (later, earlier, kind): deterministic.
        let mut resorted = edges.clone();
        resorted.sort_by_key(|e| (e.later, e.earlier, kind_rank(e.kind)));
        assert_eq!(edges, resorted);
    }

    #[test]
    fn suspect_streams_drop_signal_pairings() {
        use crate::columns::ColumnarTrace;
        use crate::loss::StreamLoss;
        let t = signal_trace();
        let cols = ColumnarTrace::from_analyzed(&t);
        let lossy = |core| StreamLoss {
            core,
            decoded_records: 4,
            tracer_dropped: 1,
            gaps: vec![],
            unanchored: false,
        };
        // Suspect *sender* (SPE1): its register-1 pairings drop, the
        // PPE's register-2 edge survives (PPE streams are clean here).
        let loss = LossReport {
            streams: vec![lossy(TraceCore::Spe(1))],
        };
        let sig: Vec<usize> = sync_edges_columns(&cols, &loss)
            .iter()
            .filter(|e| e.kind == EdgeKind::Signal)
            .map(|e| e.earlier)
            .collect();
        assert_eq!(sig, vec![7]);
        // Suspect *target* (SPE0): every signal pairing into it drops.
        let loss = LossReport {
            streams: vec![lossy(TraceCore::Spe(0))],
        };
        assert!(sync_edges_columns(&cols, &loss)
            .iter()
            .all(|e| e.kind != EdgeKind::Signal));
    }

    #[test]
    fn skew_estimate_is_clamped_by_outgoing_edges() {
        let t = skewed_trace();
        let est = estimate_skew(&t);
        assert_eq!(est.len(), 1);
        let e = est[0];
        assert_eq!(e.spe, 0);
        // Needs +20 to fix the inbound violation; the outbound edge
        // (150 → 200) allows up to +50.
        assert_eq!(e.shift_tb, 20);
        assert_eq!(e.allowed_tb, 50);
        assert_eq!(e.forced_by, 1);
    }

    #[test]
    fn applying_the_shift_restores_causal_order() {
        let t = skewed_trace();
        let (fixed, est) = align_clocks(&t);
        assert_eq!(est.len(), 1);
        assert!(violations(&fixed).is_empty(), "{:?}", violations(&fixed));
        // SPE events moved forward by 20; PPE events untouched.
        let read_end = fixed
            .events
            .iter()
            .find(|e| e.code == EventCode::SpeMboxReadEnd)
            .unwrap();
        assert_eq!(read_end.time_tb, 100);
        let write = fixed
            .events
            .iter()
            .find(|e| e.code == EventCode::PpeMboxWrite)
            .unwrap();
        assert_eq!(write.time_tb, 100);
        // Order: at the tie, PPE (lower core tag) sorts first — the
        // producer precedes the consumer.
        let iw = fixed
            .events
            .iter()
            .position(|e| e.code == EventCode::PpeMboxWrite)
            .unwrap();
        let ir = fixed
            .events
            .iter()
            .position(|e| e.code == EventCode::SpeMboxReadEnd)
            .unwrap();
        assert!(iw < ir);
        // The anchor moved with the events.
        assert_eq!(fixed.anchors[0].run_tb, 70);
    }

    #[test]
    fn clean_trace_needs_no_correction() {
        let mut t = skewed_trace();
        // Move the read-end after the write.
        for e in &mut t.events {
            if e.code == EventCode::SpeMboxReadEnd {
                e.time_tb = 120;
            }
        }
        t.events.sort_by_key(|e| e.time_tb);
        assert!(violations(&t).is_empty());
        assert!(estimate_skew(&t).is_empty());
    }

    #[test]
    fn zero_length_interval_edge_is_not_a_violation() {
        let mut t = skewed_trace();
        // Collapse the inbound pair onto one instant: write and
        // read-end at the same tick. "Not later" is fine; only a
        // strictly earlier consumer is a violation.
        for e in &mut t.events {
            if e.code == EventCode::SpeMboxReadEnd {
                e.time_tb = 100;
            }
        }
        assert!(violations(&t).is_empty());
        assert!(estimate_skew(&t).is_empty());
        let (fixed, est) = align_clocks(&t);
        assert!(est.is_empty());
        assert_eq!(fixed.events.len(), t.events.len());
    }

    #[test]
    fn identical_timestamps_across_spes_resolve_independently() {
        use EventCode::*;
        let ppe = TraceCore::Ppe(0);
        let mut t = skewed_trace();
        // A second SPE whose events all collide with SPE0's timestamps.
        // Only SPE1's read-end is reversed; SPE0 stays clean at t=100.
        for e in &mut t.events {
            if e.code == SpeMboxReadEnd {
                e.time_tb = 100;
            }
        }
        t.header.num_spes = 2;
        let spe1 = TraceCore::Spe(1);
        t.events.extend([
            ev(50, ppe, PpeCtxRun, vec![1, 1, u32::MAX as u64], 3),
            ev(50, spe1, SpeCtxStart, vec![1], 0),
            ev(80, spe1, SpeMboxReadEnd, vec![7], 1),
            ev(100, ppe, PpeMboxWrite, vec![1, 7], 4),
            ev(220, spe1, SpeStop, vec![1], 2),
        ]);
        t.anchors.push(SpeAnchor {
            spe: 1,
            ctx: 1,
            run_tb: 50,
            dec_start: u32::MAX,
        });
        t.events.sort_by_key(|e| (e.time_tb, e.core, e.stream_seq));
        let v = violations(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        let est = estimate_skew(&t);
        assert_eq!(est.len(), 1);
        assert_eq!(est[0].spe, 1, "only the skewed SPE gets a shift");
        assert_eq!(est[0].shift_tb, 20);
        let (fixed, _) = align_clocks(&t);
        assert!(violations(&fixed).is_empty());
        // SPE0's colliding events were not disturbed.
        let spe0_read = fixed
            .events
            .iter()
            .find(|e| e.core == TraceCore::Spe(0) && e.code == SpeMboxReadEnd)
            .unwrap();
        assert_eq!(spe0_read.time_tb, 100);
    }

    #[test]
    fn single_event_streams_produce_no_edges() {
        use EventCode::*;
        let t = AnalyzedTrace {
            header: skewed_trace().header,
            events: vec![
                ev(
                    50,
                    TraceCore::Ppe(0),
                    PpeCtxRun,
                    vec![0, 0, u32::MAX as u64],
                    0,
                ),
                ev(60, TraceCore::Spe(0), SpeUser, vec![1], 0),
            ],
            ctx_names: vec![],
            anchors: vec![SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 50,
                dec_start: u32::MAX,
            }],
            dropped: 0,
        };
        // No SpeCtxStart, no mailbox pairs: nothing is provable.
        assert!(causal_edges(&t).is_empty());
        assert!(violations(&t).is_empty());
        assert!(estimate_skew(&t).is_empty());
        let (fixed, est) = align_clocks(&t);
        assert!(est.is_empty());
        assert_eq!(fixed.events, t.events);
    }

    #[test]
    fn single_event_spe_with_reversed_anchor_gets_unclamped_shift() {
        use EventCode::*;
        // The SPE's entire stream is one SpeCtxStart that lands 20
        // ticks *before* the PpeCtxRun that launched it. With no
        // outgoing (SPE → PPE) edges, the allowed slack is unbounded
        // and the shift is exactly the violation margin.
        let t = AnalyzedTrace {
            header: skewed_trace().header,
            events: vec![
                ev(
                    50,
                    TraceCore::Ppe(0),
                    PpeCtxRun,
                    vec![0, 0, u32::MAX as u64],
                    0,
                ),
                ev(30, TraceCore::Spe(0), SpeCtxStart, vec![0], 0),
            ],
            ctx_names: vec![],
            anchors: vec![SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 50,
                dec_start: u32::MAX,
            }],
            dropped: 0,
        };
        let v = violations(&t);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].edge.kind, EdgeKind::CtxStart);
        assert_eq!(v[0].margin_tb, 20);
        assert_eq!((v[0].earlier_seq, v[0].later_seq), (0, 0));
        let est = estimate_skew(&t);
        assert_eq!(est.len(), 1);
        assert_eq!(est[0].shift_tb, 20);
        assert_eq!(est[0].allowed_tb, u64::MAX, "no outgoing edge to clamp");
        let (fixed, _) = align_clocks(&t);
        assert!(violations(&fixed).is_empty());
    }

    #[test]
    fn unmatched_mailbox_traffic_is_ignored() {
        use EventCode::*;
        let mut t = skewed_trace();
        // Three extra PPE writes with no matching SPE reads: FIFO
        // pairing must only produce edges for consumed words.
        let n = t.events.len() as u64;
        for k in 0..3 {
            t.events.push(ev(
                300 + k,
                TraceCore::Ppe(0),
                PpeMboxWrite,
                vec![0, 40 + k],
                n + k,
            ));
        }
        let edges = causal_edges(&t);
        assert_eq!(edges.len(), 3, "unconsumed writes add no edges");
    }

    #[test]
    fn needed_beyond_allowed_is_clamped() {
        let mut t = skewed_trace();
        // Make the outbound edge tight: PPE read at 155 (slack 5).
        for e in &mut t.events {
            if e.code == EventCode::PpeMboxRead {
                e.time_tb = 155;
            }
        }
        let est = estimate_skew(&t);
        assert_eq!(est[0].shift_tb, 5, "clamped to the outgoing slack");
        let (fixed, _) = align_clocks(&t);
        // The inbound violation shrinks but cannot fully close.
        let v = violations(&fixed);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].margin_tb, 15);
    }
}
