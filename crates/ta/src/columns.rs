//! The columnar event store: struct-of-arrays event storage plus a
//! string interner, the zero-allocation hot path under every derived
//! product.
//!
//! The row representation ([`GlobalEvent`]) carries a heap-allocated
//! `Vec<u64>` per event and owned `String`s for context names, so a
//! product pass over a large trace walks millions of small
//! allocations. [`EventColumns`] packs the same data as parallel
//! columns — one `Vec` per field, parameter words flattened into a
//! single buffer addressed by an offsets column — and [`Interner`]
//! replaces repeated strings with `u32` symbol ids resolved through
//! one table. [`ColumnarTrace`] wraps the columns with the trace
//! header, anchors and interned context names, memoizes the per-core
//! offset lists every product shares, and can
//! [`materialize`](ColumnarTrace::materialize) the original row form
//! byte-identically so the public API is unchanged.
//!
//! Layout (`n` events, half-open offset ranges):
//!
//! ```text
//! time_tb    [u64; n]     sorted (global event order)
//! core       [TraceCore; n]
//! code       [EventCode; n]
//! stream_seq [u64; n]
//! params_off [u32; n + 1] event i's params = params_buf[off[i]..off[i+1]]
//! params_buf [u64; sum]   flattened parameter words
//! ```
//!
//! Interning rules: symbols are created only while the store is built
//! (single-threaded); afterwards the table is immutable and resolving
//! a [`Sym`] is a shared read, safe under the concurrent product
//! builds of [`build_products`](crate::session::Analysis::build_products).
//! Equal strings always intern to the same symbol (dedup), and
//! materialization returns the exact original strings in the exact
//! original order.

use std::collections::HashMap;
use std::sync::OnceLock;

use pdt::{EventCode, EventGroup, TraceCore, TraceHeader};

use crate::analyze::{AnalyzedTrace, GlobalEvent, SpeAnchor};

/// An interned string id: an index into one [`Interner`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw table index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A deduplicating string table: equal strings intern to equal
/// [`Sym`]s. Mutation happens only during store construction; resolve
/// is a shared read.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol when the string was
    /// seen before.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&i) = self.lookup.get(s) {
            return Sym(i);
        }
        let i = u32::try_from(self.strings.len()).expect("interner table exceeds u32");
        self.strings.push(s.to_owned());
        self.lookup.insert(s.to_owned(), i);
        Sym(i)
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner with more
    /// entries.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// The symbol `s` interned to, if it was interned.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.lookup.get(s).map(|&i| Sym(i))
    }

    /// Number of distinct strings in the table.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A borrowed view of one event: the columnar counterpart of
/// [`GlobalEvent`], with the parameter words as a slice into the
/// shared flat buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventView<'a> {
    /// Reconstructed time in timebase ticks.
    pub time_tb: u64,
    /// Producing core.
    pub core: TraceCore,
    /// Event code.
    pub code: EventCode,
    /// Parameter words.
    pub params: &'a [u64],
    /// Per-core recording sequence number.
    pub stream_seq: u64,
}

impl EventView<'_> {
    /// Copies the view into an owned row event.
    pub fn to_event(&self) -> GlobalEvent {
        GlobalEvent {
            time_tb: self.time_tb,
            core: self.core,
            code: self.code,
            params: self.params.to_vec(),
            stream_seq: self.stream_seq,
        }
    }
}

/// Struct-of-arrays event storage. Field columns are parallel; the
/// parameter words of all events share one flat buffer addressed by
/// the `params_off` offsets column (`n + 1` entries).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EventColumns {
    time_tb: Vec<u64>,
    core: Vec<TraceCore>,
    code: Vec<EventCode>,
    stream_seq: Vec<u64>,
    params_off: Vec<u32>,
    params_buf: Vec<u64>,
}

impl EventColumns {
    /// An empty store with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        let mut params_off = Vec::with_capacity(n + 1);
        params_off.push(0);
        EventColumns {
            time_tb: Vec::with_capacity(n),
            core: Vec::with_capacity(n),
            code: Vec::with_capacity(n),
            stream_seq: Vec::with_capacity(n),
            params_off,
            params_buf: Vec::new(),
        }
    }

    /// Appends one event.
    pub fn push(
        &mut self,
        time_tb: u64,
        core: TraceCore,
        code: EventCode,
        params: &[u64],
        stream_seq: u64,
    ) {
        if self.params_off.is_empty() {
            self.params_off.push(0);
        }
        self.time_tb.push(time_tb);
        self.core.push(core);
        self.code.push(code);
        self.stream_seq.push(stream_seq);
        self.params_buf.extend_from_slice(params);
        let end = u32::try_from(self.params_buf.len()).expect("params buffer exceeds u32 offsets");
        self.params_off.push(end);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.time_tb.len()
    }

    /// Whether the store holds no events.
    pub fn is_empty(&self) -> bool {
        self.time_tb.is_empty()
    }

    /// The timestamp column.
    pub fn times(&self) -> &[u64] {
        &self.time_tb
    }

    /// The core column.
    pub fn cores(&self) -> &[TraceCore] {
        &self.core
    }

    /// The event-code column.
    pub fn codes(&self) -> &[EventCode] {
        &self.code
    }

    /// The per-stream sequence-number column.
    pub fn seqs(&self) -> &[u64] {
        &self.stream_seq
    }

    /// Event `i`'s parameter words.
    pub fn params(&self, i: usize) -> &[u64] {
        let lo = self.params_off[i] as usize;
        let hi = self.params_off[i + 1] as usize;
        &self.params_buf[lo..hi]
    }

    /// A borrowed view of event `i`.
    pub fn view(&self, i: usize) -> EventView<'_> {
        EventView {
            time_tb: self.time_tb[i],
            core: self.core[i],
            code: self.code[i],
            params: self.params(i),
            stream_seq: self.stream_seq[i],
        }
    }

    /// Views of every event, in global order.
    pub fn iter(&self) -> impl Iterator<Item = EventView<'_>> {
        (0..self.len()).map(move |i| self.view(i))
    }

    /// Inserts one event at position `i`, shifting later events. The
    /// slow path of streaming ingestion — used only when a late event
    /// sorts before already-committed ones (corrupt non-monotone
    /// input); ordinary appends go through [`push`](EventColumns::push).
    pub fn insert(
        &mut self,
        i: usize,
        time_tb: u64,
        core: TraceCore,
        code: EventCode,
        params: &[u64],
        stream_seq: u64,
    ) {
        if self.params_off.is_empty() {
            self.params_off.push(0);
        }
        self.time_tb.insert(i, time_tb);
        self.core.insert(i, core);
        self.code.insert(i, code);
        self.stream_seq.insert(i, stream_seq);
        let lo = self.params_off[i] as usize;
        self.params_buf.splice(lo..lo, params.iter().copied());
        let nw = u32::try_from(params.len()).expect("params fit u32");
        self.params_off.insert(i + 1, self.params_off[i] + nw);
        for off in &mut self.params_off[i + 2..] {
            *off += nw;
        }
        let _ = u32::try_from(self.params_buf.len()).expect("params buffer exceeds u32 offsets");
    }
}

/// A fully reconstructed trace in columnar form: the drop-in
/// counterpart of [`AnalyzedTrace`] that every memoized product
/// iterates, with context names interned and the per-core offset
/// lists memoized once for all products.
#[derive(Debug, Clone)]
pub struct ColumnarTrace {
    /// Header copied from the trace file.
    pub header: TraceHeader,
    /// All events, sorted by `(time_tb, core, stream_seq)`.
    pub events: EventColumns,
    /// Per-SPE sync anchors.
    pub anchors: Vec<SpeAnchor>,
    /// Records the tracers dropped (from stream metadata).
    pub dropped: u64,
    interner: Interner,
    /// `(ctx, name)` pairs in original file order, names interned.
    ctx_syms: Vec<(u32, Sym)>,
    core_offsets: OnceLock<Vec<(TraceCore, Vec<u32>)>>,
    /// OR of [`EventGroup`] bits observed per core tag (256 slots).
    group_masks: OnceLock<Vec<u32>>,
}

impl ColumnarTrace {
    /// Builds the columnar form from a borrowed row trace.
    pub fn from_analyzed(t: &AnalyzedTrace) -> Self {
        let mut events = EventColumns::with_capacity(t.events.len());
        for e in &t.events {
            events.push(e.time_tb, e.core, e.code, &e.params, e.stream_seq);
        }
        let mut interner = Interner::new();
        let ctx_syms = t
            .ctx_names
            .iter()
            .map(|(c, n)| (*c, interner.intern(n)))
            .collect();
        ColumnarTrace {
            header: t.header,
            events,
            anchors: t.anchors.clone(),
            dropped: t.dropped,
            interner,
            ctx_syms,
            core_offsets: OnceLock::new(),
            group_masks: OnceLock::new(),
        }
    }

    /// Builds the columnar form by consuming a row trace, freeing each
    /// per-event parameter allocation as it is flattened.
    pub fn from_rows(t: AnalyzedTrace) -> Self {
        let mut events = EventColumns::with_capacity(t.events.len());
        for e in t.events {
            events.push(e.time_tb, e.core, e.code, &e.params, e.stream_seq);
        }
        let mut interner = Interner::new();
        let ctx_syms = t
            .ctx_names
            .iter()
            .map(|(c, n)| (*c, interner.intern(n)))
            .collect();
        ColumnarTrace {
            header: t.header,
            events,
            anchors: t.anchors,
            dropped: t.dropped,
            interner,
            ctx_syms,
            core_offsets: OnceLock::new(),
            group_masks: OnceLock::new(),
        }
    }

    /// Materializes the row form: an [`AnalyzedTrace`] byte-identical
    /// to the one the store was built from (same event values, same
    /// context names in the same order).
    pub fn materialize(&self) -> AnalyzedTrace {
        AnalyzedTrace {
            header: self.header,
            events: self.events.iter().map(|v| v.to_event()).collect(),
            ctx_names: self
                .ctx_syms
                .iter()
                .map(|&(c, s)| (c, self.interner.resolve(s).to_owned()))
                .collect(),
            anchors: self.anchors.clone(),
            dropped: self.dropped,
        }
    }

    /// Keeps only events passing `pred`, preserving order. Invalidates
    /// the memoized per-core offsets.
    pub fn retain_views(&mut self, mut pred: impl FnMut(&EventView<'_>) -> bool) {
        let mut kept = EventColumns::with_capacity(self.events.len());
        for v in self.events.iter() {
            if pred(&v) {
                kept.push(v.time_tb, v.core, v.code, v.params, v.stream_seq);
            }
        }
        self.events = kept;
        self.core_offsets = OnceLock::new();
        self.group_masks = OnceLock::new();
    }

    /// An empty store carrying only the header — the starting point of
    /// streaming ingestion, grown with
    /// [`push_event`](ColumnarTrace::push_event).
    pub(crate) fn empty(header: TraceHeader) -> Self {
        ColumnarTrace {
            header,
            events: EventColumns::with_capacity(0),
            anchors: Vec::new(),
            dropped: 0,
            interner: Interner::new(),
            ctx_syms: Vec::new(),
            core_offsets: OnceLock::new(),
            group_masks: OnceLock::new(),
        }
    }

    /// Appends one event in global order, updating the memoized
    /// per-core offsets and group masks in place when they are already
    /// built — the tail-only growth path of streaming ingestion.
    pub(crate) fn push_event(
        &mut self,
        time_tb: u64,
        core: TraceCore,
        code: EventCode,
        params: &[u64],
        stream_seq: u64,
    ) {
        let i = self.events.len();
        self.events.push(time_tb, core, code, params, stream_seq);
        if let Some(offsets) = self.core_offsets.get_mut() {
            let off = u32::try_from(i).expect("trace exceeds u32 offset space");
            match offsets.binary_search_by_key(&core.tag(), |(c, _)| c.tag()) {
                Ok(slot) => offsets[slot].1.push(off),
                Err(slot) => offsets.insert(slot, (core, vec![off])),
            }
        }
        if let Some(masks) = self.group_masks.get_mut() {
            masks[core.tag() as usize] |= code.group() as u32;
        }
    }

    /// Inserts one event out of order (the non-monotone slow path),
    /// invalidating both memos.
    pub(crate) fn insert_event(
        &mut self,
        i: usize,
        time_tb: u64,
        core: TraceCore,
        code: EventCode,
        params: &[u64],
        stream_seq: u64,
    ) {
        self.events
            .insert(i, time_tb, core, code, params, stream_seq);
        self.core_offsets = OnceLock::new();
        self.group_masks = OnceLock::new();
    }

    /// Replaces the anchor list (anchors can gain entries as streaming
    /// ingestion discovers `PpeCtxRun` records).
    pub(crate) fn set_anchors(&mut self, anchors: Vec<SpeAnchor>) {
        self.anchors = anchors;
    }

    /// Replaces the tracer-dropped total from stream metadata.
    pub(crate) fn set_dropped(&mut self, dropped: u64) {
        self.dropped = dropped;
    }

    /// Replaces the context-name table (the name table arrives at the
    /// end of a streamed trace image).
    pub(crate) fn set_ctx_names(&mut self, names: &[(u32, String)]) {
        self.interner = Interner::new();
        self.ctx_syms = names
            .iter()
            .map(|(c, n)| (*c, self.interner.intern(n)))
            .collect();
    }

    /// The string table context names resolve through.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// `(ctx, name)` pairs in original file order.
    pub fn ctx_entries(&self) -> impl Iterator<Item = (u32, &str)> {
        self.ctx_syms
            .iter()
            .map(move |&(c, s)| (c, self.interner.resolve(s)))
    }

    /// The name of context `ctx`, if recorded (first match wins, as in
    /// [`AnalyzedTrace::ctx_name`]).
    pub fn ctx_name(&self, ctx: u32) -> Option<&str> {
        self.ctx_syms
            .iter()
            .find(|(c, _)| *c == ctx)
            .map(|&(_, s)| self.interner.resolve(s))
    }

    /// Per-core ascending offset lists into the global event order,
    /// cores tag-sorted. Computed in one pass over the core column on
    /// first use and shared by every product.
    pub fn core_offsets(&self) -> &[(TraceCore, Vec<u32>)] {
        self.core_offsets.get_or_init(|| {
            assert!(
                self.events.len() <= u32::MAX as usize,
                "trace exceeds u32 offset space"
            );
            let mut slots: Vec<Vec<u32>> = vec![Vec::new(); 256];
            for (i, c) in self.events.cores().iter().enumerate() {
                slots[c.tag() as usize].push(i as u32);
            }
            slots
                .into_iter()
                .enumerate()
                .filter(|(_, offs)| !offs.is_empty())
                .map(|(tag, offs)| (TraceCore::from_tag(tag as u8), offs))
                .collect()
        })
    }

    /// OR of the [`EventGroup`] bits `core` ever recorded. Computed in
    /// one pass over the core and code columns on first use; lets
    /// per-core scans (lint rules especially) skip cores that cannot
    /// contain the codes they match.
    pub fn core_group_mask(&self, core: TraceCore) -> u32 {
        let masks = self.group_masks.get_or_init(|| {
            let mut m = vec![0u32; 256];
            let cores = self.events.cores();
            let codes = self.events.codes();
            for i in 0..self.events.len() {
                m[cores[i].tag() as usize] |= codes[i].group() as u32;
            }
            m
        });
        masks[core.tag() as usize]
    }

    /// Whether `core` recorded any event in `group`.
    pub fn core_has_group(&self, core: TraceCore, group: EventGroup) -> bool {
        self.core_group_mask(core) & group as u32 != 0
    }

    /// Every core that recorded at least one event, tag-sorted — the
    /// stream universe the happens-before engine sizes its vector
    /// clocks over.
    pub fn cores(&self) -> Vec<TraceCore> {
        self.core_offsets().iter().map(|&(c, _)| c).collect()
    }

    /// `core`'s offsets into the global event order (empty when the
    /// core produced nothing).
    pub fn core_slice(&self, core: TraceCore) -> &[u32] {
        self.core_offsets()
            .iter()
            .find(|(c, _)| *c == core)
            .map_or(&[], |(_, offs)| offs.as_slice())
    }

    /// Views of `core`'s events, in time order — the columnar
    /// counterpart of [`AnalyzedTrace::core_events`], walking the
    /// memoized offset list instead of filtering the whole trace.
    pub fn core_events(&self, core: TraceCore) -> impl Iterator<Item = EventView<'_>> {
        self.core_slice(core)
            .iter()
            .map(move |&o| self.events.view(o as usize))
    }

    /// The SPE indices that produced events, ascending.
    pub fn spes(&self) -> Vec<u8> {
        self.core_offsets()
            .iter()
            .filter_map(|(c, _)| match c {
                TraceCore::Spe(i) => Some(*i),
                TraceCore::Ppe(_) => None,
            })
            .collect()
    }

    /// The first timestamp in the trace (ticks). The event columns are
    /// globally sorted, so this is the head of the time column.
    pub fn start_tb(&self) -> u64 {
        self.events.times().first().copied().unwrap_or(0)
    }

    /// The last timestamp in the trace (ticks).
    pub fn end_tb(&self) -> u64 {
        self.events.times().last().copied().unwrap_or(0)
    }

    /// Converts timebase ticks to nanoseconds using the header clocks.
    pub fn tb_to_ns(&self, tb: u64) -> f64 {
        tb as f64 * self.header.timebase_divider as f64 * 1e9 / self.header.core_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt::VERSION;

    fn header() -> TraceHeader {
        TraceHeader {
            version: VERSION,
            num_ppe_threads: 1,
            num_spes: 2,
            core_hz: 3_200_000_000,
            timebase_divider: 120,
            dec_start: u32::MAX,
            group_mask: u32::MAX,
            spe_buffer_bytes: 2048,
        }
    }

    fn sample() -> AnalyzedTrace {
        use EventCode::*;
        let ev = |t: u64, core, code, params: Vec<u64>, seq| GlobalEvent {
            time_tb: t,
            core,
            code,
            params,
            stream_seq: seq,
        };
        let mut events = vec![
            ev(5, TraceCore::Ppe(0), PpeCtxRun, vec![0, 0, 99], 0),
            ev(10, TraceCore::Spe(0), SpeCtxStart, vec![0], 0),
            ev(
                20,
                TraceCore::Spe(0),
                SpeDmaGet,
                vec![0x100, 0x2000, 4096, 3],
                1,
            ),
            ev(25, TraceCore::Spe(1), SpeCtxStart, vec![1], 0),
            ev(30, TraceCore::Spe(0), SpeTagWaitEnd, vec![1 << 3], 2),
            ev(40, TraceCore::Spe(0), SpeStop, vec![], 3),
            ev(50, TraceCore::Spe(1), SpeStop, vec![0], 1),
        ];
        events.sort_by_key(|e| (e.time_tb, e.core.tag(), e.stream_seq));
        AnalyzedTrace {
            header: header(),
            events,
            ctx_names: vec![
                (0, "alpha".into()),
                (1, "beta".into()),
                (2, "alpha2".into()),
            ],
            anchors: vec![SpeAnchor {
                spe: 0,
                ctx: 0,
                run_tb: 5,
                dec_start: 99,
            }],
            dropped: 3,
        }
    }

    #[test]
    fn interner_round_trips_and_dedups() {
        let mut i = Interner::new();
        let a = i.intern("spe_kernel");
        let b = i.intern("other");
        let a2 = i.intern("spe_kernel");
        assert_eq!(a, a2, "equal strings intern to equal symbols");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "spe_kernel");
        assert_eq!(i.resolve(b), "other");
        assert_eq!(i.get("other"), Some(b));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn materialize_is_byte_identical() {
        let t = sample();
        for cols in [
            ColumnarTrace::from_analyzed(&t),
            ColumnarTrace::from_rows(t.clone()),
        ] {
            let back = cols.materialize();
            assert_eq!(back.events, t.events);
            assert_eq!(back.ctx_names, t.ctx_names);
            assert_eq!(back.anchors, t.anchors);
            assert_eq!(back.dropped, t.dropped);
            assert_eq!(back.header, t.header);
        }
    }

    #[test]
    fn views_project_rows_exactly() {
        let t = sample();
        let cols = ColumnarTrace::from_analyzed(&t);
        assert_eq!(cols.events.len(), t.events.len());
        for (i, e) in t.events.iter().enumerate() {
            let v = cols.events.view(i);
            assert_eq!(v.time_tb, e.time_tb);
            assert_eq!(v.core, e.core);
            assert_eq!(v.code, e.code);
            assert_eq!(v.params, e.params.as_slice());
            assert_eq!(v.stream_seq, e.stream_seq);
            assert_eq!(v.to_event(), *e);
        }
    }

    #[test]
    fn core_accessors_match_row_trace() {
        let t = sample();
        let cols = ColumnarTrace::from_analyzed(&t);
        assert_eq!(cols.spes(), t.spes());
        assert_eq!(cols.start_tb(), t.start_tb());
        assert_eq!(cols.end_tb(), t.end_tb());
        assert_eq!(cols.tb_to_ns(100), t.tb_to_ns(100));
        for core in [
            TraceCore::Ppe(0),
            TraceCore::Spe(0),
            TraceCore::Spe(1),
            TraceCore::Spe(7),
        ] {
            let via_cols: Vec<GlobalEvent> = cols.core_events(core).map(|v| v.to_event()).collect();
            let via_rows: Vec<GlobalEvent> = t.core_events(core).cloned().collect();
            assert_eq!(via_cols, via_rows, "core {core}");
        }
        for ctx in [0u32, 1, 2, 9] {
            assert_eq!(cols.ctx_name(ctx), t.ctx_name(ctx), "ctx {ctx}");
        }
    }

    #[test]
    fn group_masks_reflect_per_core_codes() {
        let t = sample();
        let mut cols = ColumnarTrace::from_analyzed(&t);
        assert!(cols.core_has_group(TraceCore::Spe(0), EventGroup::SpeDma));
        assert!(cols.core_has_group(TraceCore::Spe(0), EventGroup::SpeLifecycle));
        assert!(!cols.core_has_group(TraceCore::Spe(1), EventGroup::SpeDma));
        assert!(cols.core_has_group(TraceCore::Ppe(0), EventGroup::PpeLifecycle));
        assert_eq!(cols.core_group_mask(TraceCore::Spe(7)), 0);
        // Retain invalidates the memo: dropping the DMA events must
        // drop the bit.
        cols.retain_views(|v| v.code.group() != EventGroup::SpeDma);
        assert!(!cols.core_has_group(TraceCore::Spe(0), EventGroup::SpeDma));
        assert!(cols.core_has_group(TraceCore::Spe(0), EventGroup::SpeLifecycle));
    }

    #[test]
    fn retain_preserves_order_and_invalidates_offsets() {
        let t = sample();
        let mut cols = ColumnarTrace::from_analyzed(&t);
        let _ = cols.core_offsets();
        cols.retain_views(|v| v.core == TraceCore::Spe(0));
        assert!(cols.events.iter().all(|v| v.core == TraceCore::Spe(0)));
        assert_eq!(cols.spes(), vec![0]);
        let times: Vec<u64> = cols.events.times().to_vec();
        let want: Vec<u64> = t
            .events
            .iter()
            .filter(|e| e.core == TraceCore::Spe(0))
            .map(|e| e.time_tb)
            .collect();
        assert_eq!(times, want);
    }

    #[test]
    fn empty_store_is_well_behaved() {
        let t = AnalyzedTrace {
            header: header(),
            events: vec![],
            ctx_names: vec![],
            anchors: vec![],
            dropped: 0,
        };
        let cols = ColumnarTrace::from_analyzed(&t);
        assert!(cols.events.is_empty());
        assert_eq!(cols.start_tb(), 0);
        assert_eq!(cols.end_tb(), 0);
        assert!(cols.spes().is_empty());
        assert_eq!(cols.core_events(TraceCore::Spe(0)).count(), 0);
        let back = cols.materialize();
        assert!(back.events.is_empty());
    }
}
